//! A miniature Table-2 run as an integration test: COMET must beat the
//! random baseline by a wide margin on the crude model's ground truth.

use comet::bhive::{Corpus, GenConfig};
use comet::core::{ground_truth, is_accurate, BaselineContext, FeatureSet};
use comet::isa::Microarch;
use comet::models::CrudeModel;
use comet::{ExplainConfig, Explainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn comet_beats_random_baseline_on_crude_model() {
    let corpus = Corpus::generate(16, GenConfig::default(), 99);
    let crude = CrudeModel::new(Microarch::Haswell);
    let config = ExplainConfig { coverage_samples: 300, ..ExplainConfig::for_crude_model() };
    let explainer = Explainer::new(crude, config);

    let gts: Vec<FeatureSet> = corpus.iter().map(|e| ground_truth(&crude, &e.block)).collect();
    let baseline = BaselineContext::from_ground_truths(&gts);

    let mut rng = StdRng::seed_from_u64(0);
    let mut comet_hits = 0;
    let mut random_hits = 0;
    for (entry, gt) in corpus.iter().zip(&gts) {
        let explanation = explainer.explain(&entry.block, &mut rng).unwrap();
        if is_accurate(&explanation.features, gt) {
            comet_hits += 1;
        }
        if is_accurate(&baseline.random_explanation(&entry.block, &mut rng), gt) {
            random_hits += 1;
        }
    }
    assert!(
        comet_hits >= 10,
        "COMET accurate on only {comet_hits}/16 blocks (random: {random_hits})"
    );
    assert!(comet_hits > random_hits, "COMET {comet_hits} vs random {random_hits}");
}

#[test]
fn explanations_have_meaningful_precision_and_coverage() {
    let corpus = Corpus::generate(8, GenConfig::default(), 101);
    let crude = CrudeModel::new(Microarch::Skylake);
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    let explainer = Explainer::new(crude, config);
    let mut rng = StdRng::seed_from_u64(5);
    for entry in &corpus {
        let e = explainer.explain(&entry.block, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&e.precision));
        assert!((0.0..=1.0).contains(&e.coverage));
        assert!(e.queries > 0);
        assert!(!e.features.is_empty());
        assert!(e.features.len() <= 4, "{}", e.display_features());
    }
}
