//! End-to-end integration: parse → analyze → perturb → explain, across
//! crate boundaries.

use comet::isa::{parse_block, Microarch};
use comet::models::{CostModel, CrudeModel};
use comet::{ExplainConfig, Explainer, Feature, FeatureKind, FeatureSet, PerturbConfig, Perturber};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn motivating_example_end_to_end() {
    // Paper Listing 1: the RAW dependency between instructions 1 and 2
    // is the intuitive bottleneck.
    let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
    let model = CrudeModel::new(Microarch::Haswell);
    let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
    let explanation = explainer.explain(&block, &mut StdRng::seed_from_u64(0)).unwrap();
    assert!(explanation.anchored, "no anchor found: {}", explanation.display_features());
    // The crude model's bottleneck here is the RAW dependency (cost
    // 0.25 + 0.25 = 0.5 < ... actually instruction costs tie); the
    // explanation must at least be precise and non-trivial.
    assert!(explanation.precision >= 0.7);
    assert!(!explanation.features.is_empty());
    assert!(explanation.features.len() <= 2, "{}", explanation.display_features());
}

#[test]
fn div_block_explained_by_fine_grained_features() {
    // Paper Listing 3 under the crude model: div dominates everything.
    let block = parse_block(
        "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
    )
    .unwrap();
    let model = CrudeModel::new(Microarch::Haswell);
    let gt = comet::core::ground_truth(&model, &block);
    let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
    let explanation = explainer.explain(&block, &mut StdRng::seed_from_u64(1)).unwrap();
    assert!(explanation.anchored);
    assert!(
        comet::core::is_accurate(&explanation.features, &gt),
        "explanation {} vs GT {}",
        explanation.display_features(),
        comet::core::format_feature_set(&gt),
    );
    // The div instruction (or a dependency involving it) must appear.
    assert!(explanation.features.iter().any(|f| f.kind() != FeatureKind::Eta));
}

#[test]
fn perturbations_respect_preserved_features_across_crates() {
    let block = parse_block(
        "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80\nmov rsi, qword ptr [r14 + 32]\nmov rdi, rbp",
    )
    .unwrap();
    let perturber = Perturber::new(&block, PerturbConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    for feature in perturber.features().to_vec() {
        let mut preserve = FeatureSet::new();
        preserve.insert(feature);
        for _ in 0..20 {
            let out = perturber.perturb(&preserve, &mut rng);
            assert!(preserve.is_subset(&out.surviving));
            assert!(out.block.is_valid());
        }
    }
}

#[test]
fn explanations_are_deterministic_given_seed() {
    let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
    let model = CrudeModel::new(Microarch::Skylake);
    let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
    let a = explainer.explain(&block, &mut StdRng::seed_from_u64(9)).unwrap();
    let b = explainer.explain(&block, &mut StdRng::seed_from_u64(9)).unwrap();
    assert_eq!(a.features, b.features);
    assert_eq!(a.precision, b.precision);
    assert_eq!(a.coverage, b.coverage);
}

#[test]
fn eta_only_model_yields_eta_explanation() {
    struct LengthModel;

    impl CostModel for LengthModel {
        fn name(&self) -> &str {
            "length-only"
        }

        fn predict(&self, block: &comet::isa::BasicBlock) -> f64 {
            block.len() as f64 / 4.0
        }
    }

    let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nshl r9, 3").unwrap();
    let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
    let explanation = explainer.explain(&block, &mut StdRng::seed_from_u64(3)).unwrap();
    assert!(explanation.anchored);
    assert_eq!(
        explanation.features.iter().copied().collect::<Vec<_>>(),
        vec![Feature::NumInstructions]
    );
}
