//! Fault-injection integration suite: the explanation pipeline must
//! survive a misbehaving model end-to-end. Every fault class of the
//! `ModelError` taxonomy (NaN, panic, transient, latency/timeout) is
//! injected at 10% per query across 100 seeded runs, and the pipeline
//! must answer each run with either a (possibly degraded) explanation
//! or a typed error — never a process panic.

use std::time::Duration;

use comet::eval::par::par_map;
use comet::isa::{parse_block, BasicBlock, Microarch};
use comet::models::{
    CostModel, CrudeModel, FaultConfig, FaultyModel, ResilientConfig, ResilientModel,
};
use comet::{ExplainConfig, ExplainError, Explainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_block() -> BasicBlock {
    parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap()
}

fn sweep_config() -> ExplainConfig {
    ExplainConfig {
        coverage_samples: 150,
        max_samples: 80,
        max_total_queries: 1_500,
        ..ExplainConfig::for_crude_model()
    }
}

/// The headline acceptance criterion: with every fault class injected
/// at a 10% rate, 100 seeded `explain` runs all finish with `Ok` plus
/// degradation diagnostics or a typed `ExplainError` — zero panics.
#[test]
fn explain_survives_every_fault_class_across_100_seeds() {
    let block = test_block();
    let mut explained = 0u32;
    let mut refused = 0u32;
    let mut faults_seen = 0u64;
    for seed in 0..100u64 {
        let faulty =
            FaultyModel::new(CrudeModel::new(Microarch::Haswell), FaultConfig::uniform(0.1, seed));
        let explainer = Explainer::new(faulty, sweep_config());
        let mut rng = StdRng::seed_from_u64(seed);
        match explainer.explain(&block, &mut rng) {
            Ok(e) => {
                explained += 1;
                faults_seen += e.faults;
                assert!(e.queries <= 1_500, "seed {seed}: budget blown ({})", e.queries);
                assert!(!e.features.is_empty(), "seed {seed}: empty explanation");
                assert!((0.0..=1.0).contains(&e.precision), "seed {seed}");
                assert!((0.0..=1.0).contains(&e.coverage), "seed {seed}");
                assert!(e.faults == 0 || e.degraded, "seed {seed}: faults but not degraded");
                assert_eq!(e.faults, explainer.model().stats().total_faults(), "seed {seed}");
            }
            // The model faulted on the original block: refusing with a
            // typed error is the contract for an unexplainable input.
            Err(ExplainError::Model(_)) => refused += 1,
            Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
        }
    }
    assert_eq!(explained + refused, 100);
    // At a 50% total fault rate the initial query fails about half the
    // time; both outcomes must actually occur for this test to mean
    // anything, and the surviving runs must have absorbed real faults.
    assert!(explained >= 10, "only {explained}/100 runs explained");
    assert!(refused >= 10, "only {refused}/100 runs refused");
    assert!(faults_seen > 0, "no faults absorbed by surviving runs");
}

/// A model whose backend has died entirely: predictions are always NaN.
struct DeadModel;

impl CostModel for DeadModel {
    fn name(&self) -> &str {
        "dead"
    }

    fn predict(&self, _: &BasicBlock) -> f64 {
        f64::NAN
    }
}

/// Breaker-trip integration: once the primary model's circuit breaker
/// opens, `explain` transparently runs against the fallback model and
/// reports the run as degraded — with the exact explanation the
/// fallback would have produced on its own.
#[test]
fn tripped_breaker_degrades_explanation_to_fallback() {
    let config = ResilientConfig {
        max_retries: 0,
        breaker_threshold: 3,
        backoff_base: Duration::ZERO,
        // No half-open probes during the run: every query after the
        // trip is served by the fallback, deterministically.
        probe_interval: u64::MAX,
        seed: 0,
        ..ResilientConfig::default()
    };
    let resilient =
        ResilientModel::with_fallback(DeadModel, CrudeModel::new(Microarch::Haswell), config);
    let block = test_block();

    // Warm the breaker: two NaN failures propagate, the third trips the
    // breaker and already degrades to the fallback.
    assert!(resilient.try_predict(&block).is_err());
    assert!(resilient.try_predict(&block).is_err());
    assert!(resilient.try_predict(&block).is_ok());
    assert!(resilient.breaker_open());

    let explain_config = sweep_config();
    let explainer = Explainer::new(resilient, explain_config);
    let e = explainer
        .explain(&block, &mut StdRng::seed_from_u64(42))
        .expect("fallback-served explanation");
    assert!(e.degraded, "open breaker must mark the explanation degraded");
    assert_eq!(e.faults, 0, "fallback answers are successes, not faults");
    assert_eq!(e.retries, 0);

    let report = explainer.model().report();
    assert_eq!(report.breaker_trips, 1);
    assert!(report.degraded);
    assert!(report.fallback_queries >= e.queries);

    // With the breaker open the pipeline *is* the fallback model:
    // explaining the fallback directly with the same seed must agree.
    let direct = Explainer::new(CrudeModel::new(Microarch::Haswell), explain_config)
        .explain(&block, &mut StdRng::seed_from_u64(42))
        .unwrap();
    assert_eq!(e.features, direct.features);
    assert_eq!(e.precision, direct.precision);
    assert!(!direct.degraded);
}

/// The harness-side guarantee: one panicking worker in a parallel batch
/// surfaces as that item's error and never takes down its siblings.
#[test]
fn par_map_isolates_a_panicking_worker() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let items: Vec<u64> = (0..32).collect();
    let results = par_map(&items, |i, &x| {
        if i == 13 {
            panic!("deliberate worker crash on {i}");
        }
        x * x
    });
    std::panic::set_hook(prev);

    assert_eq!(results.len(), 32);
    for (i, slot) in results.iter().enumerate() {
        if i == 13 {
            let failure = slot.as_ref().unwrap_err();
            assert_eq!(failure.index, 13);
            assert!(
                failure.message.contains("deliberate worker crash on 13"),
                "unexpected payload: {}",
                failure.message
            );
        } else {
            assert_eq!(*slot, Ok((i as u64) * (i as u64)), "sibling {i} was lost");
        }
    }
}
