//! Cross-crate model behaviour: surrogate error ordering, corpus
//! labelling, and cache interplay.

use comet::bhive::{Corpus, GenConfig};
use comet::isa::{parse_block, Microarch};
use comet::models::{
    mape, CachedModel, CostModel, CrudeModel, HardwareOracle, IthemalConfig, IthemalSurrogate,
    UicaSurrogate,
};

#[test]
fn model_error_ordering_matches_paper() {
    // uiCA must track the "hardware" far better than both the neural
    // surrogate and the crude analytical model — the premise of the
    // paper's Figures 2-4 analysis.
    let train = Corpus::generate(300, GenConfig::default(), 50);
    let test = Corpus::generate(60, GenConfig::default(), 51);
    let march = Microarch::Haswell;
    let labelled = test.training_pairs(march);

    let uica = UicaSurrogate::new(march);
    let crude = CrudeModel::new(march);
    let ithemal = IthemalSurrogate::train(
        march,
        &train.training_pairs(march),
        IthemalConfig { epochs: 3, ..IthemalConfig::default() },
    );

    let uica_err = mape(&uica, &labelled);
    let ithemal_err = mape(&ithemal, &labelled);
    let crude_err = mape(&crude, &labelled);
    assert!(uica_err < 5.0, "uiCA MAPE {uica_err}");
    assert!(ithemal_err > uica_err, "Ithemal {ithemal_err} vs uiCA {uica_err}");
    assert!(crude_err > uica_err, "crude {crude_err} vs uiCA {uica_err}");
}

#[test]
fn hardware_oracle_labels_are_positive_and_stable() {
    let corpus = Corpus::generate(40, GenConfig::default(), 52);
    let hsw = HardwareOracle::new(Microarch::Haswell);
    for entry in &corpus {
        assert!(entry.throughput_hsw > 0.0);
        assert!(entry.throughput_skl > 0.0);
        // Corpus labels must equal fresh oracle queries.
        assert_eq!(hsw.predict(&entry.block), entry.throughput_hsw);
    }
}

#[test]
fn cached_model_is_transparent() {
    let block = parse_block("div rcx\nmov rbx, 1").unwrap();
    let crude = CrudeModel::new(Microarch::Haswell);
    let cached = CachedModel::new(crude);
    assert_eq!(cached.predict(&block), crude.predict(&block));
    assert_eq!(cached.predict(&block), crude.predict(&block));
    assert_eq!(cached.stats().hits, 1);
}

#[test]
fn microarchitectures_give_distinct_models() {
    let block = parse_block("vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0").unwrap();
    let hsw = HardwareOracle::new(Microarch::Haswell).predict(&block);
    let skl = HardwareOracle::new(Microarch::Skylake).predict(&block);
    assert!(hsw > skl, "HSW {hsw} should be slower than SKL {skl} on divides");
}
