//! Property-based tests for dependency analysis.

use comet_bhive::{generate_source_block, GenConfig, Source};
use comet_graph::{BlockGraph, DepConfig, DepKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_block() -> impl Strategy<Value = comet_isa::BasicBlock> {
    (any::<u64>(), prop_oneof![Just(Source::Clang), Just(Source::OpenBlas)]).prop_map(
        |(seed, source)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_source_block(source, GenConfig::default(), &mut rng)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edges_point_forward_and_in_range(block in arb_block()) {
        let graph = BlockGraph::build(&block);
        prop_assert_eq!(graph.num_vertices(), block.len());
        for edge in graph.edges() {
            prop_assert!(edge.src < edge.dst, "{edge}");
            prop_assert!(edge.dst < block.len());
            prop_assert!(!edge.causes.is_empty(), "{edge}");
        }
    }

    #[test]
    fn edge_identities_are_unique(block in arb_block()) {
        let graph = BlockGraph::build(&block);
        let mut seen = std::collections::HashSet::new();
        for edge in graph.edges() {
            prop_assert!(seen.insert(edge.id()), "duplicate edge {edge}");
        }
    }

    #[test]
    fn analysis_is_deterministic(block in arb_block()) {
        let a = BlockGraph::build(&block);
        let b = BlockGraph::build(&block);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn register_raw_edges_are_justified(block in arb_block()) {
        // Every register-caused RAW edge must correspond to an actual
        // write in src and read in dst of an aliasing register, and no
        // intervening explicit write.
        let graph = BlockGraph::build(&block);
        let effects: Vec<_> = block.iter().map(|i| i.explicit_effects()).collect();
        for edge in graph.edges_of_kind(DepKind::Raw) {
            for reg in edge.cause_registers() {
                let writes =
                    effects[edge.src].reg_writes.iter().any(|w| w.full() == reg);
                let reads = effects[edge.dst].reg_reads.iter().any(|r| r.full() == reg);
                prop_assert!(writes && reads, "unjustified {edge} in\n{block}");
                for (k, effect) in effects.iter().enumerate().take(edge.dst).skip(edge.src + 1) {
                    let interposed = effect.reg_writes.iter().any(|w| w.full() == reg);
                    prop_assert!(!interposed, "{edge} has interposing writer {k} in\n{block}");
                }
            }
        }
    }

    #[test]
    fn implicit_config_only_adds_edges(block in arb_block()) {
        let without = BlockGraph::build(&block);
        let with = BlockGraph::build_with(
            &block,
            DepConfig { include_implicit: true, include_memory: true },
        );
        // Explicit-only edges can disappear (an implicit write can
        // interpose), but the total hazard count should not shrink for
        // blocks with no implicit-operand instructions.
        let has_implicit = block
            .iter()
            .any(|i| !comet_isa::implicit_operands(i.opcode).is_empty());
        if !has_implicit {
            prop_assert_eq!(without.edges(), with.edges());
        }
    }
}
