//! Data-dependency kinds, causes, and edges.

use std::fmt;

use comet_isa::{MemOperand, Register};
use serde::{Deserialize, Serialize};

/// The classic data-dependency hazard kinds (paper Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write: the *true* dependency. The consumer cannot
    /// execute until the producer's result is available.
    Raw,
    /// Write-after-read: an anti-dependency, normally resolved by
    /// register renaming.
    War,
    /// Write-after-write: an output dependency, also resolved by
    /// renaming.
    Waw,
}

impl DepKind {
    /// All hazard kinds.
    pub const ALL: [DepKind; 3] = [DepKind::Raw, DepKind::War, DepKind::Waw];

    /// Conventional abbreviation ("RAW" / "WAR" / "WAW").
    pub fn abbrev(self) -> &'static str {
        match self {
            DepKind::Raw => "RAW",
            DepKind::War => "WAR",
            DepKind::Waw => "WAW",
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// What carries a dependency between two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepCause {
    /// A shared architectural register. Stored as the *full* register
    /// (`eax` and `rax` both record `rax`) so aliased accesses compare
    /// equal.
    Register(Register),
    /// Overlapping memory accesses through the given operand of the
    /// source instruction.
    Memory(MemOperand),
}

impl fmt::Display for DepCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepCause::Register(r) => write!(f, "{r}"),
            DepCause::Memory(m) => write!(f, "{m}"),
        }
    }
}

/// A labelled edge of the basic-block multigraph: a data dependency of
/// `kind` from instruction `src` to instruction `dst` (`src < dst` in
/// program order), carried by one or more `causes`.
///
/// Several same-kind hazards between the same instruction pair (e.g. two
/// registers both read-after-written) are collapsed into one edge with
/// multiple causes: they constitute a single dependency *feature*, and
/// breaking the feature requires breaking every cause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepEdge {
    /// Hazard kind.
    pub kind: DepKind,
    /// Producer / earlier instruction index.
    pub src: usize,
    /// Consumer / later instruction index.
    pub dst: usize,
    /// The registers or memory operands carrying the hazard.
    pub causes: Vec<DepCause>,
}

impl DepEdge {
    /// The identity of this edge as a block feature: `(kind, src, dst)`.
    pub fn id(&self) -> (DepKind, usize, usize) {
        (self.kind, self.src, self.dst)
    }

    /// Registers among the causes.
    pub fn cause_registers(&self) -> impl Iterator<Item = Register> + '_ {
        self.causes.iter().filter_map(|c| match c {
            DepCause::Register(r) => Some(*r),
            DepCause::Memory(_) => None,
        })
    }

    /// Whether any cause is a memory overlap.
    pub fn has_memory_cause(&self) -> bool {
        self.causes.iter().any(|c| matches!(c, DepCause::Memory(_)))
    }
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} -> {} (", self.kind, self.src + 1, self.dst + 1)?;
        for (i, cause) in self.causes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{cause}")?;
        }
        write!(f, ")")
    }
}
