//! # comet-graph
//!
//! Basic-block dependency multigraphs for COMET (paper §5.1): vertices
//! are instructions annotated with their positions, and labelled directed
//! edges record RAW/WAR/WAW data-dependency hazards, detected through
//! register aliasing and syntactic memory disambiguation.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), comet_isa::IsaError> {
//! use comet_graph::{BlockGraph, DepKind};
//!
//! let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx")?;
//! let graph = BlockGraph::build(&block);
//! assert!(graph.find_edge(DepKind::Raw, 0, 1).is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dep;
mod graph;

pub use dep::{DepCause, DepEdge, DepKind};
pub use graph::{BlockGraph, DepConfig, EdgeSetScratch};
