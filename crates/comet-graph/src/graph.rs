//! Basic-block multigraph construction (paper §5.1, Figure 1(ii)).

use std::collections::BTreeMap;

use comet_isa::{BasicBlock, Register};
use serde::{Deserialize, Serialize};

use crate::dep::{DepCause, DepEdge, DepKind};

/// Configuration for dependency analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepConfig {
    /// Include hazards through *implicit* register operands (`div`'s
    /// `rax`/`rdx`, `push`/`pop`'s `rsp`).
    ///
    /// Defaults to `false`: the paper's multigraph is built from the
    /// block's tokens, so its dependency features only cover explicit
    /// operands (e.g. the case-study RAW edge 3→6 through `rax` exists
    /// even though the intervening `div` implicitly writes `rax`).
    /// Timing models still honour implicit operands regardless.
    pub include_implicit: bool,
    /// Include memory-carried hazards between overlapping memory
    /// operands. Defaults to `true`.
    pub include_memory: bool,
}

impl Default for DepConfig {
    fn default() -> DepConfig {
        DepConfig { include_implicit: false, include_memory: true }
    }
}

/// The multigraph G = (V, E) of a basic block: vertices are the
/// instructions annotated with their program-order positions, edges are
/// labelled data dependencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockGraph {
    num_vertices: usize,
    edges: Vec<DepEdge>,
}

impl BlockGraph {
    /// Analyze a block with the default [`DepConfig`].
    pub fn build(block: &BasicBlock) -> BlockGraph {
        BlockGraph::build_with(block, DepConfig::default())
    }

    /// Analyze a block with an explicit configuration.
    pub fn build_with(block: &BasicBlock, config: DepConfig) -> BlockGraph {
        let n = block.len();
        let effects: Vec<_> = block
            .iter()
            .map(|inst| {
                if config.include_implicit {
                    inst.effects()
                } else {
                    // The paper's multigraph observes the block's
                    // tokens, so only explicit operand occurrences
                    // carry dependencies by default.
                    inst.explicit_effects()
                }
            })
            .collect();

        // (kind, src, dst) -> causes, kept ordered for determinism.
        let mut causes: BTreeMap<(DepKind, usize, usize), Vec<DepCause>> = BTreeMap::new();
        for_each_hazard(&effects, config, |kind, src, dst, cause| {
            let entry = causes.entry((kind, src, dst)).or_default();
            if !entry.contains(&cause) {
                entry.push(cause);
            }
        });

        let edges = causes
            .into_iter()
            .map(|((kind, src, dst), causes)| DepEdge { kind, src, dst, causes })
            .collect();
        BlockGraph { num_vertices: n, edges }
    }

    /// Number of vertices (instructions).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// All dependency edges, ordered deterministically.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges of one hazard kind.
    pub fn edges_of_kind(&self, kind: DepKind) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// The edge with the given identity, if present.
    pub fn find_edge(&self, kind: DepKind, src: usize, dst: usize) -> Option<&DepEdge> {
        self.edges.iter().find(|e| e.id() == (kind, src, dst))
    }

    /// Edges incident to the given vertex.
    pub fn incident_edges(&self, vertex: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.src == vertex || e.dst == vertex)
    }
}

/// Enumerate every hazard occurrence of a block, given per-instruction
/// effects. This is the single source of truth for dependency
/// semantics: both the cause-carrying [`BlockGraph::build_with`] and
/// the allocation-free [`EdgeSetScratch`] drive it, so the two can
/// never disagree on which edges exist. The same `(kind, src, dst)`
/// identity may be emitted more than once (with distinct or duplicate
/// causes); consumers deduplicate.
fn for_each_hazard(
    effects: &[comet_isa::Effects],
    config: DepConfig,
    mut add: impl FnMut(DepKind, usize, usize, DepCause),
) {
    let n = effects.len();

    // Register-carried hazards, by full (aliasing-collapsed) register.
    for j in 0..n {
        for read in &effects[j].reg_reads {
            // RAW: latest earlier writer of the register.
            if let Some(i) = latest_writer(effects, read.full(), j) {
                add(DepKind::Raw, i, j, DepCause::Register(read.full()));
            }
        }
        for write in &effects[j].reg_writes {
            let full = write.full();
            if let Some(i) = latest_writer(effects, full, j) {
                // WAW with the previous writer.
                add(DepKind::Waw, i, j, DepCause::Register(full));
                // WAR with readers after that writer.
                for (k, fx) in effects.iter().enumerate().take(j).skip(i + 1) {
                    if fx.reg_reads.iter().any(|r| r.full() == full) {
                        add(DepKind::War, k, j, DepCause::Register(full));
                    }
                }
            } else {
                // No earlier writer: WAR with every earlier reader.
                for (k, fx) in effects.iter().enumerate().take(j) {
                    if fx.reg_reads.iter().any(|r| r.full() == full) {
                        add(DepKind::War, k, j, DepCause::Register(full));
                    }
                }
            }
        }
    }

    // Memory-carried hazards (conservative: every conflicting pair).
    if config.include_memory {
        for j in 0..n {
            for i in 0..j {
                for iw in &effects[i].mem_writes {
                    if effects[j].mem_reads.iter().any(|jr| iw.may_alias(jr)) {
                        add(DepKind::Raw, i, j, DepCause::Memory(*iw));
                    }
                    if effects[j].mem_writes.iter().any(|jw| iw.may_alias(jw)) {
                        add(DepKind::Waw, i, j, DepCause::Memory(*iw));
                    }
                }
                for ir in &effects[i].mem_reads {
                    if effects[j].mem_writes.iter().any(|jw| ir.may_alias(jw)) {
                        add(DepKind::War, i, j, DepCause::Memory(*ir));
                    }
                }
            }
        }
    }
}

/// Reusable buffers for repeated *edge-identity* analysis.
///
/// The explanation loop's perturbation sampler needs to know, for
/// millions of freshly perturbed blocks, *which* `(kind, src, dst)`
/// dependency identities exist — but never their causes. Building a
/// full [`BlockGraph`] per sample allocates a `BTreeMap`, per-edge
/// cause vectors, and per-instruction effect vectors; this scratch
/// computes exactly the same identity set (it runs the same
/// [`for_each_hazard`] core) into buffers that are reused across
/// calls, making steady-state recomputation allocation-free under the
/// default [`DepConfig`].
#[derive(Debug, Default, Clone)]
pub struct EdgeSetScratch {
    effects: Vec<comet_isa::Effects>,
    ids: Vec<(DepKind, usize, usize)>,
}

impl EdgeSetScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> EdgeSetScratch {
        EdgeSetScratch::default()
    }

    /// Recompute the edge-identity set of `block`, replacing the
    /// previous contents. With `config.include_implicit` set the
    /// per-instruction implicit-operand lookup still allocates; the
    /// default (explicit-only) configuration does not.
    pub fn compute(&mut self, block: &BasicBlock, config: DepConfig) {
        let n = block.len();
        if self.effects.len() < n {
            self.effects.resize_with(n, Default::default);
        }
        for (inst, slot) in block.iter().zip(&mut self.effects) {
            if config.include_implicit {
                *slot = inst.effects();
            } else {
                inst.explicit_effects_into(slot);
            }
        }
        self.ids.clear();
        let ids = &mut self.ids;
        for_each_hazard(&self.effects[..n], config, |kind, src, dst, _cause| {
            ids.push((kind, src, dst));
        });
        ids.sort_unstable();
        ids.dedup();
    }

    /// Whether the most recently computed block has the given edge.
    /// Agrees exactly with [`BlockGraph::find_edge`] on that block.
    pub fn contains(&self, kind: DepKind, src: usize, dst: usize) -> bool {
        self.ids.binary_search(&(kind, src, dst)).is_ok()
    }

    /// The sorted, deduplicated edge identities of the last
    /// [`EdgeSetScratch::compute`] call.
    pub fn ids(&self) -> &[(DepKind, usize, usize)] {
        &self.ids
    }
}

/// Index of the last instruction before `j` that writes `full`.
fn latest_writer(effects: &[comet_isa::Effects], full: Register, j: usize) -> Option<usize> {
    (0..j).rev().find(|&i| effects[i].reg_writes.iter().any(|w| w.full() == full))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn motivating_example_has_single_raw_edge() {
        // add rcx, rax ; mov rdx, rcx ; pop rbx  — RAW 1->2 via rcx.
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let g = BlockGraph::build(&block);
        assert_eq!(g.num_vertices(), 3);
        let raw: Vec<_> = g.edges_of_kind(DepKind::Raw).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].id(), (DepKind::Raw, 0, 1));
        let rcx = Register::from_name("rcx").unwrap();
        assert_eq!(raw[0].cause_registers().collect::<Vec<_>>(), vec![rcx]);
    }

    #[test]
    fn case_study_two_matches_paper() {
        let block = parse_block(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
        )
        .unwrap();
        let g = BlockGraph::build(&block);
        // Paper: RAW between 3 and 6 due to rax (1-based).
        assert!(g.find_edge(DepKind::Raw, 2, 5).is_some(), "{:?}", g.edges());
        // Paper: WAR between 1 and 2 due to edx.
        let war = g.find_edge(DepKind::War, 0, 1).expect("WAR 1->2");
        let rdx = Register::from_name("rdx").unwrap();
        assert!(war.cause_registers().any(|r| r == rdx));
        // RAW 1->3 via rcx (lea reads rcx, mov ecx wrote it).
        assert!(g.find_edge(DepKind::Raw, 0, 2).is_some());
    }

    #[test]
    fn implicit_operands_excluded_by_default_but_includable() {
        let block = parse_block("lea rax, [rcx + rax - 1]\ndiv rcx\nimul rax, rcx").unwrap();
        let default = BlockGraph::build(&block);
        // Without implicit rax effects of div, RAW lea->imul survives.
        assert!(default.find_edge(DepKind::Raw, 0, 2).is_some());
        let full = BlockGraph::build_with(
            &block,
            DepConfig { include_implicit: true, include_memory: true },
        );
        // With implicit effects, div's rax write interposes.
        assert!(full.find_edge(DepKind::Raw, 0, 2).is_none());
        assert!(full.find_edge(DepKind::Raw, 1, 2).is_some());
    }

    #[test]
    fn waw_detected_between_consecutive_writers() {
        let block = parse_block("mov rax, rbx\nmov rax, rcx").unwrap();
        let g = BlockGraph::build(&block);
        assert!(g.find_edge(DepKind::Waw, 0, 1).is_some());
        assert!(g.edges_of_kind(DepKind::Raw).next().is_none());
    }

    #[test]
    fn aliased_registers_carry_dependencies() {
        let block = parse_block("add eax, ecx\nmov rdx, rax").unwrap();
        let g = BlockGraph::build(&block);
        // eax write feeds rax read.
        assert!(g.find_edge(DepKind::Raw, 0, 1).is_some());
    }

    #[test]
    fn memory_dependencies_detected() {
        let block = parse_block(
            "mov qword ptr [rdi + 8], rax\nmov rbx, qword ptr [rdi + 8]\nmov qword ptr [rdi + 8], rcx",
        )
        .unwrap();
        let g = BlockGraph::build(&block);
        let raw = g.find_edge(DepKind::Raw, 0, 1).expect("store->load RAW");
        assert!(raw.has_memory_cause());
        assert!(g.find_edge(DepKind::Waw, 0, 2).is_some());
        assert!(g.find_edge(DepKind::War, 1, 2).is_some());
    }

    #[test]
    fn disjoint_memory_is_independent() {
        let block = parse_block("mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi + 16]").unwrap();
        let g = BlockGraph::build(&block);
        assert!(g.edges_of_kind(DepKind::Raw).all(|e| !e.has_memory_cause()));
    }

    #[test]
    fn multiple_causes_collapse_into_one_edge() {
        // Both rax and rbx are RAW-carried 1->2.
        let block = parse_block("add rax, rbx\nimul rax, rax").unwrap();
        let g = BlockGraph::build(&block);
        let raw: Vec<_> = g.edges_of_kind(DepKind::Raw).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].causes.len(), 1); // only rax carried
        let block2 = parse_block("add rax, rbx\nsub rbx, rax\nadd rax, rbx").unwrap();
        let g2 = BlockGraph::build(&block2);
        // Edge 2->3 carries both rax (2 rw rax? no: sub rbx, rax reads rax writes rbx)
        let edge = g2.find_edge(DepKind::Raw, 1, 2).unwrap();
        assert_eq!(edge.causes.len(), 1); // rbx
    }

    #[test]
    fn war_without_earlier_writer() {
        let block = parse_block("mov rdx, rcx\nmov rcx, rbx").unwrap();
        let g = BlockGraph::build(&block);
        assert!(g.find_edge(DepKind::War, 0, 1).is_some());
    }

    #[test]
    fn edge_set_scratch_agrees_with_full_build() {
        let blocks = [
            "add rcx, rax\nmov rdx, rcx\npop rbx",
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
            "mov qword ptr [rdi + 8], rax\nmov rbx, qword ptr [rdi + 8]\nmov qword ptr [rdi + 8], rcx",
            "mov rdx, rcx\nmov rcx, rbx",
            "add rax, rbx\nimul rax, rax",
        ];
        let mut scratch = EdgeSetScratch::new();
        for (config_name, config) in [
            ("default", DepConfig::default()),
            ("implicit", DepConfig { include_implicit: true, include_memory: true }),
            ("no-memory", DepConfig { include_implicit: false, include_memory: false }),
        ] {
            for text in blocks {
                let block = parse_block(text).unwrap();
                let graph = BlockGraph::build_with(&block, config);
                // Reused (never reset) scratch must still match a fresh build.
                scratch.compute(&block, config);
                let built: Vec<_> = graph.edges().iter().map(DepEdge::id).collect();
                assert_eq!(scratch.ids(), &built[..], "{config_name}:\n{text}");
                for &(kind, src, dst) in scratch.ids() {
                    assert!(scratch.contains(kind, src, dst));
                }
                assert!(!scratch.contains(DepKind::Raw, 97, 98));
            }
        }
    }

    #[test]
    fn incident_edges_cover_both_endpoints() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let g = BlockGraph::build(&block);
        assert_eq!(g.incident_edges(0).count(), 1);
        assert_eq!(g.incident_edges(1).count(), 1);
        assert_eq!(g.incident_edges(2).count(), 0);
    }
}
