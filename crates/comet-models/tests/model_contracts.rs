//! Cross-cutting behavioural contracts every cost model must satisfy.

use comet_isa::{parse_block, BasicBlock, Microarch};
use comet_models::{
    CoarseBaselineModel, CostModel, CrudeModel, HardwareOracle, UicaSurrogate, Vocab,
};

fn sample_blocks() -> Vec<BasicBlock> {
    [
        "add rcx, rax\nmov rdx, rcx\npop rbx",
        "div rcx\nmov rbx, 1",
        "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80",
        "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
        "paddd xmm1, xmm2\npxor xmm3, xmm4\nmovss dword ptr [rsi], xmm1",
    ]
    .into_iter()
    .map(|t| parse_block(t).unwrap())
    .collect()
}

#[test]
fn all_models_are_positive_and_deterministic() {
    let models: Vec<Box<dyn CostModel>> = vec![
        Box::new(CrudeModel::new(Microarch::Haswell)),
        Box::new(CrudeModel::new(Microarch::Skylake)),
        Box::new(UicaSurrogate::new(Microarch::Haswell)),
        Box::new(HardwareOracle::new(Microarch::Skylake)),
        Box::new(CoarseBaselineModel::new()),
    ];
    for model in &models {
        for block in sample_blocks() {
            let a = model.predict(&block);
            let b = model.predict(&block);
            assert!(a > 0.0, "{}: non-positive prediction", model.name());
            assert!(a.is_finite());
            assert_eq!(a, b, "{}: non-deterministic", model.name());
        }
    }
}

#[test]
fn coarse_baseline_less_informed_than_crude() {
    // On a div-heavy block the crude model (fine-grained features) must
    // be closer to hardware than the coarse baseline.
    let block = parse_block("div rcx\nmov rbx, 1").unwrap();
    let hw = HardwareOracle::new(Microarch::Haswell).predict(&block);
    let crude = CrudeModel::new(Microarch::Haswell).predict(&block);
    let coarse = CoarseBaselineModel::new().predict(&block);
    assert!((crude - hw).abs() < (coarse - hw).abs());
}

#[test]
fn tokenizer_covers_every_generated_block() {
    use comet_bhive::{generate_source_block, GenConfig, Source};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let vocab = Vocab::standard();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..50 {
        for source in Source::ALL {
            let block = generate_source_block(source, GenConfig::default(), &mut rng);
            let tokens = vocab.tokenize_block(&block);
            assert_eq!(tokens.len(), block.len());
            for seq in &tokens {
                assert!(!seq.is_empty());
                assert!(seq.iter().all(|&id| id < vocab.len()));
            }
        }
    }
}

#[test]
fn uica_and_hardware_disagree_somewhere() {
    // The surrogate must not be a perfect copy — its table deviations
    // must be visible on some block (otherwise the paper's error
    // contrast degenerates).
    let hw = HardwareOracle::new(Microarch::Haswell);
    let uica = UicaSurrogate::new(Microarch::Haswell);
    let differs = sample_blocks().iter().any(|b| hw.predict(b) != uica.predict(b));
    assert!(differs, "uiCA surrogate identical to hardware on all samples");
}
