//! Property tests for the batch prediction contract: for every model
//! in the stack, `predict_batch` must agree *per item* with querying
//! `try_predict` sequentially in slice order — including the exact
//! positions of injected faults under [`FaultyModel`], which exercises
//! the trait's default (slice-order loop) implementation.

use std::time::Duration;

use comet_bhive::{generate_source_block, GenConfig, Source};
use comet_isa::{BasicBlock, Microarch};
use comet_models::{
    CachedModel, CostModel, CrudeModel, FaultConfig, FaultyModel, HardwareOracle, ResilientConfig,
    ResilientModel, UicaSurrogate,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_blocks() -> impl Strategy<Value = Vec<BasicBlock>> {
    (any::<u64>(), 1usize..24).prop_map(|(seed, n)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let source = if i % 2 == 0 { Source::Clang } else { Source::OpenBlas };
                generate_source_block(source, GenConfig::default(), &mut rng)
            })
            .collect()
    })
}

/// `predict_batch` must equal item-wise `try_predict` on a fresh,
/// identically-configured instance (fresh, because decorators like the
/// cache change *stats*, never values, and the fault injector advances
/// a seeded schedule with every query).
fn assert_agrees<M: CostModel, F: Fn() -> M>(make: F, blocks: &[BasicBlock]) {
    let batched = make().predict_batch(blocks);
    let sequential = make();
    assert_eq!(batched.len(), blocks.len());
    for (i, (block, got)) in blocks.iter().zip(&batched).enumerate() {
        let want = sequential.try_predict(block);
        assert_eq!(got, &want, "{} item {i}", sequential.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every override in the model stack agrees per item with the
    /// sequential scalar path.
    #[test]
    fn overrides_agree_with_sequential(blocks in arb_blocks()) {
        for march in Microarch::ALL {
            assert_agrees(|| CrudeModel::new(march), &blocks);
        }
        assert_agrees(|| UicaSurrogate::new(Microarch::Haswell), &blocks);
        assert_agrees(|| HardwareOracle::new(Microarch::Skylake), &blocks);
    }

    /// Decorator overrides (cache partitioning, resilience routing)
    /// reproduce the sequential values exactly, whatever mix of hits
    /// and misses the batch contains.
    #[test]
    fn decorators_agree_with_sequential(blocks in arb_blocks(), warm in 0usize..8) {
        assert_agrees(
            || {
                let cached = CachedModel::new(CrudeModel::new(Microarch::Haswell));
                // Pre-warm a prefix so batches mix hits and misses.
                for block in blocks.iter().take(warm) {
                    let _ = cached.try_predict(block);
                }
                cached
            },
            &blocks,
        );
        assert_agrees(
            || {
                ResilientModel::new(
                    CrudeModel::new(Microarch::Skylake),
                    ResilientConfig::default(),
                )
            },
            &blocks,
        );
    }

    /// The default `predict_batch` queries strictly in slice order, so
    /// a seeded fault schedule lands on the *same positions* as
    /// sequential querying.
    #[test]
    fn fault_positions_survive_the_default_batch_path(
        blocks in arb_blocks(),
        seed in any::<u64>(),
        rate in 0.05f64..0.35,
    ) {
        let config = FaultConfig {
            nan_rate: rate,
            transient_rate: rate,
            panic_rate: rate / 2.0,
            seed,
            ..FaultConfig::default()
        };
        let make = || FaultyModel::new(CrudeModel::new(Microarch::Haswell), config);
        let batched = make().predict_batch(&blocks);
        let sequential = make();
        for (i, (block, got)) in blocks.iter().zip(&batched).enumerate() {
            let want = sequential.try_predict(block);
            prop_assert_eq!(got, &want, "fault schedule diverged at item {}", i);
        }
        prop_assert_eq!(batched.len(), blocks.len());
    }

    /// A deadline-guarded batch of healthy queries passes through with
    /// per-item values intact (the timeout path is covered by unit
    /// tests; here we pin the value contract).
    #[test]
    fn deadline_batch_values_match(blocks in arb_blocks()) {
        use comet_models::DeadlineModel;
        let guarded =
            DeadlineModel::new(CrudeModel::new(Microarch::Haswell), Duration::from_secs(10));
        let reference = CrudeModel::new(Microarch::Haswell);
        let batched = guarded.predict_batch(&blocks);
        for (block, got) in blocks.iter().zip(&batched) {
            prop_assert_eq!(got, &reference.try_predict(block));
        }
    }
}
