//! Edge-case tests for the global retry token bucket in
//! [`ResilientModel`]: a zero budget suppresses every retry, successes
//! refill the bucket so retries resume after an outage, and the
//! shared-bucket accounting stays exact under concurrent callers.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use comet_isa::BasicBlock;
use comet_models::{CostModel, ModelError, ResilienceReport, ResilientConfig, ResilientModel};

/// A model whose failure mode is a switch: transient (retryable)
/// errors while `fail` is set, constant successes otherwise.
struct SwitchedModel {
    fail: AtomicBool,
}

impl SwitchedModel {
    fn new(failing: bool) -> SwitchedModel {
        SwitchedModel { fail: AtomicBool::new(failing) }
    }
}

impl CostModel for SwitchedModel {
    fn name(&self) -> &str {
        "switched"
    }

    fn predict(&self, _block: &BasicBlock) -> f64 {
        1.0
    }

    fn try_predict(&self, _block: &BasicBlock) -> Result<f64, ModelError> {
        if self.fail.load(Relaxed) {
            Err(ModelError::Transient { message: "backend down".into() })
        } else {
            Ok(1.0)
        }
    }
}

fn config(budget: f64, refill: f64, max_retries: u32) -> ResilientConfig {
    ResilientConfig {
        max_retries,
        // Keep the breaker out of the picture: these tests are about
        // the bucket, not the breaker.
        breaker_threshold: 1_000_000,
        backoff_base: Duration::ZERO,
        retry_budget: budget,
        retry_refill: refill,
        ..ResilientConfig::default()
    }
}

fn report<M: CostModel>(model: &ResilientModel<M>) -> ResilienceReport {
    model.resilience().expect("resilient model reports counters")
}

#[test]
fn zero_budget_suppresses_every_retry() {
    let model = ResilientModel::new(SwitchedModel::new(true), config(0.0, 0.1, 2));
    let block = comet_isa::parse_block("add rcx, rax").unwrap();
    for _ in 0..10 {
        assert!(model.try_predict(&block).is_err());
    }
    let r = report(&model);
    assert_eq!(r.queries, 10);
    assert_eq!(r.retries, 0, "a dry bucket must never grant a retry");
    assert_eq!(
        r.retries_suppressed, 10,
        "each query wants exactly one retry before the denial fails it fast"
    );
    // Only the first attempts reached the backend: no retry storm.
    assert_eq!(r.failures, 10);
}

#[test]
fn successes_refill_the_bucket_so_retries_resume_after_an_outage() {
    let model = ResilientModel::new(SwitchedModel::new(true), config(1.0, 0.5, 1));
    let block = comet_isa::parse_block("add rcx, rax").unwrap();

    // Outage: the single token funds one retry, then denials only.
    assert!(model.try_predict(&block).is_err());
    assert!(model.try_predict(&block).is_err());
    let during = report(&model);
    assert_eq!(during.retries, 1, "the initial token funds exactly one retry");
    assert_eq!(during.retries_suppressed, 1, "the second query finds the bucket dry");

    // Recovery: each success refunds 0.5 tokens (capped at the budget).
    model.inner().fail.store(false, Relaxed);
    for _ in 0..4 {
        assert!(model.try_predict(&block).is_ok());
    }

    // Relapse: the refilled bucket funds retries again.
    model.inner().fail.store(true, Relaxed);
    assert!(model.try_predict(&block).is_err());
    let after = report(&model);
    assert_eq!(after.retries, 2, "idle-time successes re-armed the retry budget");
    assert_eq!(after.retries_suppressed, 1, "no new suppression once refilled");
}

#[test]
fn concurrent_callers_share_one_bucket_exactly() {
    const THREADS: usize = 8;
    const QUERIES_PER_THREAD: u64 = 16;
    const BUDGET: f64 = 4.0;
    let model = Arc::new(ResilientModel::new(SwitchedModel::new(true), config(BUDGET, 0.1, 3)));
    let block = comet_isa::parse_block("div rcx").unwrap();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let model = Arc::clone(&model);
            let block = block.clone();
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_THREAD {
                    assert!(model.try_predict(&block).is_err());
                }
            });
        }
    });

    let total = THREADS as u64 * QUERIES_PER_THREAD;
    let r = report(&model);
    assert_eq!(r.queries, total);
    // Nothing succeeded, so nothing refilled: the whole run spends
    // exactly the initial budget, no matter how the threads interleave.
    assert_eq!(r.retries, BUDGET as u64, "token accounting must be exact under contention");
    // Every query that hit the dry bucket was suppressed exactly once;
    // at most one query can be mid-retry when the bucket dries up.
    assert!(
        r.retries_suppressed >= total - BUDGET as u64 && r.retries_suppressed <= total,
        "suppressed {} of {total} queries with budget {BUDGET}",
        r.retries_suppressed
    );
    // Backend saw first attempts + funded retries only.
    assert_eq!(r.failures, total + BUDGET as u64);
}
