//! Wall-clock deadline enforcement for cost-model queries.
//!
//! A stalled backend (deadlocked native library, hung RPC, pathological
//! input) would otherwise wedge an eval worker forever: the
//! [`ModelError::Timeout`] variant existed, but nothing in the model
//! stack ever *produced* it outside fault injection. [`DeadlineModel`]
//! is the missing watchdog: it runs every `try_predict` on a worker
//! thread and, when the configured deadline elapses first, abandons the
//! call and surfaces `ModelError::Timeout { elapsed, deadline }` to the
//! caller.
//!
//! Abandonment is cooperative-free by design — the stalled thread is
//! detached, not killed, so a genuinely wedged backend leaks one
//! parked thread per abandoned query (and keeps its `Arc<M>` alive).
//! That is the price of memory safety without `pthread_cancel`; the
//! counter in [`DeadlineModel::timeouts`] makes the leak observable,
//! and the circuit breaker in
//! [`ResilientModel`](crate::ResilientModel) stops sending traffic to a
//! backend that keeps timing out.
//!
//! Compose with [`ResilientModel`](crate::ResilientModel) via
//! [`ResilientModel::with_deadline`](crate::ResilientModel::with_deadline):
//! timeouts are retryable, count into
//! [`ResilienceReport::timeouts`](crate::ResilienceReport::timeouts),
//! and eventually trip the breaker like any other failure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use comet_isa::BasicBlock;

use crate::error::{panic_payload_message, ModelError};
use crate::resilient::ResilienceReport;
use crate::traits::CostModel;

/// A decorator that bounds the wall-clock time of every prediction.
/// See the [module docs](self) for the abandonment semantics.
#[derive(Debug)]
pub struct DeadlineModel<M> {
    inner: Arc<M>,
    deadline: Duration,
    timeouts: AtomicU64,
}

impl<M: CostModel + Send + Sync + 'static> DeadlineModel<M> {
    /// Wrap `inner`, abandoning any prediction that runs past
    /// `deadline`.
    pub fn new(inner: M, deadline: Duration) -> DeadlineModel<M> {
        DeadlineModel::from_arc(Arc::new(inner), deadline)
    }

    /// Like [`new`](DeadlineModel::new) for a model that is already
    /// shared.
    pub fn from_arc(inner: Arc<M>, deadline: Duration) -> DeadlineModel<M> {
        DeadlineModel { inner, deadline, timeouts: AtomicU64::new(0) }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The configured per-query deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Queries abandoned so far (each one may have leaked a detached
    /// worker thread that is still stalled inside the backend).
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

impl<M: CostModel + Send + Sync + 'static> CostModel for DeadlineModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    /// Infallible view: a timed-out (or otherwise failed) query
    /// surfaces as NaN.
    fn predict(&self, block: &BasicBlock) -> f64 {
        self.try_predict(block).unwrap_or(f64::NAN)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let model = Arc::clone(&self.inner);
        let owned = block.clone();
        let start = Instant::now();
        let spawned =
            std::thread::Builder::new().name("comet-deadline-watchdog".into()).spawn(move || {
                // `try_predict` implementations may themselves panic
                // (the trait default catches `predict` panics, but an
                // override need not); convert instead of unwinding
                // through the channel send.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    model.try_predict(&owned)
                }));
                let result = match caught {
                    Ok(inner) => inner,
                    Err(payload) => {
                        Err(ModelError::Panic { message: panic_payload_message(&*payload) })
                    }
                };
                let _ = tx.send(result);
            });
        let handle = match spawned {
            Ok(handle) => handle,
            // Thread spawn failed (resource exhaustion): degrade to an
            // unguarded call rather than refusing to predict at all.
            Err(_) => return self.inner.try_predict(block),
        };
        match rx.recv_timeout(self.deadline) {
            Ok(result) => {
                // The worker has already sent; reap it so healthy
                // queries never leak threads.
                let _ = handle.join();
                result
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Abandon: drop the handle (detach) and report. The
                // worker's eventual result is discarded by the dead
                // channel.
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                drop(handle);
                Err(ModelError::Timeout { elapsed: start.elapsed(), deadline: self.deadline })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker died without sending — only possible if it
                // unwound past the catch (e.g. a panic in `Drop`).
                let _ = handle.join();
                Err(ModelError::Panic { message: "deadline worker died without a result".into() })
            }
        }
    }

    /// Batch path: the whole batch runs as *one* guarded inner
    /// `predict_batch` call (so batching survives down to the backend)
    /// under the summed per-item budget — a batch of `n` gets
    /// `n × deadline` of wall clock, the same total a sequential caller
    /// would have granted. On expiry the worker is abandoned and every
    /// item reports [`ModelError::Timeout`], with the timeout counter
    /// advanced once per abandoned item (per-item accounting).
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        if blocks.is_empty() {
            return Vec::new();
        }
        let budget = self.deadline.saturating_mul(blocks.len() as u32);
        let (tx, rx) = mpsc::sync_channel(1);
        let model = Arc::clone(&self.inner);
        let owned: Vec<BasicBlock> = blocks.to_vec();
        let start = Instant::now();
        let spawned =
            std::thread::Builder::new().name("comet-deadline-watchdog".into()).spawn(move || {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    model.predict_batch(&owned)
                }));
                let result = match caught {
                    Ok(inner) => inner,
                    Err(payload) => {
                        let message = panic_payload_message(&*payload);
                        owned
                            .iter()
                            .map(|_| Err(ModelError::Panic { message: message.clone() }))
                            .collect()
                    }
                };
                let _ = tx.send(result);
            });
        let handle = match spawned {
            Ok(handle) => handle,
            // Thread spawn failed: degrade to an unguarded batch call.
            Err(_) => return self.inner.predict_batch(blocks),
        };
        match rx.recv_timeout(budget) {
            Ok(results) => {
                let _ = handle.join();
                results
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.timeouts.fetch_add(blocks.len() as u64, Ordering::Relaxed);
                drop(handle);
                let elapsed = start.elapsed();
                blocks
                    .iter()
                    .map(|_| Err(ModelError::Timeout { elapsed, deadline: budget }))
                    .collect()
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = handle.join();
                blocks
                    .iter()
                    .map(|_| {
                        Err(ModelError::Panic {
                            message: "deadline worker died without a result".into(),
                        })
                    })
                    .collect()
            }
        }
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        self.inner.resilience()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> BasicBlock {
        comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap()
    }

    /// Sleeps for `stall`, then answers 3.0.
    struct StallModel {
        stall: Duration,
    }

    impl CostModel for StallModel {
        fn name(&self) -> &str {
            "stall"
        }

        fn predict(&self, _: &BasicBlock) -> f64 {
            std::thread::sleep(self.stall);
            3.0
        }
    }

    #[test]
    fn fast_queries_pass_through() {
        let model =
            DeadlineModel::new(StallModel { stall: Duration::ZERO }, Duration::from_secs(5));
        assert_eq!(model.try_predict(&block()), Ok(3.0));
        assert_eq!(model.predict(&block()), 3.0);
        assert_eq!(model.timeouts(), 0);
        assert_eq!(model.name(), "stall");
    }

    #[test]
    fn stalled_queries_time_out_with_budget_in_the_error() {
        let model = DeadlineModel::new(
            StallModel { stall: Duration::from_millis(500) },
            Duration::from_millis(20),
        );
        let start = Instant::now();
        match model.try_predict(&block()) {
            Err(ModelError::Timeout { elapsed, deadline }) => {
                assert_eq!(deadline, Duration::from_millis(20));
                assert!(elapsed >= deadline, "{elapsed:?} < {deadline:?}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The caller got its answer at ~deadline, not ~stall.
        assert!(start.elapsed() < Duration::from_millis(400));
        assert_eq!(model.timeouts(), 1);
        assert!(model.predict(&block()).is_nan());
        assert_eq!(model.timeouts(), 2);
    }

    #[test]
    fn batch_passes_through_and_times_out_whole() {
        let model =
            DeadlineModel::new(StallModel { stall: Duration::ZERO }, Duration::from_secs(5));
        let blocks = vec![block(), block()];
        assert_eq!(model.predict_batch(&blocks), vec![Ok(3.0), Ok(3.0)]);
        assert_eq!(model.timeouts(), 0);

        let model = DeadlineModel::new(
            StallModel { stall: Duration::from_millis(500) },
            Duration::from_millis(10),
        );
        let results = model.predict_batch(&blocks);
        assert_eq!(results.len(), 2);
        for result in &results {
            assert!(matches!(result, Err(ModelError::Timeout { .. })), "{result:?}");
        }
        assert_eq!(model.timeouts(), 2, "one timeout accounted per abandoned item");
    }

    #[test]
    fn inner_errors_survive_the_watchdog() {
        struct NanModel;
        impl CostModel for NanModel {
            fn name(&self) -> &str {
                "nan"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                f64::NAN
            }
        }
        let model = DeadlineModel::new(NanModel, Duration::from_secs(5));
        // The typed error crosses the worker-thread channel intact.
        match model.try_predict(&block()) {
            Err(ModelError::NonFinite { value }) => assert!(value.is_nan()),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn inner_panics_are_reported_not_propagated() {
        struct PanicModel;
        impl CostModel for PanicModel {
            fn name(&self) -> &str {
                "panic"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                panic!("backend exploded")
            }
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let model = DeadlineModel::new(PanicModel, Duration::from_secs(5));
        let result = model.try_predict(&block());
        std::panic::set_hook(prev);
        match result {
            Err(ModelError::Panic { message }) => assert!(message.contains("exploded")),
            other => panic!("expected Panic, got {other:?}"),
        }
    }
}
