//! Seeded fault injection for robustness testing.
//!
//! [`FaultyModel`] wraps any cost model and injects the failure classes
//! of the [`ModelError`] taxonomy at configurable rates, from a seeded
//! RNG so every test run is reproducible: NaN/Inf predictions, internal
//! panics, transient errors, and latency spikes (optionally escalated
//! to [`ModelError::Timeout`] by a deadline). It powers the
//! fault-injection test suite and lets eval harnesses rehearse
//! degraded-model scenarios before they happen in production.

use std::sync::Mutex;
use std::time::Duration;

use comet_isa::BasicBlock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ModelError;
use crate::traits::CostModel;

/// Fault rates and parameters for [`FaultyModel`]. All rates are
/// probabilities in `[0, 1]` and are drawn *per query*, in the order
/// NaN → Inf → panic → transient → latency (stacked intervals, so the
/// sum of rates should stay ≤ 1; the remainder is a healthy query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of returning NaN.
    pub nan_rate: f64,
    /// Probability of returning +Inf.
    pub inf_rate: f64,
    /// Probability of an internal panic.
    pub panic_rate: f64,
    /// Probability of a transient failure.
    pub transient_rate: f64,
    /// Probability of a latency spike.
    pub latency_rate: f64,
    /// Duration of an injected latency spike.
    pub latency: Duration,
    /// Optional query deadline: a latency spike at or beyond it is
    /// reported as [`ModelError::Timeout`] (the sleep is capped at the
    /// deadline, emulating a watchdog that abandons the query).
    pub deadline: Option<Duration>,
    /// RNG seed for reproducible fault schedules.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            nan_rate: 0.0,
            inf_rate: 0.0,
            panic_rate: 0.0,
            transient_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_millis(1),
            deadline: None,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A uniform profile: every fault class at `rate` (latency spikes
    /// escalate to timeouts via a zero deadline, keeping tests fast).
    pub fn uniform(rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            nan_rate: rate,
            inf_rate: rate,
            panic_rate: rate,
            transient_rate: rate,
            latency_rate: rate,
            latency: Duration::from_millis(1),
            deadline: Some(Duration::ZERO),
            seed,
        }
    }
}

/// Counters of injected faults, per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total queries seen.
    pub queries: u64,
    /// NaN predictions injected.
    pub nan: u64,
    /// Inf predictions injected.
    pub inf: u64,
    /// Panics injected.
    pub panics: u64,
    /// Transient errors injected.
    pub transient: u64,
    /// Latency spikes injected.
    pub latency: u64,
}

impl FaultStats {
    /// Total injected faults across all classes (latency spikes under
    /// the deadline are delays, not failures, but are still counted).
    pub fn total_faults(&self) -> u64 {
        self.nan + self.inf + self.panics + self.transient + self.latency
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Nan,
    Inf,
    Panic,
    Transient,
    Latency,
}

#[derive(Debug)]
struct FaultState {
    rng: StdRng,
    stats: FaultStats,
}

/// A fault-injection decorator around any cost model. See the
/// [module docs](self).
#[derive(Debug)]
pub struct FaultyModel<M> {
    inner: M,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

impl<M: CostModel> FaultyModel<M> {
    /// Wrap `inner`, injecting faults per `config`.
    pub fn new(inner: M, config: FaultConfig) -> FaultyModel<M> {
        FaultyModel {
            inner,
            config,
            state: Mutex::new(FaultState {
                rng: StdRng::seed_from_u64(config.seed),
                stats: FaultStats::default(),
            }),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        self.state().stats
    }

    /// The critical sections below never run user code, so poisoning
    /// can only come from an injected panic unwinding *past* the lock
    /// (it does not — draws complete before any panic); recover anyway.
    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Draw the fault (if any) for one query, from the seeded schedule.
    fn draw(&self) -> Fault {
        let mut st = self.state();
        st.stats.queries += 1;
        let roll: f64 = st.rng.gen();
        let classes = [
            (self.config.nan_rate, Fault::Nan),
            (self.config.inf_rate, Fault::Inf),
            (self.config.panic_rate, Fault::Panic),
            (self.config.transient_rate, Fault::Transient),
            (self.config.latency_rate, Fault::Latency),
        ];
        let mut acc = 0.0;
        for (rate, fault) in classes {
            acc += rate;
            if roll < acc {
                match fault {
                    Fault::Nan => st.stats.nan += 1,
                    Fault::Inf => st.stats.inf += 1,
                    Fault::Panic => st.stats.panics += 1,
                    Fault::Transient => st.stats.transient += 1,
                    Fault::Latency => st.stats.latency += 1,
                    Fault::None => {}
                }
                return fault;
            }
        }
        Fault::None
    }

    /// Apply an injected latency spike; reports whether the (optional)
    /// deadline was blown.
    fn spike(&self) -> Result<(), ModelError> {
        match self.config.deadline {
            Some(deadline) if self.config.latency >= deadline => {
                // Watchdog semantics: sleep only until the deadline,
                // then abandon the query.
                if !deadline.is_zero() {
                    std::thread::sleep(deadline);
                }
                Err(ModelError::Timeout { elapsed: self.config.latency, deadline })
            }
            _ => {
                if !self.config.latency.is_zero() {
                    std::thread::sleep(self.config.latency);
                }
                Ok(())
            }
        }
    }
}

impl<M: CostModel> CostModel for FaultyModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    /// The *infallible* view injects faults physically: NaN/Inf leak
    /// out as values and panic faults genuinely panic (transient faults
    /// panic too — an infallible API has no other channel). This is the
    /// path that exercises [`catch_prediction`] and panic-safe callers
    /// like `par_map`.
    fn predict(&self, block: &BasicBlock) -> f64 {
        match self.draw() {
            Fault::Nan => f64::NAN,
            Fault::Inf => f64::INFINITY,
            Fault::Panic => panic!("injected fault: model panic"),
            Fault::Transient => panic!("injected fault: transient failure"),
            Fault::Latency => {
                let _ = self.spike();
                self.inner.predict(block)
            }
            Fault::None => self.inner.predict(block),
        }
    }

    /// The fallible view reports the same fault schedule as typed
    /// errors. Panic faults are reported without unwinding so that
    /// high-rate fault sweeps do not spam the global panic hook; the
    /// physical-unwind path is covered by [`predict`](Self::predict)
    /// plus the default `try_predict` of any plain wrapper.
    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        match self.draw() {
            Fault::Nan => Err(ModelError::NonFinite { value: f64::NAN }),
            Fault::Inf => Err(ModelError::NonFinite { value: f64::INFINITY }),
            Fault::Panic => {
                Err(ModelError::Panic { message: "injected fault: model panic".into() })
            }
            Fault::Transient => {
                Err(ModelError::Transient { message: "injected fault: transient failure".into() })
            }
            Fault::Latency => {
                self.spike()?;
                self.inner.try_predict(block)
            }
            Fault::None => self.inner.try_predict(block),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrudeModel;
    use comet_isa::Microarch;

    fn block() -> BasicBlock {
        comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap()
    }

    #[test]
    fn zero_rates_are_transparent() {
        let model = FaultyModel::new(CrudeModel::new(Microarch::Haswell), FaultConfig::default());
        let b = block();
        let expected = CrudeModel::new(Microarch::Haswell).predict(&b);
        for _ in 0..50 {
            assert_eq!(model.try_predict(&b), Ok(expected));
        }
        assert_eq!(model.stats().total_faults(), 0);
        assert_eq!(model.stats().queries, 50);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let mk = || {
            FaultyModel::new(
                CrudeModel::new(Microarch::Haswell),
                FaultConfig { nan_rate: 0.3, transient_rate: 0.3, seed: 9, ..Default::default() },
            )
        };
        let (a, b) = (mk(), mk());
        let blk = block();
        for _ in 0..100 {
            assert_eq!(a.try_predict(&blk), b.try_predict(&blk));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total_faults() > 0);
    }

    #[test]
    fn injected_errors_match_the_taxonomy() {
        let model =
            FaultyModel::new(CrudeModel::new(Microarch::Haswell), FaultConfig::uniform(0.15, 3));
        let b = block();
        let mut seen_nan = false;
        let mut seen_transient = false;
        let mut seen_panic = false;
        let mut seen_timeout = false;
        for _ in 0..300 {
            match model.try_predict(&b) {
                Ok(v) => assert!(v.is_finite()),
                Err(ModelError::NonFinite { .. }) => seen_nan = true,
                Err(ModelError::Transient { .. }) => seen_transient = true,
                Err(ModelError::Panic { .. }) => seen_panic = true,
                Err(ModelError::Timeout { .. }) => seen_timeout = true,
                Err(other) => panic!("unexpected error class: {other:?}"),
            }
        }
        assert!(seen_nan && seen_transient && seen_panic && seen_timeout);
    }

    #[test]
    fn physical_panics_are_caught_by_the_default_try_predict() {
        /// A wrapper that only forwards `predict`, so the trait's
        /// default `try_predict` (catch_unwind + finiteness check) runs
        /// against FaultyModel's *physical* fault injection.
        struct Raw<M>(M);
        impl<M: CostModel> CostModel for Raw<M> {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn predict(&self, block: &BasicBlock) -> f64 {
                self.0.predict(block)
            }
        }

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let model = Raw(FaultyModel::new(
            CrudeModel::new(Microarch::Haswell),
            FaultConfig { nan_rate: 0.2, panic_rate: 0.2, seed: 5, ..Default::default() },
        ));
        let b = block();
        let mut seen_panic = false;
        let mut seen_nan = false;
        for _ in 0..200 {
            match model.try_predict(&b) {
                Ok(v) => assert!(v.is_finite()),
                Err(ModelError::Panic { message }) => {
                    assert!(message.contains("injected fault"));
                    seen_panic = true;
                }
                Err(ModelError::NonFinite { .. }) => seen_nan = true,
                Err(other) => panic!("unexpected error class: {other:?}"),
            }
        }
        std::panic::set_hook(prev);
        assert!(seen_panic && seen_nan);
    }

    #[test]
    fn latency_spikes_delay_but_do_not_fail_without_deadline() {
        let model = FaultyModel::new(
            CrudeModel::new(Microarch::Haswell),
            FaultConfig {
                latency_rate: 1.0,
                latency: Duration::from_micros(100),
                ..Default::default()
            },
        );
        assert!(model.try_predict(&block()).is_ok());
        assert_eq!(model.stats().latency, 1);
    }
}
