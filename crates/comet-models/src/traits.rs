//! The query-access-only cost-model abstraction.

use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use comet_isa::BasicBlock;

use crate::error::{catch_prediction, ModelError};
use crate::resilient::ResilienceReport;

/// A cost model: a function from valid basic blocks to real-valued
/// costs (paper §4). COMET requires nothing else — explanations are
/// generated with query access only.
pub trait CostModel {
    /// Human-readable model name ("Ithemal", "uiCA", …).
    fn name(&self) -> &str;

    /// Predict the cost (throughput in cycles) of a basic block.
    fn predict(&self, block: &BasicBlock) -> f64;

    /// Fallible prediction: the robust entry point the explainer uses.
    ///
    /// The default implementation wraps [`predict`](CostModel::predict)
    /// with a panic guard and a finiteness check, so every existing
    /// model is fallible for free: a panicking model yields
    /// [`ModelError::Panic`] and a NaN/Inf prediction yields
    /// [`ModelError::NonFinite`]. Wrappers with richer failure handling
    /// ([`ResilientModel`](crate::ResilientModel),
    /// [`FaultyModel`](crate::FaultyModel)) override this.
    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        catch_prediction(|| self.predict(block))
    }

    /// Predict the costs of a batch of independent blocks.
    ///
    /// The contract is *per-item equivalence*: for a model without
    /// hidden query-order state, `predict_batch(blocks)[i]` must equal
    /// `try_predict(&blocks[i])`. The default implementation queries
    /// the items strictly in slice order, so even stateful fault
    /// injectors ([`FaultyModel`](crate::FaultyModel)) land their
    /// faults on the same positions a sequential caller would see.
    ///
    /// Overrides exist so batches survive the decorator stack down to
    /// kernels that can amortize work across items (the batched LSTM
    /// forward shares one weight traversal over the whole batch), or so
    /// wrappers can amortize their own bookkeeping (the cache takes one
    /// lock round per shard instead of one lock per item).
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        blocks.iter().map(|block| self.try_predict(block)).collect()
    }

    /// Resilience counters, when the model (or a wrapper in its stack)
    /// tracks them. Plain models report `None`; see
    /// [`ResilientModel::resilience`](crate::ResilientModel).
    fn resilience(&self) -> Option<ResilienceReport> {
        None
    }
}

impl<M: CostModel + ?Sized> CostModel for &M {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        (**self).predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        (**self).try_predict(block)
    }

    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        (**self).predict_batch(blocks)
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        (**self).resilience()
    }
}

impl<M: CostModel + ?Sized> CostModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        (**self).predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        (**self).try_predict(block)
    }

    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        (**self).predict_batch(blocks)
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        (**self).resilience()
    }
}

/// Number of lock stripes in a [`CachedModel`]. A power of two so
/// shard selection is a shift; 16 stripes keeps contention negligible
/// for the worker counts the evaluation harness uses.
const CACHE_SHARDS: usize = 16;

/// A memoizing wrapper: COMET evaluates many feature sets against
/// overlapping perturbation samples, so repeated queries are common.
///
/// # Keys
///
/// Entries are keyed by the 64-bit FNV-1a hash of the block's
/// canonical printed text, computed by streaming the `Display` output
/// through the hasher — the block text itself is never materialized or
/// stored, so a steady-state lookup allocates nothing. The price is a
/// theoretical collision: two distinct blocks with the same 64-bit
/// hash would silently share a cached cost. For an explanation run
/// issuing `Q ≤ 25 000` distinct queries, the birthday bound puts the
/// probability of *any* collision below `Q² / 2⁶⁵ ≈ 2 × 10⁻¹¹` — far
/// below the noise floor of the neural models being cached.
///
/// # Locking
///
/// The cache is striped into [`CACHE_SHARDS`] independently locked
/// shards selected by the key's high bits; counters are atomics, so no
/// lock is ever held while acquiring another, and a cache hit takes
/// exactly one lock, once. A miss re-acquires the same shard lock to
/// insert after the inner prediction completes — the lock is never
/// held across the (potentially slow) inner model call.
///
/// Only finite predictions are cached — errors (and NaN/Inf values)
/// are re-queried, so a model recovering from a transient fault is not
/// pinned to its failure.
///
/// # Capacity
///
/// By default the cache grows without bound. [`CachedModel::bounded`]
/// caps the number of live entries; once a shard is full, each new
/// insert evicts one arbitrary resident entry (cheap, and adequate for
/// the explainer's highly repetitive query stream).
#[derive(Debug)]
pub struct CachedModel<M> {
    inner: M,
    shards: [Mutex<Shard>; CACHE_SHARDS],
    /// Per-shard entry cap; `usize::MAX` when unbounded.
    shard_capacity: usize,
    total: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
}

/// One lock stripe: keys are FNV-1a hashes, already uniformly mixed,
/// so the map hashes them with a pass-through hasher instead of
/// re-running SipHash on every probe.
type Shard = HashMap<u64, f64, BuildHasherDefault<PassThroughHasher>>;

/// Identity hasher for pre-hashed `u64` keys.
#[derive(Debug, Default)]
struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("cache keys are hashed as u64");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// Streams `fmt::Display` output through FNV-1a without building a
/// `String`.
struct FnvWriter(u64);

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &byte in s.as_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// FNV-1a hash of the block's canonical printed form.
fn block_key(block: &BasicBlock) -> u64 {
    let mut writer = FnvWriter(0xcbf2_9ce4_8422_2325);
    write!(writer, "{block}").expect("hashing writer never fails");
    writer.0
}

/// Counters exposed by [`CachedModel::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total predictions requested.
    pub total: u64,
    /// Predictions answered from the cache.
    pub hits: u64,
    /// Entries evicted by bounded-capacity inserts. Silent eviction
    /// is invisible in hit rates until it has already cost repeat
    /// queries; this counter makes capacity pressure observable
    /// (exported as `comet_cache_evictions_total`).
    pub evictions: u64,
    /// Live cached entries at the time of the snapshot.
    pub entries: u64,
    /// Shards holding at least one entry.
    pub occupied_shards: u32,
    /// Total shard count (the lock-stripe width).
    pub shards: u32,
    /// Model version these entries belong to. The cache itself is
    /// version-agnostic (serve keeps one cache per model epoch); the
    /// owner stamps this so operators can see which version's entries
    /// a hot-swap invalidated. Zero when unversioned.
    pub version: u64,
}

impl QueryStats {
    /// Fraction of queries answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Recover a lock even when a previous holder panicked: every critical
/// section in this module is a plain read or insert, which cannot leave
/// the map in a torn state, so the poison flag carries no information.
fn recover<'a, T>(lock: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<M: CostModel> CachedModel<M> {
    /// Wrap a model with an unbounded prediction cache.
    pub fn new(inner: M) -> CachedModel<M> {
        CachedModel {
            inner,
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            shard_capacity: usize::MAX,
            total: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Wrap a model with a cache holding at most `capacity` entries
    /// (rounded up to a multiple of the shard count). Inserts into a
    /// full shard evict one arbitrary resident entry.
    pub fn bounded(inner: M, capacity: usize) -> CachedModel<M> {
        let mut model = CachedModel::new(inner);
        model.shard_capacity = capacity.div_ceil(CACHE_SHARDS).max(1);
        model
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// A consistent-enough snapshot of the cache counters. Hit/total
    /// counts are exact; occupancy is sampled shard by shard.
    pub fn stats(&self) -> QueryStats {
        let mut entries = 0u64;
        let mut occupied = 0u32;
        for shard in &self.shards {
            let len = recover(shard).len();
            entries += len as u64;
            occupied += u32::from(len > 0);
        }
        QueryStats {
            total: self.total.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            occupied_shards: occupied,
            shards: CACHE_SHARDS as u32,
            version: 0,
        }
    }

    /// Drop all cached predictions *and* reset the hit/total counters,
    /// returning the cache to its freshly-constructed state. (Callers
    /// comparing [`stats`](CachedModel::stats) across a `clear` should
    /// snapshot first.)
    pub fn clear(&self) {
        for shard in &self.shards {
            recover(shard).clear();
        }
        self.total.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// The shard a key lives in. High bits, because the pass-through
    /// hasher feeds the key's low bits to the map's bucket index — the
    /// two selectors must not overlap or every shard would use only
    /// 1/[`CACHE_SHARDS`] of its buckets.
    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[shard_index(key)]
    }

    /// Cache lookup shared by both prediction paths: one atomic bump,
    /// one shard lock, no nesting.
    fn lookup(&self, key: u64) -> Option<f64> {
        self.total.fetch_add(1, Ordering::Relaxed);
        let hit = recover(self.shard_of(key)).get(&key).copied();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Insert a finite prediction, evicting an arbitrary entry if the
    /// shard is at capacity.
    fn store(&self, key: u64, value: f64) {
        let evicted = {
            let mut shard = recover(self.shard_of(key));
            store_locked(&mut shard, self.shard_capacity, key, value)
        };
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Index of the shard a key lives in (see [`CachedModel::shard_of`]).
fn shard_index(key: u64) -> usize {
    (key >> (64 - CACHE_SHARDS.trailing_zeros())) as usize
}

/// Capacity-respecting insert under an already-held shard lock, so the
/// batch path can insert a whole shard group in one lock round.
/// Returns whether a resident entry was evicted, so the caller can
/// bump the eviction counter outside the lock.
fn store_locked(shard: &mut Shard, capacity: usize, key: u64, value: f64) -> bool {
    let evict = shard.len() >= capacity && !shard.contains_key(&key);
    if evict {
        if let Some(&victim) = shard.keys().next() {
            shard.remove(&victim);
        }
    }
    shard.insert(key, value);
    evict
}

impl<M: CostModel> CostModel for CachedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let key = block_key(block);
        if let Some(v) = self.lookup(key) {
            return v;
        }
        let value = self.inner.predict(block);
        if value.is_finite() {
            self.store(key, value);
        }
        value
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        let key = block_key(block);
        if let Some(v) = self.lookup(key) {
            // Cached values are finite by construction, but an old
            // entry could predate the finiteness guard; re-check.
            if v.is_finite() {
                return Ok(v);
            }
        }
        let value = self.inner.try_predict(block)?;
        if value.is_finite() {
            self.store(key, value);
            Ok(value)
        } else {
            // An overridden `try_predict` failed to uphold the
            // finiteness contract; normalize rather than propagate NaN.
            Err(ModelError::NonFinite { value })
        }
    }

    /// Batched lookup/miss/store with one lock round per *shard* rather
    /// than one lock per item: items are grouped by shard for the
    /// lookup pass, the misses go to the inner model as one
    /// `predict_batch` call (so batching survives the cache layer), and
    /// the finite results are stored with a second per-shard lock
    /// round. Per-item results are exactly what
    /// [`try_predict`](CostModel::try_predict) would return.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        if blocks.is_empty() {
            return Vec::new();
        }
        self.total.fetch_add(blocks.len() as u64, Ordering::Relaxed);
        let keys: Vec<u64> = blocks.iter().map(block_key).collect();
        let mut results: Vec<Option<Result<f64, ModelError>>> = vec![None; blocks.len()];

        // Lookup pass: one lock acquisition per shard that has items.
        let mut hits = 0u64;
        for shard_id in 0..CACHE_SHARDS {
            let mut guard = None;
            for (i, &key) in keys.iter().enumerate() {
                if shard_index(key) != shard_id {
                    continue;
                }
                let shard = guard.get_or_insert_with(|| recover(&self.shards[shard_id]));
                // Cached values are finite by construction; re-check as
                // in `try_predict` so a stale non-finite entry is
                // re-queried rather than served.
                if let Some(&v) = shard.get(&key) {
                    if v.is_finite() {
                        hits += 1;
                        results[i] = Some(Ok(v));
                    }
                }
            }
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }

        // Miss pass: one inner batch call for all misses. The all-miss
        // case (the common one under an explainer's perturbation
        // stream) forwards the caller's slice without copying.
        let miss_indices: Vec<usize> =
            (0..blocks.len()).filter(|&i| results[i].is_none()).collect();
        if !miss_indices.is_empty() {
            let miss_results = if miss_indices.len() == blocks.len() {
                self.inner.predict_batch(blocks)
            } else {
                let miss_blocks: Vec<BasicBlock> =
                    miss_indices.iter().map(|&i| blocks[i].clone()).collect();
                self.inner.predict_batch(&miss_blocks)
            };
            debug_assert_eq!(miss_results.len(), miss_indices.len());

            // Store pass: again one lock round per shard with items.
            let mut evicted = 0u64;
            for shard_id in 0..CACHE_SHARDS {
                let mut guard = None;
                for (j, &i) in miss_indices.iter().enumerate() {
                    if shard_index(keys[i]) != shard_id {
                        continue;
                    }
                    if let Some(Ok(v)) = miss_results.get(j) {
                        if v.is_finite() {
                            let shard =
                                guard.get_or_insert_with(|| recover(&self.shards[shard_id]));
                            evicted +=
                                u64::from(store_locked(shard, self.shard_capacity, keys[i], *v));
                        }
                    }
                }
            }
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }

            for (j, &i) in miss_indices.iter().enumerate() {
                results[i] = Some(match miss_results[j].clone() {
                    // Normalize like `try_predict`: an overridden inner
                    // that leaks a non-finite Ok becomes a typed error.
                    Ok(v) if v.is_finite() => Ok(v),
                    Ok(v) => Err(ModelError::NonFinite { value: v }),
                    Err(e) => Err(e),
                });
            }
        }
        results.into_iter().map(|r| r.expect("every batch item resolved")).collect()
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        self.inner.resilience()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting(AtomicU64);

    impl CostModel for Counting {
        fn name(&self) -> &str {
            "counting"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            self.0.fetch_add(1, Ordering::SeqCst);
            block.len() as f64
        }
    }

    #[test]
    fn cache_avoids_repeat_queries() {
        let model = CachedModel::new(Counting(AtomicU64::new(0)));
        let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        assert_eq!(model.predict(&block), 2.0);
        assert_eq!(model.predict(&block), 2.0);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 1);
        let stats = model.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.occupied_shards, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        model.clear();
        // `clear` resets counters along with the entries.
        assert_eq!(
            model.stats(),
            QueryStats { shards: CACHE_SHARDS as u32, ..QueryStats::default() }
        );
        model.predict(&block);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 2);
    }

    /// A spread of distinct blocks lands in multiple shards and every
    /// entry stays retrievable (hash keys don't collide in practice).
    #[test]
    fn distinct_blocks_spread_across_shards() {
        let model = CachedModel::new(Counting(AtomicU64::new(0)));
        let blocks: Vec<BasicBlock> = (1..=64)
            .map(|n| {
                let text = (0..n).map(|_| "add rcx, rax").collect::<Vec<_>>().join("\n");
                comet_isa::parse_block(&text).unwrap()
            })
            .collect();
        for block in &blocks {
            model.predict(block);
        }
        for block in &blocks {
            assert_eq!(model.predict(block), block.len() as f64);
        }
        let stats = model.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.hits, 64);
        assert!(stats.occupied_shards > 1, "64 keys all hashed into one shard");
    }

    #[test]
    fn bounded_cache_evicts_instead_of_growing() {
        let model = CachedModel::bounded(Counting(AtomicU64::new(0)), CACHE_SHARDS);
        let blocks: Vec<BasicBlock> = (1..=128)
            .map(|n| {
                let text = (0..n).map(|_| "mov rdx, rcx").collect::<Vec<_>>().join("\n");
                comet_isa::parse_block(&text).unwrap()
            })
            .collect();
        for block in &blocks {
            model.predict(block);
        }
        let stats = model.stats();
        assert!(
            stats.entries <= CACHE_SHARDS as u64,
            "bounded cache grew to {} entries",
            stats.entries
        );
        // Evictions are counted, not silent: everything inserted past
        // the resident set displaced an entry.
        assert_eq!(
            stats.evictions,
            128 - stats.entries,
            "evictions account for every displacement"
        );
        // A resident entry is still a hit; capacity bounds size, not
        // correctness.
        let before = model.stats().hits;
        let resident = blocks.last().unwrap();
        assert_eq!(model.predict(resident), resident.len() as f64);
        assert_eq!(model.stats().hits, before + 1);
    }

    /// The batch path must answer hits from the cache, forward only the
    /// misses to the inner model, and keep every counter exact.
    #[test]
    fn batch_path_partitions_hits_and_misses() {
        let model = CachedModel::new(Counting(AtomicU64::new(0)));
        let blocks: Vec<BasicBlock> = (1..=12)
            .map(|n| {
                let text = (0..n).map(|_| "imul rax, rcx").collect::<Vec<_>>().join("\n");
                comet_isa::parse_block(&text).unwrap()
            })
            .collect();
        // Warm half the keyspace through the scalar path.
        for block in &blocks[..6] {
            model.predict(block);
        }
        let results = model.predict_batch(&blocks);
        for (block, result) in blocks.iter().zip(&results) {
            assert_eq!(*result, Ok(block.len() as f64));
        }
        let stats = model.stats();
        assert_eq!(stats.total, 6 + 12);
        assert_eq!(stats.hits, 6, "warmed entries answered from the cache");
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 12, "only misses reached the inner");
        // A second identical batch is all hits, zero inner calls.
        let again = model.predict_batch(&blocks);
        assert_eq!(again, results);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 12);
        assert_eq!(model.stats().hits, 18);
    }

    /// Per-item equivalence: the batch default impl and the cache
    /// override agree with sequential `try_predict` calls.
    #[test]
    fn batch_default_matches_sequential_try_predict() {
        let model = Counting(AtomicU64::new(0));
        let blocks: Vec<BasicBlock> = ["nop", "add rcx, rax\nmov rdx, rcx", "div rcx"]
            .iter()
            .map(|t| comet_isa::parse_block(t).unwrap())
            .collect();
        let batched = model.predict_batch(&blocks);
        let sequential: Vec<_> = blocks.iter().map(|b| model.try_predict(b)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn trait_objects_work() {
        let model: Box<dyn CostModel> = Box::new(Counting(AtomicU64::new(0)));
        let block = comet_isa::parse_block("nop").unwrap();
        assert_eq!(model.predict(&block), 1.0);
        assert_eq!(model.name(), "counting");
        assert_eq!(model.try_predict(&block), Ok(1.0));
        assert!(model.resilience().is_none());
    }

    #[test]
    fn default_try_predict_matches_predict_on_healthy_models() {
        let model = Counting(AtomicU64::new(0));
        let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        assert_eq!(model.try_predict(&block), Ok(2.0));
    }

    #[test]
    fn default_try_predict_rejects_non_finite() {
        struct NanModel;
        impl CostModel for NanModel {
            fn name(&self) -> &str {
                "nan"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                f64::NAN
            }
        }
        let block = comet_isa::parse_block("nop").unwrap();
        assert!(matches!(NanModel.try_predict(&block), Err(ModelError::NonFinite { .. })));
    }

    #[test]
    fn default_try_predict_catches_panics() {
        struct PanicModel;
        impl CostModel for PanicModel {
            fn name(&self) -> &str {
                "panic"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                panic!("model exploded")
            }
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let block = comet_isa::parse_block("nop").unwrap();
        let result = PanicModel.try_predict(&block);
        std::panic::set_hook(prev);
        match result {
            Err(ModelError::Panic { message }) => assert!(message.contains("exploded")),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn cache_does_not_pin_non_finite_predictions() {
        struct FlakyNan(AtomicU64);
        impl CostModel for FlakyNan {
            fn name(&self) -> &str {
                "flaky-nan"
            }
            fn predict(&self, block: &BasicBlock) -> f64 {
                // First call yields NaN; later calls are healthy.
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    f64::NAN
                } else {
                    block.len() as f64
                }
            }
        }
        let model = CachedModel::new(FlakyNan(AtomicU64::new(0)));
        let block = comet_isa::parse_block("nop").unwrap();
        assert!(model.predict(&block).is_nan());
        // The NaN was not cached: the retry reaches the inner model.
        assert_eq!(model.try_predict(&block), Ok(1.0));
        // And the recovered value is now served from the cache.
        assert_eq!(model.predict(&block), 1.0);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 2);
    }

    /// 16 threads hammering a bounded cache with a keyspace several
    /// times its capacity: the bound must hold under concurrent
    /// insert/evict races, and the counters must stay exact —
    /// `inner_calls == total - hits` is an invariant of the miss path
    /// (every miss bumps `total`, skips `hits`, and calls the inner
    /// model exactly once), even when two threads miss the same key
    /// simultaneously and both compute it.
    #[test]
    fn bounded_cache_survives_concurrent_hammering() {
        // Capacity a multiple of the shard count, so `bounded`'s
        // per-shard rounding cannot raise the effective global bound.
        const CAPACITY: usize = 4 * CACHE_SHARDS;
        const KEYSPACE: usize = 10 * CACHE_SHARDS;
        const THREADS: u64 = 16;
        const ITERS: u64 = 2_000;

        let model = CachedModel::bounded(Counting(AtomicU64::new(0)), CAPACITY);
        let blocks: Vec<BasicBlock> = (1..=KEYSPACE)
            .map(|n| {
                let text = (0..n).map(|_| "add rcx, rax").collect::<Vec<_>>().join("\n");
                comet_isa::parse_block(&text).unwrap()
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let model = &model;
                let blocks = &blocks;
                scope.spawn(move || {
                    // Cheap deterministic per-thread stream, biased so
                    // different threads revisit overlapping keys.
                    let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1);
                    for _ in 0..ITERS {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let block = &blocks[(state >> 33) as usize % blocks.len()];
                        assert_eq!(model.predict(block), block.len() as f64);
                    }
                });
            }
        });

        let stats = model.stats();
        let inner_calls = model.inner().0.load(Ordering::SeqCst);
        assert_eq!(stats.total, THREADS * ITERS, "every query counted exactly once");
        assert!(stats.entries <= CAPACITY as u64, "bound violated: {} entries", stats.entries);
        assert_eq!(inner_calls, stats.total - stats.hits, "miss-path counter invariant");
        assert!(stats.hits > 0, "a keyspace this small must produce hits");
        // Eviction actually happened: more misses than could ever fit.
        assert!(inner_calls > CAPACITY as u64);
        // Displacements are counted: every store either evicted, added
        // a resident, or overwrote a racing same-key store, so the
        // counter is bounded by inserts − residents and must be hot.
        assert!(stats.evictions > 0, "a keyspace over capacity must evict");
        assert!(stats.evictions <= inner_calls - stats.entries, "evictions over-counted");
    }
}
