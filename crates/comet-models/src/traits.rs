//! The query-access-only cost-model abstraction.

use std::collections::HashMap;
use std::sync::Mutex;

use comet_isa::BasicBlock;

use crate::error::{catch_prediction, ModelError};
use crate::resilient::ResilienceReport;

/// A cost model: a function from valid basic blocks to real-valued
/// costs (paper §4). COMET requires nothing else — explanations are
/// generated with query access only.
pub trait CostModel {
    /// Human-readable model name ("Ithemal", "uiCA", …).
    fn name(&self) -> &str;

    /// Predict the cost (throughput in cycles) of a basic block.
    fn predict(&self, block: &BasicBlock) -> f64;

    /// Fallible prediction: the robust entry point the explainer uses.
    ///
    /// The default implementation wraps [`predict`](CostModel::predict)
    /// with a panic guard and a finiteness check, so every existing
    /// model is fallible for free: a panicking model yields
    /// [`ModelError::Panic`] and a NaN/Inf prediction yields
    /// [`ModelError::NonFinite`]. Wrappers with richer failure handling
    /// ([`ResilientModel`](crate::ResilientModel),
    /// [`FaultyModel`](crate::FaultyModel)) override this.
    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        catch_prediction(|| self.predict(block))
    }

    /// Resilience counters, when the model (or a wrapper in its stack)
    /// tracks them. Plain models report `None`; see
    /// [`ResilientModel::resilience`](crate::ResilientModel).
    fn resilience(&self) -> Option<ResilienceReport> {
        None
    }
}

impl<M: CostModel + ?Sized> CostModel for &M {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        (**self).predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        (**self).try_predict(block)
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        (**self).resilience()
    }
}

impl<M: CostModel + ?Sized> CostModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        (**self).predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        (**self).try_predict(block)
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        (**self).resilience()
    }
}

/// A memoizing wrapper: COMET evaluates many feature sets against
/// overlapping perturbation samples, so repeated queries are common.
///
/// Keys are the printed block text (blocks print canonically). Only
/// finite predictions are cached — errors (and NaN/Inf values) are
/// re-queried, so a model recovering from a transient fault is not
/// pinned to its failure.
#[derive(Debug)]
pub struct CachedModel<M> {
    inner: M,
    cache: Mutex<HashMap<String, f64>>,
    queries: Mutex<QueryStats>,
}

/// Counters exposed by [`CachedModel::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total predictions requested.
    pub total: u64,
    /// Predictions answered from the cache.
    pub hits: u64,
}

/// Recover a lock even when a previous holder panicked: every critical
/// section in this module is a plain read or insert, which cannot leave
/// the map in a torn state, so the poison flag carries no information.
fn recover<'a, T>(lock: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<M: CostModel> CachedModel<M> {
    /// Wrap a model with a prediction cache.
    pub fn new(inner: M) -> CachedModel<M> {
        CachedModel { inner, cache: Mutex::new(HashMap::new()), queries: Mutex::new(QueryStats::default()) }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Cache hit statistics.
    pub fn stats(&self) -> QueryStats {
        *recover(&self.queries)
    }

    /// Drop all cached predictions.
    pub fn clear(&self) {
        recover(&self.cache).clear();
    }

    /// Cache lookup shared by both prediction paths.
    fn lookup(&self, key: &str) -> Option<f64> {
        let mut stats = recover(&self.queries);
        stats.total += 1;
        if let Some(&v) = recover(&self.cache).get(key) {
            stats.hits += 1;
            return Some(v);
        }
        None
    }
}

impl<M: CostModel> CostModel for CachedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let key = block.to_string();
        if let Some(v) = self.lookup(&key) {
            return v;
        }
        let value = self.inner.predict(block);
        if value.is_finite() {
            recover(&self.cache).insert(key, value);
        }
        value
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        let key = block.to_string();
        if let Some(v) = self.lookup(&key) {
            // Cached values are finite by construction, but an old
            // entry could predate the finiteness guard; re-check.
            if v.is_finite() {
                return Ok(v);
            }
        }
        let value = self.inner.try_predict(block)?;
        if value.is_finite() {
            recover(&self.cache).insert(key, value);
            Ok(value)
        } else {
            // An overridden `try_predict` failed to uphold the
            // finiteness contract; normalize rather than propagate NaN.
            Err(ModelError::NonFinite { value })
        }
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        self.inner.resilience()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting(AtomicU64);

    impl CostModel for Counting {
        fn name(&self) -> &str {
            "counting"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            self.0.fetch_add(1, Ordering::SeqCst);
            block.len() as f64
        }
    }

    #[test]
    fn cache_avoids_repeat_queries() {
        let model = CachedModel::new(Counting(AtomicU64::new(0)));
        let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        assert_eq!(model.predict(&block), 2.0);
        assert_eq!(model.predict(&block), 2.0);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 1);
        let stats = model.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.hits, 1);
        model.clear();
        model.predict(&block);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn trait_objects_work() {
        let model: Box<dyn CostModel> = Box::new(Counting(AtomicU64::new(0)));
        let block = comet_isa::parse_block("nop").unwrap();
        assert_eq!(model.predict(&block), 1.0);
        assert_eq!(model.name(), "counting");
        assert_eq!(model.try_predict(&block), Ok(1.0));
        assert!(model.resilience().is_none());
    }

    #[test]
    fn default_try_predict_matches_predict_on_healthy_models() {
        let model = Counting(AtomicU64::new(0));
        let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        assert_eq!(model.try_predict(&block), Ok(2.0));
    }

    #[test]
    fn default_try_predict_rejects_non_finite() {
        struct NanModel;
        impl CostModel for NanModel {
            fn name(&self) -> &str {
                "nan"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                f64::NAN
            }
        }
        let block = comet_isa::parse_block("nop").unwrap();
        assert!(matches!(
            NanModel.try_predict(&block),
            Err(ModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn default_try_predict_catches_panics() {
        struct PanicModel;
        impl CostModel for PanicModel {
            fn name(&self) -> &str {
                "panic"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                panic!("model exploded")
            }
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let block = comet_isa::parse_block("nop").unwrap();
        let result = PanicModel.try_predict(&block);
        std::panic::set_hook(prev);
        match result {
            Err(ModelError::Panic { message }) => assert!(message.contains("exploded")),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn cache_does_not_pin_non_finite_predictions() {
        struct FlakyNan(AtomicU64);
        impl CostModel for FlakyNan {
            fn name(&self) -> &str {
                "flaky-nan"
            }
            fn predict(&self, block: &BasicBlock) -> f64 {
                // First call yields NaN; later calls are healthy.
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    f64::NAN
                } else {
                    block.len() as f64
                }
            }
        }
        let model = CachedModel::new(FlakyNan(AtomicU64::new(0)));
        let block = comet_isa::parse_block("nop").unwrap();
        assert!(model.predict(&block).is_nan());
        // The NaN was not cached: the retry reaches the inner model.
        assert_eq!(model.try_predict(&block), Ok(1.0));
        // And the recovered value is now served from the cache.
        assert_eq!(model.predict(&block), 1.0);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 2);
    }
}
