//! The query-access-only cost-model abstraction.

use std::collections::HashMap;
use std::sync::Mutex;

use comet_isa::BasicBlock;

/// A cost model: a function from valid basic blocks to real-valued
/// costs (paper §4). COMET requires nothing else — explanations are
/// generated with query access only.
pub trait CostModel {
    /// Human-readable model name ("Ithemal", "uiCA", …).
    fn name(&self) -> &str;

    /// Predict the cost (throughput in cycles) of a basic block.
    fn predict(&self, block: &BasicBlock) -> f64;
}

impl<M: CostModel + ?Sized> CostModel for &M {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        (**self).predict(block)
    }
}

impl<M: CostModel + ?Sized> CostModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        (**self).predict(block)
    }
}

/// A memoizing wrapper: COMET evaluates many feature sets against
/// overlapping perturbation samples, so repeated queries are common.
///
/// Keys are the printed block text (blocks print canonically).
#[derive(Debug)]
pub struct CachedModel<M> {
    inner: M,
    cache: Mutex<HashMap<String, f64>>,
    queries: Mutex<QueryStats>,
}

/// Counters exposed by [`CachedModel::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total predictions requested.
    pub total: u64,
    /// Predictions answered from the cache.
    pub hits: u64,
}

impl<M: CostModel> CachedModel<M> {
    /// Wrap a model with a prediction cache.
    pub fn new(inner: M) -> CachedModel<M> {
        CachedModel { inner, cache: Mutex::new(HashMap::new()), queries: Mutex::new(QueryStats::default()) }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Cache hit statistics.
    pub fn stats(&self) -> QueryStats {
        *self.queries.lock().expect("stats lock")
    }

    /// Drop all cached predictions.
    pub fn clear(&self) {
        self.cache.lock().expect("cache lock").clear();
    }
}

impl<M: CostModel> CostModel for CachedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let key = block.to_string();
        {
            let mut stats = self.queries.lock().expect("stats lock");
            stats.total += 1;
            if let Some(&v) = self.cache.lock().expect("cache lock").get(&key) {
                stats.hits += 1;
                return v;
            }
        }
        let value = self.inner.predict(block);
        self.cache.lock().expect("cache lock").insert(key, value);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting(AtomicU64);

    impl CostModel for Counting {
        fn name(&self) -> &str {
            "counting"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            self.0.fetch_add(1, Ordering::SeqCst);
            block.len() as f64
        }
    }

    #[test]
    fn cache_avoids_repeat_queries() {
        let model = CachedModel::new(Counting(AtomicU64::new(0)));
        let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        assert_eq!(model.predict(&block), 2.0);
        assert_eq!(model.predict(&block), 2.0);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 1);
        let stats = model.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.hits, 1);
        model.clear();
        model.predict(&block);
        assert_eq!(model.inner().0.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn trait_objects_work() {
        let model: Box<dyn CostModel> = Box::new(Counting(AtomicU64::new(0)));
        let block = comet_isa::parse_block("nop").unwrap();
        assert_eq!(model.predict(&block), 1.0);
        assert_eq!(model.name(), "counting");
    }
}
