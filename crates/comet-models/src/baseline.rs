//! The coarse-grained baseline throughput model from Abel & Reineke
//! (ICS '22), Table 1 — referenced by the paper in §6.3 as a
//! traditional model that uses only coarse block features yet beats
//! LLVM-MCA. Its prediction is the binding coarse resource:
//!
//! `max( n/4 , loads/2 , stores )`
//!
//! (4-wide issue, two load ports, one store port.) Included both as the
//! design ancestor of the crude model C's `cost_η` term and as an extra
//! comparison point for the error tables.

use comet_isa::{BasicBlock, Microarch};

use crate::traits::CostModel;

/// The coarse-feature baseline throughput model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoarseBaselineModel;

impl CoarseBaselineModel {
    /// A new baseline model (microarchitecture-independent).
    pub fn new() -> CoarseBaselineModel {
        CoarseBaselineModel
    }

    /// Count the coarse features of a block:
    /// `(instructions, loads, stores)`.
    pub fn coarse_features(block: &BasicBlock) -> (usize, usize, usize) {
        let mut loads = 0;
        let mut stores = 0;
        for inst in block {
            if inst.reads_memory() {
                loads += 1;
            }
            if inst.writes_memory() {
                stores += 1;
            }
        }
        (block.len(), loads, stores)
    }
}

impl CostModel for CoarseBaselineModel {
    fn name(&self) -> &str {
        "coarse baseline"
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let (n, loads, stores) = CoarseBaselineModel::coarse_features(block);
        let issue = n as f64 / comet_isa::tables::ISSUE_WIDTH;
        let load_pressure = loads as f64 / 2.0;
        let store_pressure = stores as f64;
        issue.max(load_pressure).max(store_pressure)
    }
}

/// Convenience: the baseline is microarchitecture-independent, but some
/// call sites want a per-march constructor for symmetry.
pub fn coarse_baseline(_march: Microarch) -> CoarseBaselineModel {
    CoarseBaselineModel
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn issue_bound_for_compute_blocks() {
        let block = parse_block("add rax, 1\nadd rbx, 1\nimul rcx, rdx\nxor r8, r9").unwrap();
        assert_eq!(CoarseBaselineModel::new().predict(&block), 1.0);
    }

    #[test]
    fn store_bound_for_store_heavy_blocks() {
        let block = parse_block(
            "mov qword ptr [rdi], rax\nmov qword ptr [rdi + 8], rbx\nmov qword ptr [rdi + 16], rcx",
        )
        .unwrap();
        assert_eq!(CoarseBaselineModel::new().predict(&block), 3.0);
    }

    #[test]
    fn load_bound_counts_two_ports() {
        let text = (0..6)
            .map(|i| format!("mov r{}, qword ptr [rdi + {}]", 8 + i, 8 * i))
            .collect::<Vec<_>>()
            .join("\n");
        let block = parse_block(&text).unwrap();
        assert_eq!(CoarseBaselineModel::new().predict(&block), 3.0);
    }

    #[test]
    fn blind_to_expensive_instructions() {
        // The defining weakness of coarse features: div looks like mov.
        let cheap = parse_block("mov rax, rbx").unwrap();
        let expensive = parse_block("div rbx").unwrap();
        let model = CoarseBaselineModel::new();
        assert_eq!(model.predict(&cheap), model.predict(&expensive));
    }

    #[test]
    fn coarse_features_counted() {
        let block =
            parse_block("mov rax, qword ptr [rdi]\nmov qword ptr [rsi], rax\npush rbx").unwrap();
        assert_eq!(CoarseBaselineModel::coarse_features(&block), (3, 1, 2));
    }
}
