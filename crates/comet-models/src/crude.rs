//! The crude, interpretable analytical cost model C (paper §6, eq. 8
//! and Appendix G), used as the explanation-accuracy oracle: its
//! closed-form structure yields objective ground-truth explanations.

use std::cell::RefCell;

use comet_graph::{DepConfig, DepEdge, DepKind, EdgeSetScratch};
use comet_isa::{instruction_throughput, BasicBlock, Microarch};

use crate::traits::CostModel;

thread_local! {
    /// Reusable dependency-analysis buffers for [`CrudeModel::predict`].
    ///
    /// The explainer queries the crude model tens of thousands of
    /// times per explanation; the cost function only needs dependency
    /// *identities* (RAW pairs), so recomputing them through a
    /// per-thread [`EdgeSetScratch`] instead of building a fresh
    /// [`BlockGraph`] keeps the hot path free of steady-state
    /// allocations. Identity set and cost are exactly those of the
    /// graph-based computation (both run the same hazard enumeration).
    static DEP_SCRATCH: RefCell<EdgeSetScratch> = RefCell::new(EdgeSetScratch::new());
}

/// The paper's interpretable cost model C:
///
/// `C(β) = max{ cost_η(n), max_i cost_inst(inst_i), max_δ cost_dep(δ) }`
///
/// with `cost_η(n) = n/4`, `cost_inst` the per-instruction hardware
/// reciprocal throughput (Appendix G sources uops.info; we source our
/// own timing tables), and `cost_dep` zero for WAR/WAW (resolved by
/// renaming) but `cost_inst(i) + cost_inst(j)` for RAW.
#[derive(Debug, Clone, Copy)]
pub struct CrudeModel {
    march: Microarch,
}

impl CrudeModel {
    /// The crude model for a microarchitecture.
    pub fn new(march: Microarch) -> CrudeModel {
        CrudeModel { march }
    }

    /// Target microarchitecture.
    pub fn march(&self) -> Microarch {
        self.march
    }

    /// `cost_inst`: the throughput cost of one instruction.
    pub fn cost_inst(&self, block: &BasicBlock, index: usize) -> f64 {
        instruction_throughput(&block.instructions()[index], self.march)
    }

    /// `cost_dep`: the throughput cost of one dependency edge.
    pub fn cost_dep(&self, block: &BasicBlock, edge: &DepEdge) -> f64 {
        match edge.kind {
            DepKind::Raw => self.cost_inst(block, edge.src) + self.cost_inst(block, edge.dst),
            DepKind::War | DepKind::Waw => 0.0,
        }
    }

    /// `cost_η`: the throughput cost of issuing `n` instructions on a
    /// 4-wide front end.
    pub fn cost_eta(&self, n: usize) -> f64 {
        n as f64 / 4.0
    }

    /// The cost formula against caller-held dependency scratch, shared
    /// by the scalar and batch prediction paths.
    fn cost_with(&self, block: &BasicBlock, scratch: &mut EdgeSetScratch) -> f64 {
        scratch.compute(block, DepConfig::default());
        let mut cost = self.cost_eta(block.len());
        for i in 0..block.len() {
            cost = cost.max(self.cost_inst(block, i));
        }
        for &(kind, src, dst) in scratch.ids() {
            // WAR/WAW are free (register renaming); only RAW pays.
            if kind == DepKind::Raw {
                cost = cost.max(self.cost_inst(block, src) + self.cost_inst(block, dst));
            }
        }
        cost
    }
}

impl CostModel for CrudeModel {
    fn name(&self) -> &str {
        match self.march {
            Microarch::Haswell => "C_HSW",
            Microarch::Skylake => "C_SKL",
        }
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        DEP_SCRATCH.with(|cell| self.cost_with(block, &mut cell.borrow_mut()))
    }

    /// Batch path: the crude model is a total, finite function, so the
    /// override skips the per-item panic guard the default would pay
    /// and holds one scratch borrow for the whole batch.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, crate::ModelError>> {
        DEP_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            blocks.iter().map(|block| Ok(self.cost_with(block, &mut scratch))).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_graph::BlockGraph;
    use comet_isa::parse_block;

    #[test]
    fn eta_bound_for_cheap_blocks() {
        // Eight independent cheap instructions: η/4 = 2 dominates.
        let text = (0..8).map(|i| format!("mov r{}, 1", 8 + i)).collect::<Vec<_>>().join("\n");
        let block = parse_block(&text).unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        assert_eq!(c.predict(&block), 2.0);
    }

    #[test]
    fn division_bound() {
        let block = parse_block("div rcx\nmov rbx, 1").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let div_cost = c.cost_inst(&block, 0);
        assert!(c.predict(&block) >= div_cost);
        assert!(div_cost > 20.0);
    }

    #[test]
    fn raw_dependency_bound() {
        // Two stores with a RAW chain: dep cost = 1.0 + 1.0 > η/4.
        let block = parse_block("add rcx, rax\nmov qword ptr [rdi], rcx").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let g = BlockGraph::build(&block);
        let edge = g.find_edge(DepKind::Raw, 0, 1).unwrap();
        let dep_cost = c.cost_dep(&block, edge);
        assert_eq!(c.predict(&block), dep_cost);
        assert!(dep_cost > c.cost_eta(2));
    }

    #[test]
    fn war_waw_cost_nothing() {
        let block = parse_block("mov rdx, rcx\nmov rcx, rbx\nmov rcx, rax").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let g = BlockGraph::build(&block);
        for edge in g.edges() {
            if edge.kind != DepKind::Raw {
                assert_eq!(c.cost_dep(&block, edge), 0.0);
            }
        }
    }

    #[test]
    fn quarter_cycle_granularity() {
        // The least change in C's prediction is a quarter unit
        // (Appendix E: ε = Δη/4 = 0.25).
        let c = CrudeModel::new(Microarch::Skylake);
        let b1 = parse_block("mov rax, 1").unwrap();
        let b2 = parse_block("mov rax, 1\nmov rbx, 1").unwrap();
        assert_eq!(c.predict(&b2) - c.predict(&b1), 0.25);
    }

    #[test]
    fn microarch_changes_predictions() {
        let block = parse_block("vdivss xmm0, xmm0, xmm6").unwrap();
        let hsw = CrudeModel::new(Microarch::Haswell).predict(&block);
        let skl = CrudeModel::new(Microarch::Skylake).predict(&block);
        assert!(hsw > skl, "HSW {hsw} vs SKL {skl}");
    }

    /// The scratch-based hot path must equal the graph-based formula
    /// bit for bit (same edge identities, same max).
    #[test]
    fn scratch_predict_matches_graph_formula() {
        let texts = [
            "add rcx, rax\nmov rdx, rcx\npop rbx",
            "div rcx\nmov rbx, 1",
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
            "mov qword ptr [rdi], rcx\nmov rax, qword ptr [rdi]\nadd rax, rcx",
            "nop",
        ];
        for march in [Microarch::Haswell, Microarch::Skylake] {
            let c = CrudeModel::new(march);
            for text in texts {
                let block = parse_block(text).unwrap();
                let graph = BlockGraph::build(&block);
                let mut reference = c.cost_eta(block.len());
                for i in 0..block.len() {
                    reference = reference.max(c.cost_inst(&block, i));
                }
                for edge in graph.edges() {
                    reference = reference.max(c.cost_dep(&block, edge));
                }
                assert_eq!(c.predict(&block), reference, "{march:?}: {text}");
            }
        }
    }
}
