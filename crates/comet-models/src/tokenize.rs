//! Tokenization of basic blocks for the neural cost model, mirroring
//! Ithemal's canonicalization: opcode token, then per-operand tokens,
//! with memory operands bracketed so the model sees addressing
//! structure.

use std::collections::HashMap;

use comet_isa::{BasicBlock, Instruction, Operand, RegClass, Register, Size};

/// A fixed, deterministic vocabulary over the modelled ISA.
#[derive(Debug, Clone)]
pub struct Vocab {
    ids: HashMap<String, usize>,
    names: Vec<String>,
}

/// Marker token opening a memory operand.
pub const MEM_OPEN: &str = "<mem>";
/// Marker token closing a memory operand.
pub const MEM_CLOSE: &str = "</mem>";
/// Marker token for an immediate operand.
pub const IMM: &str = "<imm>";
/// Token standing in for anything outside the vocabulary: blocks from
/// foreign corpora can contain opcodes or registers the surrogate was
/// never trained on, and the model must survive them (with a generic
/// embedding) rather than crash.
pub const UNK: &str = "<unk>";

impl Vocab {
    /// Build the canonical vocabulary: every opcode, every register
    /// name, and the structural markers. Deterministic across runs.
    pub fn standard() -> Vocab {
        let mut names: Vec<String> = Vec::new();
        for op in comet_isa::Opcode::ALL {
            names.push(op.name().to_string());
        }
        for class in [RegClass::Gpr, RegClass::Vec] {
            let sizes: &[Size] = match class {
                RegClass::Gpr => &Size::GPR_SIZES,
                RegClass::Vec => &Size::VEC_SIZES,
            };
            for &size in sizes {
                for reg in Register::all(class, size) {
                    names.push(reg.name().to_string());
                }
            }
        }
        names.push(MEM_OPEN.to_string());
        names.push(MEM_CLOSE.to_string());
        names.push(IMM.to_string());
        names.push(UNK.to_string());
        let ids = names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        Vocab { ids, names }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty (never for [`Vocab::standard`]).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Id of a token. Out-of-vocabulary tokens map to the dedicated
    /// [`UNK`] id, so tokenization never fails on unfamiliar input.
    pub fn id(&self, token: &str) -> usize {
        match self.ids.get(token) {
            Some(&id) => id,
            None => self.unk_id(),
        }
    }

    /// Id of a token, or `None` if it is outside the vocabulary.
    pub fn try_id(&self, token: &str) -> Option<usize> {
        self.ids.get(token).copied()
    }

    /// The id of the [`UNK`] token.
    pub fn unk_id(&self) -> usize {
        // UNK is inserted by `standard`; a hand-built vocabulary
        // without it degrades to id 0 rather than panicking.
        self.ids.get(UNK).copied().unwrap_or(0)
    }

    /// Token string of an id.
    pub fn token(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Tokenize one instruction.
    pub fn tokenize_instruction(&self, inst: &Instruction) -> Vec<usize> {
        let mut tokens = vec![self.id(inst.opcode.name())];
        for operand in &inst.operands {
            match operand {
                Operand::Reg(reg) => tokens.push(self.id(reg.name())),
                Operand::Mem(mem) => {
                    tokens.push(self.id(MEM_OPEN));
                    if let Some(base) = mem.base {
                        tokens.push(self.id(base.name()));
                    }
                    if let Some(index) = mem.index {
                        tokens.push(self.id(index.name()));
                    }
                    tokens.push(self.id(MEM_CLOSE));
                }
                Operand::Imm(_) => tokens.push(self.id(IMM)),
            }
        }
        tokens
    }

    /// Tokenize a block: one id sequence per instruction.
    pub fn tokenize_block(&self, block: &BasicBlock) -> Vec<Vec<usize>> {
        block.iter().map(|inst| self.tokenize_instruction(inst)).collect()
    }
}

impl Default for Vocab {
    fn default() -> Vocab {
        Vocab::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn vocabulary_is_deterministic() {
        let a = Vocab::standard();
        let b = Vocab::standard();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.id("add"), b.id("add"));
        assert_eq!(a.id("xmm5"), b.id("xmm5"));
    }

    #[test]
    fn tokens_round_trip() {
        let vocab = Vocab::standard();
        for token in ["add", "div", "rax", "r15b", "ymm9", MEM_OPEN, IMM] {
            assert_eq!(vocab.token(vocab.id(token)), token);
        }
    }

    #[test]
    fn tokenizes_memory_with_structure() {
        let vocab = Vocab::standard();
        let block = parse_block("mov rax, qword ptr [rbp + rcx*8 + 16]").unwrap();
        let tokens = vocab.tokenize_block(&block);
        assert_eq!(tokens.len(), 1);
        let names: Vec<&str> = tokens[0].iter().map(|&id| vocab.token(id)).collect();
        assert_eq!(names, vec!["mov", "rax", MEM_OPEN, "rbp", "rcx", MEM_CLOSE]);
    }

    #[test]
    fn different_registers_tokenize_differently() {
        let vocab = Vocab::standard();
        let a = vocab.tokenize_block(&parse_block("add rcx, rax").unwrap());
        let b = vocab.tokenize_block(&parse_block("add rcx, rbx").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn every_opcode_and_register_tokenizes() {
        let vocab = Vocab::standard();
        assert!(vocab.len() >= 95 + 96 + 4);
        for op in comet_isa::Opcode::ALL {
            assert_ne!(vocab.id(op.name()), vocab.unk_id());
        }
    }

    #[test]
    fn unknown_tokens_map_to_unk_instead_of_panicking() {
        let vocab = Vocab::standard();
        assert_eq!(vocab.id("totally_bogus_opcode"), vocab.unk_id());
        assert_eq!(vocab.token(vocab.unk_id()), UNK);
        assert_eq!(vocab.try_id("totally_bogus_opcode"), None);
        assert_eq!(vocab.try_id("add"), Some(vocab.id("add")));
    }
}
