//! A versioned, crash-safe on-disk model registry.
//!
//! The registry is a flat directory of immutable, checksummed model
//! snapshots plus a `MANIFEST` naming the last-known-good version:
//!
//! ```text
//! registry/
//!   MANIFEST           COMETR1 <fnv-1a-16hex> {"v":1,"active":3}
//!   v000001.snap       COMETM1 <fnv-1a-16hex> {"v":1,"version":1,...}
//!   v000002.snap
//!   v000003.snap
//!   v000002.snap.quarantine   (a snapshot that failed verification)
//! ```
//!
//! Every write follows the eval journal's durability discipline —
//! write to a `.tmp` sibling, `fsync` the file, `rename` into place,
//! `fsync` the parent directory — so a crash (or `kill -9`) at any
//! instant leaves either the old file or the new file, never a torn
//! one. Each file carries a 64-bit FNV-1a checksum of its payload in
//! the header; [`ModelRegistry::open`] verifies every snapshot and
//! **quarantines** (renames aside, never deletes) anything torn or
//! corrupt, then resolves the active version from the `MANIFEST` —
//! falling back to the newest intact snapshot (and rewriting the
//! `MANIFEST`) when the manifest itself is missing, corrupt, or
//! dangling. Staging a candidate ([`stage`](ModelRegistry::stage))
//! only adds a snapshot file; the `MANIFEST` moves only on
//! [`promote`](ModelRegistry::promote), which the serving layer calls
//! *after* a candidate survives shadow validation and its probation
//! window — so the manifest always names a version that actually
//! served traffic, and recovery after a mid-swap crash lands on the
//! last-known-good model.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Snapshot / manifest record schema version.
const RECORD_V: u32 = 1;
/// Header magic for snapshot files.
const SNAP_MAGIC: &str = "COMETM1";
/// Header magic for the manifest.
const MANIFEST_MAGIC: &str = "COMETR1";
/// The manifest file name.
const MANIFEST: &str = "MANIFEST";

/// 64-bit FNV-1a (same parameters as the eval journal and the
/// prediction-cache key hash).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Atomic, durable file replacement: tmp sibling → write → fsync →
/// rename → fsync parent. Mirrors the eval journal's `atomic_write`
/// (comet-eval sits downstream of this crate, so the helper lives here
/// too).
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        #[cfg(unix)]
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            if let Ok(handle) = File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// One immutable model snapshot: what `vNNNNNN.snap` holds.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ModelSnapshot {
    /// Record schema version.
    pub v: u32,
    /// Registry-assigned monotonic version.
    pub version: u64,
    /// Model kind, e.g. `"crude-skylake"` — how to rebuild the model.
    pub kind: String,
    /// Free-form operator note (who staged it, why).
    pub note: String,
    /// Opaque model payload (e.g. serialized network weights); empty
    /// for analytical models rebuilt from `kind` alone.
    pub payload: String,
}

impl ModelSnapshot {
    /// FNV-1a fingerprint of the payload (weights identity).
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.payload.as_bytes())
    }
}

/// Catalog entry for one intact snapshot on disk.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Registry version.
    pub version: u64,
    /// Model kind.
    pub kind: String,
    /// Operator note.
    pub note: String,
    /// Payload fingerprint, `{:016x}`.
    pub fingerprint: String,
}

/// What [`ModelRegistry::open`] had to repair, for surfacing to
/// operators (admin endpoint, chaos harness).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegistryRecovery {
    /// File names renamed to `*.quarantine` (torn or corrupt).
    pub quarantined: Vec<String>,
    /// The manifest was missing, corrupt, or named a missing snapshot
    /// and was rebuilt to point at the newest intact version.
    pub manifest_recovered: bool,
    /// Stray `*.tmp` files (interrupted writes) removed.
    pub removed_tmp: usize,
}

/// Manifest payload: which version is last-known-good.
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    v: u32,
    active: u64,
}

#[derive(Debug, Default)]
struct RegState {
    versions: BTreeMap<u64, SnapshotInfo>,
    active: Option<u64>,
}

/// The registry handle. All methods take `&self`; internal state is
/// mutex-guarded so the serving layer can share one handle across
/// admin requests.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    state: Mutex<RegState>,
}

/// `v000042.snap` for version 42.
fn snap_name(version: u64) -> String {
    format!("v{version:06}.snap")
}

/// Serialize a record line: `MAGIC <fnv16hex> <json>\n`, checksum over
/// the JSON bytes.
fn encode_record(magic: &str, json: &str) -> String {
    format!("{magic} {:016x} {json}\n", fnv1a64(json.as_bytes()))
}

/// Parse and verify a record line; `None` on any damage (wrong magic,
/// bad checksum, truncation, missing trailing newline).
fn decode_record<'a>(magic: &str, text: &'a str) -> Option<&'a str> {
    let line = text.strip_suffix('\n')?;
    let rest = line.strip_prefix(magic)?.strip_prefix(' ')?;
    let (sum_hex, json) = rest.split_once(' ')?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    (sum == fnv1a64(json.as_bytes())).then_some(json)
}

impl ModelRegistry {
    /// Open (creating if needed) the registry at `dir`: verify every
    /// snapshot, quarantine damage, remove stray tmp files, and
    /// resolve the active version (rebuilding the manifest when it is
    /// missing, corrupt, or dangling).
    pub fn open(dir: &Path) -> io::Result<(ModelRegistry, RegistryRecovery)> {
        fs::create_dir_all(dir)?;
        let mut recovery = RegistryRecovery::default();
        let mut state = RegState::default();

        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                if fs::remove_file(entry.path()).is_ok() {
                    recovery.removed_tmp += 1;
                }
                continue;
            }
            if !(name.starts_with('v') && name.ends_with(".snap")) {
                continue;
            }
            match read_snapshot(&entry.path()) {
                Ok(snapshot) if snap_name(snapshot.version) == name => {
                    state.versions.insert(
                        snapshot.version,
                        SnapshotInfo {
                            version: snapshot.version,
                            kind: snapshot.kind,
                            note: snapshot.note,
                            fingerprint: format!("{:016x}", fnv1a64(snapshot.payload.as_bytes())),
                        },
                    );
                }
                // Damaged, or its recorded version disagrees with its
                // file name: set it aside for forensics, never serve it.
                _ => {
                    let _ =
                        fs::rename(entry.path(), entry.path().with_extension("snap.quarantine"));
                    recovery.quarantined.push(name);
                }
            }
        }

        let manifest_path = dir.join(MANIFEST);
        let manifest_active = fs::read_to_string(&manifest_path).ok().and_then(|text| {
            let json = decode_record(MANIFEST_MAGIC, &text)?;
            serde_json::from_str::<Manifest>(json).ok().map(|m| m.active)
        });
        match manifest_active {
            Some(active) if state.versions.contains_key(&active) => {
                state.active = Some(active);
            }
            other => {
                // Missing/corrupt/dangling manifest: newest intact
                // snapshot becomes last-known-good.
                state.active = state.versions.keys().next_back().copied();
                if let Some(active) = state.active {
                    let json = serde_json::to_string(&Manifest { v: RECORD_V, active })
                        .map_err(io::Error::other)?;
                    atomic_write(&manifest_path, encode_record(MANIFEST_MAGIC, &json).as_bytes())?;
                    recovery.manifest_recovered = true;
                } else if other.is_some() || manifest_path.exists() {
                    // A manifest with nothing intact to point at.
                    let _ = fs::rename(&manifest_path, dir.join("MANIFEST.quarantine"));
                    recovery.manifest_recovered = true;
                }
            }
        }

        Ok((ModelRegistry { dir: dir.to_path_buf(), state: Mutex::new(state) }, recovery))
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably write a new snapshot under the next version number.
    /// The manifest (and thus the active version) is untouched: a
    /// crash after `stage` recovers to the previously active model.
    pub fn stage(&self, kind: &str, note: &str, payload: &str) -> io::Result<ModelSnapshot> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let version = state.versions.keys().next_back().copied().unwrap_or(0) + 1;
        let snapshot = ModelSnapshot {
            v: RECORD_V,
            version,
            kind: kind.to_string(),
            note: note.to_string(),
            payload: payload.to_string(),
        };
        let json = serde_json::to_string(&snapshot).map_err(io::Error::other)?;
        atomic_write(
            &self.dir.join(snap_name(version)),
            encode_record(SNAP_MAGIC, &json).as_bytes(),
        )?;
        state.versions.insert(
            version,
            SnapshotInfo {
                version,
                kind: snapshot.kind.clone(),
                note: snapshot.note.clone(),
                fingerprint: format!("{:016x}", snapshot.fingerprint()),
            },
        );
        Ok(snapshot)
    }

    /// Point the manifest at `version` (which must be an intact staged
    /// snapshot), durably marking it last-known-good.
    pub fn promote(&self, version: u64) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if !state.versions.contains_key(&version) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("registry has no intact snapshot v{version}"),
            ));
        }
        let json = serde_json::to_string(&Manifest { v: RECORD_V, active: version })
            .map_err(io::Error::other)?;
        atomic_write(&self.dir.join(MANIFEST), encode_record(MANIFEST_MAGIC, &json).as_bytes())?;
        state.active = Some(version);
        Ok(())
    }

    /// The last-known-good version per the manifest, if any.
    pub fn active(&self) -> Option<u64> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).active
    }

    /// Catalog of intact snapshots, ascending by version.
    pub fn versions(&self) -> Vec<SnapshotInfo> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).versions.values().cloned().collect()
    }

    /// Re-read and re-verify snapshot `version` from disk. Damage
    /// found now (e.g. corruption after open) quarantines the file and
    /// drops it from the catalog.
    pub fn load(&self, version: u64) -> io::Result<ModelSnapshot> {
        let path = self.dir.join(snap_name(version));
        match read_snapshot(&path) {
            Ok(snapshot) if snapshot.version == version => Ok(snapshot),
            Ok(_) | Err(_) => {
                let _ = fs::rename(&path, path.with_extension("snap.quarantine"));
                let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
                state.versions.remove(&version);
                if state.active == Some(version) {
                    state.active = None;
                }
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snapshot v{version} failed verification and was quarantined"),
                ))
            }
        }
    }

    /// Load the active snapshot, if the manifest names one.
    pub fn load_active(&self) -> io::Result<Option<ModelSnapshot>> {
        match self.active() {
            Some(version) => self.load(version).map(Some),
            None => Ok(None),
        }
    }
}

/// Read + verify one snapshot file.
fn read_snapshot(path: &Path) -> io::Result<ModelSnapshot> {
    let text = fs::read_to_string(path)?;
    let json = decode_record(SNAP_MAGIC, &text)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "torn or corrupt snapshot"))?;
    serde_json::from_str(json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Fresh per-test scratch directory (no tempfile crate in-tree).
    fn scratch(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "comet-registry-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stage_promote_reopen_round_trip() {
        let dir = scratch("roundtrip");
        let (registry, recovery) = ModelRegistry::open(&dir).unwrap();
        assert!(recovery.quarantined.is_empty() && !recovery.manifest_recovered);
        assert_eq!(registry.active(), None);

        let first = registry.stage("crude-haswell", "boot", "").unwrap();
        assert_eq!(first.version, 1);
        // Staged but not promoted: recovery would not serve it yet.
        assert_eq!(registry.active(), None);
        registry.promote(1).unwrap();
        let second = registry.stage("crude-skylake", "candidate", "payload-bytes").unwrap();
        assert_eq!(second.version, 2);
        assert_eq!(registry.active(), Some(1), "staging must not move the manifest");
        registry.promote(2).unwrap();

        let (reopened, recovery) = ModelRegistry::open(&dir).unwrap();
        assert!(recovery.quarantined.is_empty() && !recovery.manifest_recovered);
        assert_eq!(reopened.active(), Some(2));
        let snapshot = reopened.load_active().unwrap().unwrap();
        assert_eq!(snapshot, second);
        assert_eq!(reopened.versions().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_rejects_unknown_versions() {
        let dir = scratch("promote-unknown");
        let (registry, _) = ModelRegistry::open(&dir).unwrap();
        assert!(registry.promote(7).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_snapshot_is_quarantined_and_skipped() {
        let dir = scratch("torn");
        let (registry, _) = ModelRegistry::open(&dir).unwrap();
        registry.stage("crude-haswell", "", "").unwrap();
        registry.promote(1).unwrap();
        registry.stage("crude-skylake", "", "").unwrap();
        registry.promote(2).unwrap();
        // Tear v2: truncate mid-record, as a crash mid-write would
        // without the tmp+rename discipline.
        let v2 = dir.join(snap_name(2));
        let bytes = fs::read(&v2).unwrap();
        fs::write(&v2, &bytes[..bytes.len() / 2]).unwrap();

        let (reopened, recovery) = ModelRegistry::open(&dir).unwrap();
        assert_eq!(recovery.quarantined, vec![snap_name(2)]);
        assert!(recovery.manifest_recovered, "manifest pointed at the torn snapshot");
        assert_eq!(reopened.active(), Some(1), "fell back to the newest intact version");
        assert!(dir.join("v000002.snap.quarantine").exists(), "damage kept for forensics");
        assert!(!v2.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_newest_intact() {
        let dir = scratch("manifest");
        let (registry, _) = ModelRegistry::open(&dir).unwrap();
        registry.stage("crude-haswell", "", "").unwrap();
        registry.stage("crude-skylake", "", "").unwrap();
        registry.promote(1).unwrap();
        fs::write(dir.join(MANIFEST), b"COMETR1 0000000000000000 {garbage").unwrap();

        let (reopened, recovery) = ModelRegistry::open(&dir).unwrap();
        assert!(recovery.manifest_recovered);
        assert_eq!(reopened.active(), Some(2));
        // The rebuilt manifest is durable: a plain reopen agrees.
        let (again, recovery) = ModelRegistry::open(&dir).unwrap();
        assert!(!recovery.manifest_recovered);
        assert_eq!(again.active(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_removed() {
        let dir = scratch("tmp");
        let (registry, _) = ModelRegistry::open(&dir).unwrap();
        registry.stage("crude-haswell", "", "").unwrap();
        fs::write(dir.join("v000009.snap.tmp"), b"half-written").unwrap();
        let (_, recovery) = ModelRegistry::open(&dir).unwrap();
        assert_eq!(recovery.removed_tmp, 1);
        assert!(!dir.join("v000009.snap.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_quarantines_corruption_found_after_open() {
        let dir = scratch("late-corruption");
        let (registry, _) = ModelRegistry::open(&dir).unwrap();
        registry.stage("crude-haswell", "", "").unwrap();
        registry.promote(1).unwrap();
        // Bit-rot after open: flip a payload byte, keeping the length.
        let path = dir.join(snap_name(1));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        assert!(registry.load(1).is_err());
        assert!(registry.versions().is_empty());
        assert_eq!(registry.active(), None);
        assert!(dir.join("v000001.snap.quarantine").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Neural weights survive the registry: a seeded regressor's
    /// serialized parameters round-trip bitwise through stage → reopen
    /// → load, and the fingerprint pins their identity.
    #[test]
    fn neural_weights_round_trip_bitwise() {
        use comet_nn::HierarchicalRegressor;
        use rand::{rngs::StdRng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(7);
        let model = HierarchicalRegressor::new(32, 8, 8, &mut rng);
        let payload = serde_json::to_string(&model).unwrap();

        let dir = scratch("neural");
        let (registry, _) = ModelRegistry::open(&dir).unwrap();
        let staged = registry.stage("ithemal", "trained weights", &payload).unwrap();
        registry.promote(staged.version).unwrap();

        let (reopened, _) = ModelRegistry::open(&dir).unwrap();
        let snapshot = reopened.load_active().unwrap().unwrap();
        assert_eq!(snapshot.payload, payload, "payload bytes round-trip exactly");
        assert_eq!(snapshot.fingerprint(), staged.fingerprint());
        let restored: HierarchicalRegressor = serde_json::from_str(&snapshot.payload).unwrap();
        assert_eq!(
            restored.weights_fingerprint(),
            model.weights_fingerprint(),
            "restored weights are bitwise-identical"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
