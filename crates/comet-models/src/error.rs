//! The failure taxonomy for fallible cost-model queries.
//!
//! COMET treats cost models as untrusted black boxes (paper §3): a
//! model may return garbage (NaN/Inf), panic internally, stall, or fail
//! transiently. [`ModelError`] classifies those outcomes so callers can
//! decide what is retryable, what should trip a circuit breaker, and
//! what must be surfaced to the user.

use std::any::Any;
use std::fmt;
use std::time::Duration;

/// Why a single cost-model query failed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ModelError {
    /// The model returned a non-finite prediction (NaN or ±Inf).
    NonFinite {
        /// The offending raw prediction.
        value: f64,
    },
    /// The model panicked while computing the prediction.
    Panic {
        /// The panic payload, rendered to text.
        message: String,
    },
    /// The query exceeded its latency deadline.
    Timeout {
        /// How long the query ran before being abandoned.
        elapsed: Duration,
        /// The configured deadline the query blew through, so reports
        /// can say "2.0s elapsed vs 500ms budget".
        deadline: Duration,
    },
    /// A transient failure that may succeed on retry (e.g. a dropped
    /// connection to a remote model server).
    Transient {
        /// Human-readable description of the failure.
        message: String,
    },
    /// The retry budget was exhausted without a successful prediction.
    BudgetExhausted {
        /// Total attempts made (initial query plus retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<ModelError>,
    },
    /// The circuit breaker is open and no fallback model is configured.
    CircuitOpen,
}

/// Equality compares [`ModelError::NonFinite`] values *bitwise* so two
/// identically injected NaN faults compare equal — derived `PartialEq`
/// would make a NaN error unequal to itself, breaking "same seed, same
/// fault schedule" comparisons.
impl PartialEq for ModelError {
    fn eq(&self, other: &ModelError) -> bool {
        match (self, other) {
            (ModelError::NonFinite { value: a }, ModelError::NonFinite { value: b }) => {
                a.to_bits() == b.to_bits()
            }
            (ModelError::Panic { message: a }, ModelError::Panic { message: b }) => a == b,
            (
                ModelError::Timeout { elapsed: ea, deadline: da },
                ModelError::Timeout { elapsed: eb, deadline: db },
            ) => ea == eb && da == db,
            (ModelError::Transient { message: a }, ModelError::Transient { message: b }) => a == b,
            (
                ModelError::BudgetExhausted { attempts: aa, last: la },
                ModelError::BudgetExhausted { attempts: ab, last: lb },
            ) => aa == ab && la == lb,
            (ModelError::CircuitOpen, ModelError::CircuitOpen) => true,
            _ => false,
        }
    }
}

impl ModelError {
    /// Whether retrying the same query can plausibly succeed.
    ///
    /// Deterministic failures (a NaN from a deterministic model, an
    /// internal panic) are not retryable; latency spikes and transient
    /// infrastructure failures are.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ModelError::Timeout { .. } | ModelError::Transient { .. })
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonFinite { value } => {
                write!(f, "model returned a non-finite prediction ({value})")
            }
            ModelError::Panic { message } => {
                write!(f, "model panicked during prediction: {message}")
            }
            ModelError::Timeout { elapsed, deadline } => {
                write!(f, "model query timed out: {elapsed:?} elapsed vs {deadline:?} budget")
            }
            ModelError::Transient { message } => {
                write!(f, "transient model failure: {message}")
            }
            ModelError::BudgetExhausted { attempts, last } => {
                write!(f, "retry budget exhausted after {attempts} attempts (last error: {last})")
            }
            ModelError::CircuitOpen => {
                write!(f, "circuit breaker open and no fallback model configured")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::BudgetExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

/// Render a panic payload (from [`std::panic::catch_unwind`]) to text.
pub fn panic_payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run an infallible prediction thunk, converting panics and
/// non-finite outputs into [`ModelError`]s.
///
/// This is the bridge between [`CostModel::predict`] and
/// [`CostModel::try_predict`]: the default `try_predict` routes every
/// legacy model through it, so existing implementations become fallible
/// without any code change.
///
/// [`CostModel::predict`]: crate::CostModel::predict
/// [`CostModel::try_predict`]: crate::CostModel::try_predict
pub fn catch_prediction(f: impl FnOnce() -> f64) -> Result<f64, ModelError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) if value.is_finite() => Ok(value),
        Ok(value) => Err(ModelError::NonFinite { value }),
        Err(payload) => Err(ModelError::Panic { message: panic_payload_message(&*payload) }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_prediction_passes_finite_values() {
        assert_eq!(catch_prediction(|| 2.5), Ok(2.5));
    }

    #[test]
    fn catch_prediction_flags_non_finite() {
        match catch_prediction(|| f64::NAN) {
            Err(ModelError::NonFinite { value }) => assert!(value.is_nan()),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(matches!(catch_prediction(|| f64::INFINITY), Err(ModelError::NonFinite { .. })));
    }

    #[test]
    fn catch_prediction_captures_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_prediction(|| panic!("boom {}", 42));
        std::panic::set_hook(prev);
        match result {
            Err(ModelError::Panic { message }) => assert_eq!(message, "boom 42"),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(ModelError::Transient { message: "x".into() }.is_retryable());
        let timeout = ModelError::Timeout {
            elapsed: Duration::from_millis(5),
            deadline: Duration::from_millis(2),
        };
        assert!(timeout.is_retryable());
        let text = timeout.to_string();
        assert!(text.contains("5ms"), "{text}");
        assert!(text.contains("2ms"), "{text}");
        assert!(!ModelError::NonFinite { value: f64::NAN }.is_retryable());
        assert!(!ModelError::Panic { message: "x".into() }.is_retryable());
        assert!(!ModelError::CircuitOpen.is_retryable());
    }

    #[test]
    fn errors_display_and_chain() {
        let e = ModelError::BudgetExhausted {
            attempts: 3,
            last: Box::new(ModelError::Transient { message: "flaky".into() }),
        };
        let text = e.to_string();
        assert!(text.contains("3 attempts"));
        assert!(text.contains("flaky"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
