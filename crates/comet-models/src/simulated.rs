//! Simulation-backed cost models: the uiCA surrogate and the
//! "hardware" oracle.

use comet_isa::{BasicBlock, Microarch};
use comet_sim::{MachineConfig, Simulator};

use crate::error::ModelError;
use crate::traits::CostModel;

/// The uiCA surrogate: the pipeline simulator with slightly
/// mis-calibrated timing tables (see [`MachineConfig::uica_like`]).
/// Plays the role of the paper's low-error, simulation-based model.
#[derive(Debug, Clone)]
pub struct UicaSurrogate {
    sim: Simulator,
    name: String,
}

impl UicaSurrogate {
    /// The surrogate for a microarchitecture.
    pub fn new(march: Microarch) -> UicaSurrogate {
        UicaSurrogate {
            sim: Simulator::new(MachineConfig::uica_like(march)),
            name: format!("uiCA ({})", march.abbrev()),
        }
    }

    /// The microarchitecture simulated.
    pub fn march(&self) -> Microarch {
        self.sim.config().march
    }
}

impl CostModel for UicaSurrogate {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.sim.throughput(block)
    }

    /// Batch path: one pipeline-state allocation serves the batch (see
    /// [`Simulator::throughput_batch`]); the simulator is total and
    /// finite, so every item is `Ok`.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        self.sim.throughput_batch(blocks).into_iter().map(Ok).collect()
    }
}

/// The detailed simulator standing in for real hardware. It labels the
/// synthetic BHive corpus (the paper used silicon measurements) and
/// provides the reference against which model error (MAPE) is computed.
#[derive(Debug, Clone)]
pub struct HardwareOracle {
    sim: Simulator,
    name: String,
}

impl HardwareOracle {
    /// The oracle for a microarchitecture.
    pub fn new(march: Microarch) -> HardwareOracle {
        HardwareOracle {
            sim: Simulator::new(MachineConfig::detailed(march)),
            name: format!("hardware ({})", march.abbrev()),
        }
    }

    /// The microarchitecture measured.
    pub fn march(&self) -> Microarch {
        self.sim.config().march
    }
}

impl CostModel for HardwareOracle {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.sim.throughput(block)
    }

    /// Batch path: shares one pipeline-state allocation across items,
    /// bitwise-identical per item to the scalar path.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        self.sim.throughput_batch(blocks).into_iter().map(Ok).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn uica_tracks_hardware_closely() {
        let blocks = [
            "add rax, 1\nadd rax, 1",
            "div rcx",
            "mov qword ptr [rdi], rax\nmov rbx, qword ptr [rsi]",
            "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
        ];
        for march in Microarch::ALL {
            let hw = HardwareOracle::new(march);
            let uica = UicaSurrogate::new(march);
            for text in blocks {
                let block = parse_block(text).unwrap();
                let h = hw.predict(&block);
                let u = uica.predict(&block);
                let err = (h - u).abs() / h;
                assert!(err < 0.2, "{march} `{text}`: hw {h} vs uica {u}");
            }
        }
    }

    #[test]
    fn models_are_named() {
        assert_eq!(UicaSurrogate::new(Microarch::Haswell).name(), "uiCA (HSW)");
        assert_eq!(HardwareOracle::new(Microarch::Skylake).name(), "hardware (SKL)");
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let blocks: Vec<BasicBlock> = [
            "add rax, 1\nadd rax, 1",
            "div rcx",
            "mov qword ptr [rdi], rax\nmov rbx, qword ptr [rsi]",
            "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
        ]
        .iter()
        .map(|text| parse_block(text).unwrap())
        .collect();
        for march in Microarch::ALL {
            let uica = UicaSurrogate::new(march);
            let hw = HardwareOracle::new(march);
            for model in [&uica as &dyn CostModel, &hw as &dyn CostModel] {
                let batched = model.predict_batch(&blocks);
                for (block, got) in blocks.iter().zip(&batched) {
                    assert_eq!(got, &Ok(model.predict(block)), "{}", model.name());
                }
            }
        }
    }
}
