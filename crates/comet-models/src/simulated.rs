//! Simulation-backed cost models: the uiCA surrogate and the
//! "hardware" oracle.

use comet_isa::{BasicBlock, Microarch};
use comet_sim::{MachineConfig, Simulator};

use crate::traits::CostModel;

/// The uiCA surrogate: the pipeline simulator with slightly
/// mis-calibrated timing tables (see [`MachineConfig::uica_like`]).
/// Plays the role of the paper's low-error, simulation-based model.
#[derive(Debug, Clone)]
pub struct UicaSurrogate {
    sim: Simulator,
    name: String,
}

impl UicaSurrogate {
    /// The surrogate for a microarchitecture.
    pub fn new(march: Microarch) -> UicaSurrogate {
        UicaSurrogate {
            sim: Simulator::new(MachineConfig::uica_like(march)),
            name: format!("uiCA ({})", march.abbrev()),
        }
    }

    /// The microarchitecture simulated.
    pub fn march(&self) -> Microarch {
        self.sim.config().march
    }
}

impl CostModel for UicaSurrogate {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.sim.throughput(block)
    }
}

/// The detailed simulator standing in for real hardware. It labels the
/// synthetic BHive corpus (the paper used silicon measurements) and
/// provides the reference against which model error (MAPE) is computed.
#[derive(Debug, Clone)]
pub struct HardwareOracle {
    sim: Simulator,
    name: String,
}

impl HardwareOracle {
    /// The oracle for a microarchitecture.
    pub fn new(march: Microarch) -> HardwareOracle {
        HardwareOracle {
            sim: Simulator::new(MachineConfig::detailed(march)),
            name: format!("hardware ({})", march.abbrev()),
        }
    }

    /// The microarchitecture measured.
    pub fn march(&self) -> Microarch {
        self.sim.config().march
    }
}

impl CostModel for HardwareOracle {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.sim.throughput(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn uica_tracks_hardware_closely() {
        let blocks = [
            "add rax, 1\nadd rax, 1",
            "div rcx",
            "mov qword ptr [rdi], rax\nmov rbx, qword ptr [rsi]",
            "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
        ];
        for march in Microarch::ALL {
            let hw = HardwareOracle::new(march);
            let uica = UicaSurrogate::new(march);
            for text in blocks {
                let block = parse_block(text).unwrap();
                let h = hw.predict(&block);
                let u = uica.predict(&block);
                let err = (h - u).abs() / h;
                assert!(err < 0.2, "{march} `{text}`: hw {h} vs uica {u}");
            }
        }
    }

    #[test]
    fn models_are_named() {
        assert_eq!(UicaSurrogate::new(Microarch::Haswell).name(), "uiCA (HSW)");
        assert_eq!(HardwareOracle::new(Microarch::Skylake).name(), "hardware (SKL)");
    }
}
