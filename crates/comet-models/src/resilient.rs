//! A resilience decorator for cost models: bounded retries with
//! deterministic seeded backoff, a consecutive-failure circuit breaker,
//! and graceful degradation to a fallback model.
//!
//! The ROADMAP's production target is a service answering millions of
//! explanation queries; at that scale a model backend *will* emit NaNs,
//! panic, or stall. [`ResilientModel`] keeps a query pipeline alive
//! through all of that:
//!
//! * retryable failures ([`ModelError::is_retryable`]) are retried up
//!   to [`ResilientConfig::max_retries`] times with exponential,
//!   seeded-jitter backoff (deterministic for a given seed, so eval
//!   runs stay reproducible);
//! * retries draw from a global token bucket
//!   ([`ResilientConfig::retry_budget`], refilled by successes) so a
//!   down backend under a large `predict_batch` cannot amplify into a
//!   retry storm — denied retries fail fast and are counted as
//!   [`ResilienceReport::retries_suppressed`];
//! * after [`ResilientConfig::breaker_threshold`] *consecutive* failed
//!   queries the breaker opens and queries are served by the fallback
//!   model (e.g. [`CoarseBaselineModel`](crate::CoarseBaselineModel))
//!   — degraded but alive;
//! * while open, every [`ResilientConfig::probe_interval`]-th query
//!   probes the inner model (half-open state); one success closes the
//!   breaker again;
//! * every decision is counted in a [`ResilienceReport`] so callers
//!   (and [`Explanation`](../../comet_core/struct.Explanation.html)
//!   diagnostics) can see how degraded a run was.

use std::sync::Mutex;
use std::time::Duration;

use comet_isa::BasicBlock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ModelError;
use crate::traits::CostModel;

/// Retry/circuit-breaker parameters for [`ResilientModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientConfig {
    /// Maximum retries per query for retryable failures (the first
    /// attempt is not a retry).
    pub max_retries: u32,
    /// Consecutive failed queries (after retries) that trip the
    /// circuit breaker.
    pub breaker_threshold: u32,
    /// Base backoff delay; attempt `k` waits `base * 2^(k-1)` scaled by
    /// a seeded jitter in `[0.5, 1.5)`. `Duration::ZERO` disables
    /// sleeping (useful in tests and tight eval loops).
    pub backoff_base: Duration,
    /// While the breaker is open, probe the inner model once every this
    /// many queries (half-open state). A successful probe closes the
    /// breaker.
    pub probe_interval: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Global retry token bucket capacity, shared by every query
    /// (scalar and batch alike). Each retry spends one token; each
    /// successful query refills [`retry_refill`](Self::retry_refill)
    /// tokens (capped at this budget). When the bucket is dry further
    /// retries are denied and counted as
    /// [`ResilienceReport::retries_suppressed`], so per-item retries in
    /// `predict_batch` cannot amplify a dead backend into a retry storm
    /// (N items × max_retries inner calls). `f64::INFINITY` (the
    /// default) disables the bucket.
    pub retry_budget: f64,
    /// Tokens returned to the retry bucket per successful query.
    pub retry_refill: f64,
}

impl Default for ResilientConfig {
    fn default() -> ResilientConfig {
        ResilientConfig {
            max_retries: 2,
            breaker_threshold: 5,
            backoff_base: Duration::from_millis(1),
            probe_interval: 64,
            seed: 0,
            retry_budget: f64::INFINITY,
            retry_refill: 0.1,
        }
    }
}

/// Failure counters tracked by [`ResilientModel`], also surfaced
/// through [`CostModel::resilience`] for explanation diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Total queries received by the decorator.
    pub queries: u64,
    /// Individual failed attempts observed from the inner model
    /// (each retry that fails counts again).
    pub failures: u64,
    /// Retries performed.
    pub retries: u64,
    /// Retries denied because the global retry token bucket was dry
    /// (see [`ResilientConfig::retry_budget`]); each denial fails the
    /// query immediately instead of hammering a down backend.
    pub retries_suppressed: u64,
    /// Failed attempts that were deadline timeouts
    /// ([`ModelError::Timeout`], typically produced by a
    /// [`DeadlineModel`](crate::DeadlineModel) watchdog in the stack;
    /// counted per attempt, so one query retried past two timeouts
    /// counts twice).
    pub timeouts: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Queries answered by the fallback model.
    pub fallback_queries: u64,
    /// Whether the breaker is currently open (the model is degraded).
    pub degraded: bool,
}

/// Placeholder fallback for [`ResilientModel::new`]: a breaker trip
/// with this fallback yields [`ModelError::CircuitOpen`] instead of a
/// degraded prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFallback;

impl CostModel for NoFallback {
    fn name(&self) -> &str {
        "no-fallback"
    }

    fn predict(&self, _block: &BasicBlock) -> f64 {
        f64::NAN
    }

    fn try_predict(&self, _block: &BasicBlock) -> Result<f64, ModelError> {
        Err(ModelError::CircuitOpen)
    }
}

#[derive(Debug)]
struct ResilientState {
    rng: StdRng,
    consecutive_failures: u32,
    open: bool,
    queries_while_open: u64,
    /// Remaining global retry tokens (see
    /// [`ResilientConfig::retry_budget`]).
    retry_tokens: f64,
    report: ResilienceReport,
}

/// The resilience decorator. See the [module docs](self) for the
/// retry/breaker/fallback semantics.
#[derive(Debug)]
pub struct ResilientModel<M, F = NoFallback> {
    inner: M,
    fallback: Option<F>,
    config: ResilientConfig,
    state: Mutex<ResilientState>,
}

/// How a query should be routed, decided under the state lock.
#[derive(Clone, Copy)]
enum Route {
    /// Breaker closed: query the inner model normally.
    Inner,
    /// Breaker open, probe due: try the inner model once.
    Probe,
    /// Breaker open: go straight to the fallback.
    Fallback,
}

impl<M: CostModel> ResilientModel<M, NoFallback> {
    /// Wrap a model with retries and a circuit breaker but no fallback:
    /// once the breaker opens, queries fail fast with
    /// [`ModelError::CircuitOpen`] (modulo half-open probes).
    pub fn new(inner: M, config: ResilientConfig) -> ResilientModel<M, NoFallback> {
        ResilientModel::build(inner, None, config)
    }
}

impl<M: CostModel + Send + Sync + 'static> ResilientModel<crate::DeadlineModel<M>, NoFallback> {
    /// Wrap a model with retries, a circuit breaker, *and* a
    /// wall-clock deadline: every query runs under a
    /// [`DeadlineModel`](crate::DeadlineModel) watchdog, so a stalled
    /// `try_predict` is abandoned on its worker thread and surfaces as
    /// a retryable [`ModelError::Timeout`] (counted in
    /// [`ResilienceReport::timeouts`]) instead of hanging the caller.
    pub fn with_deadline(
        inner: M,
        deadline: Duration,
        config: ResilientConfig,
    ) -> ResilientModel<crate::DeadlineModel<M>, NoFallback> {
        ResilientModel::new(crate::DeadlineModel::new(inner, deadline), config)
    }
}

impl<M: CostModel, F: CostModel> ResilientModel<M, F> {
    /// Wrap a model with retries, a circuit breaker, and a fallback
    /// model that serves queries while the breaker is open.
    pub fn with_fallback(inner: M, fallback: F, config: ResilientConfig) -> ResilientModel<M, F> {
        ResilientModel::build(inner, Some(fallback), config)
    }

    fn build(inner: M, fallback: Option<F>, config: ResilientConfig) -> ResilientModel<M, F> {
        ResilientModel {
            inner,
            fallback,
            config,
            state: Mutex::new(ResilientState {
                rng: StdRng::seed_from_u64(config.seed),
                consecutive_failures: 0,
                open: false,
                queries_while_open: 0,
                retry_tokens: config.retry_budget.max(0.0),
                report: ResilienceReport::default(),
            }),
        }
    }

    /// The wrapped (primary) model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// A snapshot of the failure counters.
    pub fn report(&self) -> ResilienceReport {
        let st = self.state();
        let mut report = st.report;
        report.degraded = st.open;
        report
    }

    /// Whether the circuit breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        self.state().open
    }

    /// The state mutex cannot be poisoned by *this* module (no user
    /// code runs while it is held), but a fallback or probe panic
    /// elsewhere must not wedge the decorator — recover the guard.
    fn state(&self) -> std::sync::MutexGuard<'_, ResilientState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Route a new query, updating breaker bookkeeping.
    fn route(&self) -> Route {
        let mut st = self.state();
        st.report.queries += 1;
        if !st.open {
            return Route::Inner;
        }
        st.queries_while_open += 1;
        if self.config.probe_interval > 0
            && st.queries_while_open.is_multiple_of(self.config.probe_interval)
        {
            Route::Probe
        } else {
            Route::Fallback
        }
    }

    /// Seeded exponential backoff with jitter for retry `attempt`
    /// (1-based). Deterministic for a given config seed.
    fn backoff(&self, attempt: u32) -> Duration {
        let jitter: f64 = {
            let mut st = self.state();
            0.5 + st.rng.gen::<f64>()
        };
        let exp = 2u32.saturating_pow(attempt.saturating_sub(1));
        self.config.backoff_base.mul_f64(exp as f64 * jitter)
    }

    /// Answer from the fallback model (breaker open), or fail fast.
    fn fallback_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        match &self.fallback {
            Some(fallback) => {
                self.state().report.fallback_queries += 1;
                fallback.try_predict(block)
            }
            None => Err(ModelError::CircuitOpen),
        }
    }

    /// One successful inner prediction: reset failure tracking, refill
    /// the retry token bucket, and close the breaker if it was open
    /// (successful probe).
    fn record_success(&self) {
        let mut st = self.state();
        st.consecutive_failures = 0;
        st.retry_tokens =
            (st.retry_tokens + self.config.retry_refill).min(self.config.retry_budget);
        if st.open {
            st.open = false;
            st.queries_while_open = 0;
        }
    }

    /// Try to spend one retry token. A denial is counted as a
    /// suppressed retry and the query fails with whatever error is in
    /// hand.
    fn take_retry_token(&self) -> bool {
        let mut st = self.state();
        if st.retry_tokens >= 1.0 {
            st.retry_tokens -= 1.0;
            true
        } else {
            st.report.retries_suppressed += 1;
            false
        }
    }

    /// One *query-level* failure (retries exhausted or non-retryable):
    /// advance the breaker. Returns whether the breaker is now open.
    fn record_failure(&self) -> bool {
        let mut st = self.state();
        st.consecutive_failures = st.consecutive_failures.saturating_add(1);
        if !st.open && st.consecutive_failures >= self.config.breaker_threshold {
            st.open = true;
            st.queries_while_open = 0;
            st.report.breaker_trips += 1;
        }
        st.open
    }

    /// Query the inner model with bounded retries and seeded backoff.
    fn query_inner(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        let first = self.inner.try_predict(block);
        self.settle(block, first)
    }

    /// Finish a query whose *first* inner attempt is already in hand:
    /// account failures, retry with backoff while the error is
    /// retryable, and advance the breaker on final failure. Shared by
    /// the scalar path and the batch path, whose first attempts arrive
    /// together from one inner `predict_batch` call.
    fn settle(
        &self,
        block: &BasicBlock,
        first: Result<f64, ModelError>,
    ) -> Result<f64, ModelError> {
        let mut attempt: u32 = 0;
        let mut outcome = first;
        loop {
            match outcome {
                Ok(value) => {
                    self.record_success();
                    return Ok(value);
                }
                Err(error) => {
                    {
                        let mut st = self.state();
                        st.report.failures += 1;
                        if matches!(error, ModelError::Timeout { .. }) {
                            st.report.timeouts += 1;
                        }
                    }
                    if error.is_retryable()
                        && attempt < self.config.max_retries
                        && self.take_retry_token()
                    {
                        attempt += 1;
                        self.state().report.retries += 1;
                        let delay = self.backoff(attempt);
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        outcome = self.inner.try_predict(block);
                        continue;
                    }
                    let error = if attempt > 0 {
                        ModelError::BudgetExhausted { attempts: attempt + 1, last: Box::new(error) }
                    } else {
                        error
                    };
                    let now_open = self.record_failure();
                    return if now_open {
                        // Degrade this very query: the caller gets an
                        // answer, not an error, when a fallback exists.
                        self.fallback_predict(block).map_err(|_| error)
                    } else {
                        Err(error)
                    };
                }
            }
        }
    }
}

impl<M: CostModel, F: CostModel> CostModel for ResilientModel<M, F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    /// Infallible view: failures surface as NaN (callers wanting the
    /// error should use [`try_predict`](CostModel::try_predict)).
    fn predict(&self, block: &BasicBlock) -> f64 {
        self.try_predict(block).unwrap_or(f64::NAN)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        match self.route() {
            Route::Inner | Route::Probe => self.query_inner(block),
            Route::Fallback => self.fallback_predict(block),
        }
    }

    /// Batch path: every item is routed in slice order with the same
    /// per-query bookkeeping as sequential calls, all items the breaker
    /// lets through form *one* inner `predict_batch` call (so batching
    /// survives this layer down to the backend), and each item's
    /// outcome is then settled in slice order — per-item failure
    /// accounting, retries, and breaker advancement are identical to
    /// the scalar path.
    ///
    /// The one batch-granular difference: breaker transitions caused by
    /// *this batch's own* failures take effect between batches, not
    /// between items, because routing happens before the inner results
    /// exist. Per-item results still degrade correctly (a failure that
    /// opens the breaker is answered by the fallback immediately).
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        let routes: Vec<Route> = blocks.iter().map(|_| self.route()).collect();
        let inner_indices: Vec<usize> = routes
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Route::Inner | Route::Probe))
            .map(|(i, _)| i)
            .collect();
        let first_attempts = if inner_indices.len() == blocks.len() {
            self.inner.predict_batch(blocks)
        } else if inner_indices.is_empty() {
            Vec::new()
        } else {
            let selected: Vec<BasicBlock> =
                inner_indices.iter().map(|&i| blocks[i].clone()).collect();
            self.inner.predict_batch(&selected)
        };
        debug_assert_eq!(first_attempts.len(), inner_indices.len());
        let mut first_attempts = first_attempts.into_iter();
        routes
            .iter()
            .enumerate()
            .map(|(i, route)| match route {
                Route::Inner | Route::Probe => {
                    let first =
                        first_attempts.next().expect("one first attempt per inner-routed item");
                    self.settle(&blocks[i], first)
                }
                Route::Fallback => self.fallback_predict(&blocks[i]),
            })
            .collect()
    }

    fn resilience(&self) -> Option<ResilienceReport> {
        Some(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_config() -> ResilientConfig {
        ResilientConfig { backoff_base: Duration::ZERO, ..ResilientConfig::default() }
    }

    fn block() -> BasicBlock {
        comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap()
    }

    /// Fails with a transient error for the first `failures` calls,
    /// then answers 2.0.
    struct FlakyModel {
        calls: AtomicU64,
        failures: u64,
    }

    impl CostModel for FlakyModel {
        fn name(&self) -> &str {
            "flaky"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            self.try_predict(block).unwrap_or(f64::NAN)
        }

        fn try_predict(&self, _: &BasicBlock) -> Result<f64, ModelError> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.failures {
                Err(ModelError::Transient { message: "flap".into() })
            } else {
                Ok(2.0)
            }
        }
    }

    struct AlwaysNan;

    impl CostModel for AlwaysNan {
        fn name(&self) -> &str {
            "always-nan"
        }

        fn predict(&self, _: &BasicBlock) -> f64 {
            f64::NAN
        }
    }

    #[test]
    fn retries_recover_transient_failures() {
        let model = ResilientModel::new(
            FlakyModel { calls: AtomicU64::new(0), failures: 2 },
            test_config(),
        );
        assert_eq!(model.try_predict(&block()), Ok(2.0));
        let report = model.report();
        assert_eq!(report.retries, 2);
        assert_eq!(report.failures, 2);
        assert_eq!(report.breaker_trips, 0);
        assert!(!report.degraded);
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        let model = ResilientModel::new(
            FlakyModel { calls: AtomicU64::new(0), failures: 100 },
            ResilientConfig { max_retries: 2, breaker_threshold: 50, ..test_config() },
        );
        match model.try_predict(&block()) {
            Err(ModelError::BudgetExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, ModelError::Transient { .. }));
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn breaker_trips_and_falls_back() {
        let model = ResilientModel::with_fallback(
            AlwaysNan,
            FlakyModel { calls: AtomicU64::new(0), failures: 0 },
            ResilientConfig { breaker_threshold: 3, ..test_config() },
        );
        let b = block();
        // Non-retryable NaN failures: the first two propagate.
        assert!(model.try_predict(&b).is_err());
        assert!(model.try_predict(&b).is_err());
        // Third failure trips the breaker; this query already degrades.
        assert_eq!(model.try_predict(&b), Ok(2.0));
        assert!(model.breaker_open());
        // Subsequent queries go straight to the fallback.
        assert_eq!(model.try_predict(&b), Ok(2.0));
        let report = model.report();
        assert_eq!(report.breaker_trips, 1);
        assert!(report.fallback_queries >= 2);
        assert!(report.degraded);
        assert_eq!(model.resilience(), Some(report));
        // The infallible view also degrades gracefully.
        assert_eq!(model.predict(&b), 2.0);
    }

    #[test]
    fn breaker_without_fallback_fails_fast() {
        let model = ResilientModel::new(
            AlwaysNan,
            ResilientConfig { breaker_threshold: 1, probe_interval: 1000, ..test_config() },
        );
        let b = block();
        // First failure trips the breaker; no fallback → original error.
        assert!(matches!(model.try_predict(&b), Err(ModelError::NonFinite { .. })));
        assert!(model.breaker_open());
        assert_eq!(model.try_predict(&b), Err(ModelError::CircuitOpen));
        assert!(model.predict(&b).is_nan());
    }

    #[test]
    fn half_open_probe_closes_breaker_on_recovery() {
        // Fails 3 times (tripping a threshold-3 breaker), then recovers.
        let model = ResilientModel::with_fallback(
            FlakyModel { calls: AtomicU64::new(0), failures: 3 },
            FlakyModel { calls: AtomicU64::new(0), failures: 0 },
            ResilientConfig {
                max_retries: 0,
                breaker_threshold: 3,
                probe_interval: 2,
                ..test_config()
            },
        );
        let b = block();
        for _ in 0..2 {
            assert!(model.try_predict(&b).is_err());
        }
        // Third failure trips the breaker and degrades to the fallback.
        assert_eq!(model.try_predict(&b), Ok(2.0));
        assert!(model.breaker_open());
        // Open query #1: fallback. Open query #2: probe — the inner
        // model has recovered, so the breaker closes again.
        assert_eq!(model.try_predict(&b), Ok(2.0));
        assert_eq!(model.try_predict(&b), Ok(2.0));
        assert!(!model.breaker_open());
        let report = model.report();
        assert_eq!(report.breaker_trips, 1);
        assert!(!report.degraded);
    }

    #[test]
    fn deadline_watchdog_surfaces_timeouts_through_the_decorator() {
        struct StallForever;
        impl CostModel for StallForever {
            fn name(&self) -> &str {
                "stall-forever"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                std::thread::sleep(Duration::from_millis(400));
                1.0
            }
        }
        let model = ResilientModel::with_deadline(
            StallForever,
            Duration::from_millis(10),
            ResilientConfig { max_retries: 0, ..test_config() },
        );
        match model.try_predict(&block()) {
            Err(ModelError::Timeout { elapsed, deadline }) => {
                assert_eq!(deadline, Duration::from_millis(10));
                assert!(elapsed >= deadline);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        let report = model.report();
        assert_eq!(report.timeouts, 1);
        assert_eq!(report.failures, 1);
    }

    /// The batch path must funnel every breaker-admitted item through
    /// *one* inner `predict_batch` call, while still counting and
    /// settling each item individually.
    #[test]
    fn batch_path_routes_settles_and_counts_per_item() {
        struct BatchProbe {
            batch_calls: AtomicU64,
        }
        impl CostModel for BatchProbe {
            fn name(&self) -> &str {
                "batch-probe"
            }
            fn predict(&self, block: &BasicBlock) -> f64 {
                block.len() as f64
            }
            fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
                self.batch_calls.fetch_add(1, Ordering::SeqCst);
                blocks.iter().map(|b| self.try_predict(b)).collect()
            }
        }
        let model =
            ResilientModel::new(BatchProbe { batch_calls: AtomicU64::new(0) }, test_config());
        let blocks: Vec<BasicBlock> = ["nop", "add rcx, rax\nmov rdx, rcx", "div rcx"]
            .iter()
            .map(|t| comet_isa::parse_block(t).unwrap())
            .collect();
        let results = model.predict_batch(&blocks);
        assert_eq!(results, vec![Ok(1.0), Ok(2.0), Ok(1.0)]);
        assert_eq!(model.inner().batch_calls.load(Ordering::SeqCst), 1, "one inner batch call");
        assert_eq!(model.report().queries, 3, "each batch item routed as its own query");
    }

    /// Failures inside a batch advance the breaker per item, and items
    /// settled after the trip degrade to the fallback; a later batch
    /// routes straight to the fallback.
    #[test]
    fn batch_failures_trip_breaker_and_degrade() {
        let model = ResilientModel::with_fallback(
            AlwaysNan,
            FlakyModel { calls: AtomicU64::new(0), failures: 0 },
            ResilientConfig { breaker_threshold: 2, probe_interval: 1000, ..test_config() },
        );
        let b = block();
        let first = model.predict_batch(&[b.clone(), b.clone(), b.clone()]);
        assert!(first[0].is_err(), "first failure propagates (breaker still closed)");
        assert_eq!(first[1], Ok(2.0), "second failure trips the breaker and degrades");
        assert_eq!(first[2], Ok(2.0), "open breaker answers from the fallback");
        assert!(model.breaker_open());
        assert_eq!(model.predict_batch(std::slice::from_ref(&b)), vec![Ok(2.0)]);
        let report = model.report();
        assert_eq!(report.breaker_trips, 1);
        assert_eq!(report.queries, 4);
    }

    /// Always fails with a retryable transient error.
    struct AlwaysTransient;

    impl CostModel for AlwaysTransient {
        fn name(&self) -> &str {
            "always-transient"
        }

        fn predict(&self, _: &BasicBlock) -> f64 {
            f64::NAN
        }

        fn try_predict(&self, _: &BasicBlock) -> Result<f64, ModelError> {
            Err(ModelError::Transient { message: "down".into() })
        }
    }

    #[test]
    fn retry_token_bucket_caps_a_retry_storm() {
        let model = ResilientModel::new(
            AlwaysTransient,
            ResilientConfig {
                max_retries: 2,
                breaker_threshold: 1000,
                retry_budget: 3.0,
                retry_refill: 0.0,
                ..test_config()
            },
        );
        let b = block();
        for _ in 0..4 {
            assert!(model.try_predict(&b).is_err());
        }
        let report = model.report();
        // Query 1 spends 2 tokens, query 2 spends the last and is then
        // denied; queries 3 and 4 are denied outright.
        assert_eq!(report.retries, 3, "bucket of 3 allows exactly 3 retries");
        assert_eq!(report.retries_suppressed, 3);
        // Denials fail the query, they do not swallow it silently.
        assert_eq!(report.failures, 4 + 3);
    }

    #[test]
    fn batch_retries_share_the_global_bucket() {
        let model = ResilientModel::new(
            AlwaysTransient,
            ResilientConfig {
                max_retries: 2,
                breaker_threshold: 1000,
                retry_budget: 2.0,
                retry_refill: 0.0,
                ..test_config()
            },
        );
        let b = block();
        let results = model.predict_batch(&[b.clone(), b.clone(), b.clone(), b.clone()]);
        assert!(results.iter().all(Result::is_err));
        let report = model.report();
        // Without the bucket this batch would issue 4 × 2 = 8 retries:
        // item 1 drains the bucket, items 2–4 are each denied once and
        // fail fast.
        assert_eq!(report.retries, 2);
        assert_eq!(report.retries_suppressed, 3, "one denial per item still wanting retries");
    }

    #[test]
    fn successes_refill_the_retry_bucket() {
        // Every 2nd call fails transiently; with refill = 1 per success
        // the bucket never runs dry.
        struct EveryOther(AtomicU64);
        impl CostModel for EveryOther {
            fn name(&self) -> &str {
                "every-other"
            }
            fn predict(&self, block: &BasicBlock) -> f64 {
                self.try_predict(block).unwrap_or(f64::NAN)
            }
            fn try_predict(&self, _: &BasicBlock) -> Result<f64, ModelError> {
                if self.0.fetch_add(1, Ordering::SeqCst).is_multiple_of(2) {
                    Err(ModelError::Transient { message: "flap".into() })
                } else {
                    Ok(1.0)
                }
            }
        }
        let model = ResilientModel::new(
            EveryOther(AtomicU64::new(0)),
            ResilientConfig {
                max_retries: 2,
                retry_budget: 1.0,
                retry_refill: 1.0,
                ..test_config()
            },
        );
        let b = block();
        for _ in 0..8 {
            assert_eq!(model.try_predict(&b), Ok(1.0), "every query recovers via one retry");
        }
        let report = model.report();
        assert_eq!(report.retries, 8);
        assert_eq!(report.retries_suppressed, 0);
    }

    #[test]
    fn infinite_budget_never_suppresses() {
        let model = ResilientModel::new(
            AlwaysTransient,
            ResilientConfig { breaker_threshold: 1000, ..test_config() },
        );
        let b = block();
        for _ in 0..20 {
            assert!(model.try_predict(&b).is_err());
        }
        let report = model.report();
        assert_eq!(report.retries, 40, "default config retries freely");
        assert_eq!(report.retries_suppressed, 0);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mk = || {
            ResilientModel::new(
                AlwaysNan,
                ResilientConfig {
                    backoff_base: Duration::from_nanos(100),
                    seed: 7,
                    ..ResilientConfig::default()
                },
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.backoff(1), b.backoff(1));
        assert_eq!(a.backoff(2), b.backoff(2));
        // Exponential growth: attempt 2 waits at least as long as the
        // smallest possible attempt-1 delay doubled would allow.
        assert!(a.backoff(2) >= Duration::from_nanos(100));
    }

    #[test]
    fn success_resets_consecutive_failures() {
        // Alternating failure/success must never trip a threshold-2
        // breaker.
        struct Alternating(AtomicU64);
        impl CostModel for Alternating {
            fn name(&self) -> &str {
                "alternating"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                if self.0.fetch_add(1, Ordering::SeqCst).is_multiple_of(2) {
                    f64::NAN
                } else {
                    1.0
                }
            }
        }
        let model = ResilientModel::new(
            Alternating(AtomicU64::new(0)),
            ResilientConfig { breaker_threshold: 2, ..test_config() },
        );
        let b = block();
        for _ in 0..6 {
            let _ = model.try_predict(&b);
        }
        assert!(!model.breaker_open());
        assert_eq!(model.report().breaker_trips, 0);
    }
}
