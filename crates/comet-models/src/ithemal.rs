//! The Ithemal surrogate: a hierarchical LSTM throughput regressor
//! trained on a labelled basic-block corpus.
//!
//! The paper explains the released Ithemal checkpoints (PyTorch, trained
//! on BHive hardware measurements). Those artifacts are unavailable
//! here, so — per the substitution policy in DESIGN.md — we train the
//! same architecture from scratch in `comet-nn` on the synthetic corpus
//! labelled by the detailed simulator. What matters for COMET is
//! preserved: a black-box neural model with realistic (higher-than-uiCA)
//! prediction error whose reliance on coarse block features can be
//! probed by explanation.

use comet_isa::{BasicBlock, Microarch};
use comet_nn::{AdamConfig, HierarchicalRegressor, Loss, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::ModelError;
use crate::tokenize::Vocab;
use crate::traits::CostModel;

/// Training hyperparameters for the surrogate.
#[derive(Debug, Clone, Copy)]
pub struct IthemalConfig {
    /// Token-embedding dimensionality.
    pub embed_dim: usize,
    /// LSTM hidden width (both levels).
    pub hidden: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed (weights + shuffling), for reproducibility.
    pub seed: u64,
}

impl Default for IthemalConfig {
    fn default() -> IthemalConfig {
        IthemalConfig {
            embed_dim: 24,
            hidden: 40,
            adam: AdamConfig { lr: 3e-3, ..AdamConfig::default() },
            batch_size: 16,
            epochs: 6,
            seed: 0x17E4A1,
        }
    }
}

/// A trained neural cost model with the Ithemal architecture.
#[derive(Debug, Clone)]
pub struct IthemalSurrogate {
    model: HierarchicalRegressor,
    vocab: Vocab,
    name: String,
    march: Microarch,
}

impl IthemalSurrogate {
    /// Train a surrogate on `(block, measured throughput)` pairs.
    ///
    /// Deterministic for a fixed corpus and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn train(
        march: Microarch,
        corpus: &[(BasicBlock, f64)],
        config: IthemalConfig,
    ) -> IthemalSurrogate {
        assert!(!corpus.is_empty(), "training corpus must be non-empty");
        let vocab = Vocab::standard();
        let mut rng = StdRng::seed_from_u64(config.seed ^ march as u64);
        let mut model =
            HierarchicalRegressor::new(vocab.len(), config.embed_dim, config.hidden, &mut rng);
        let data: Vec<(Vec<Vec<usize>>, f64)> =
            corpus.iter().map(|(block, cost)| (vocab.tokenize_block(block), *cost)).collect();
        let mut trainer =
            Trainer::new(config.adam, config.batch_size, config.epochs).with_loss(Loss::Relative);
        trainer.fit(&mut model, &data, &mut rng);
        IthemalSurrogate { model, vocab, name: format!("Ithemal ({})", march.abbrev()), march }
    }

    /// The microarchitecture the surrogate was trained for.
    pub fn march(&self) -> Microarch {
        self.march
    }
}

impl CostModel for IthemalSurrogate {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let tokens = self.vocab.tokenize_block(block);
        // Throughputs are positive; clamp the regressor's raw output.
        self.model.predict(&tokens).max(0.1)
    }

    /// Batch path: all blocks run the network as side-by-side lanes
    /// sharing one weight traversal per step
    /// ([`HierarchicalRegressor::predict_batch`]), bitwise identical
    /// per item to the scalar path.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        let tokenized: Vec<_> =
            blocks.iter().map(|block| self.vocab.tokenize_block(block)).collect();
        self.model
            .predict_batch(&tokenized)
            .into_iter()
            .map(|raw| {
                let value = raw.max(0.1);
                if value.is_finite() {
                    Ok(value)
                } else {
                    Err(ModelError::NonFinite { value })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    fn tiny_corpus() -> Vec<(BasicBlock, f64)> {
        vec![
            (parse_block("add rax, 1").unwrap(), 1.0),
            (parse_block("add rax, 1\nadd rbx, 1").unwrap(), 1.0),
            (parse_block("div rcx").unwrap(), 25.0),
            (parse_block("div rcx\nadd rax, 1").unwrap(), 25.0),
            (parse_block("mov rdx, rcx\nmov rbx, rax").unwrap(), 1.0),
            (parse_block("vdivss xmm0, xmm0, xmm6").unwrap(), 7.0),
        ]
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = tiny_corpus();
        let config = IthemalConfig { epochs: 2, ..IthemalConfig::default() };
        let a = IthemalSurrogate::train(Microarch::Haswell, &corpus, config);
        let b = IthemalSurrogate::train(Microarch::Haswell, &corpus, config);
        let block = parse_block("add rax, 1\ndiv rcx").unwrap();
        assert_eq!(a.predict(&block), b.predict(&block));
    }

    #[test]
    fn learns_to_separate_cheap_from_expensive() {
        let corpus = tiny_corpus();
        let config = IthemalConfig {
            epochs: 300,
            batch_size: 3,
            adam: AdamConfig { lr: 1e-2, ..AdamConfig::default() },
            embed_dim: 12,
            hidden: 20,
            ..IthemalConfig::default()
        };
        let model = IthemalSurrogate::train(Microarch::Haswell, &corpus, config);
        let cheap = model.predict(&parse_block("add rax, 1").unwrap());
        let expensive = model.predict(&parse_block("div rcx").unwrap());
        assert!(expensive > cheap * 3.0, "expected div >> add, got {expensive} vs {cheap}");
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let model = IthemalSurrogate::train(
            Microarch::Haswell,
            &tiny_corpus(),
            IthemalConfig { epochs: 1, ..IthemalConfig::default() },
        );
        let blocks: Vec<BasicBlock> = tiny_corpus().into_iter().map(|(block, _)| block).collect();
        let batched = model.predict_batch(&blocks);
        for (block, got) in blocks.iter().zip(&batched) {
            assert_eq!(got, &Ok(model.predict(block)));
        }
    }

    #[test]
    fn predictions_positive() {
        let model = IthemalSurrogate::train(
            Microarch::Skylake,
            &tiny_corpus(),
            IthemalConfig { epochs: 1, ..IthemalConfig::default() },
        );
        let block = parse_block("nop").unwrap();
        assert!(model.predict(&block) > 0.0);
        assert!(model.name().contains("SKL"));
    }
}
