//! # comet-models
//!
//! Cost models for the COMET reproduction, all behind the query-only
//! [`CostModel`] trait exactly as COMET requires (paper §4):
//!
//! * [`CrudeModel`] — the paper's interpretable analytical model C
//!   (eq. 8), the oracle for explanation-accuracy evaluation;
//! * [`IthemalSurrogate`] — a hierarchical LSTM trained from scratch on
//!   a simulator-labelled corpus (substitute for the released Ithemal
//!   checkpoints, see DESIGN.md);
//! * [`UicaSurrogate`] — the pipeline simulator with slightly deviated
//!   tables (substitute for uiCA);
//! * [`HardwareOracle`] — the detailed simulator standing in for real
//!   Haswell/Skylake silicon.
//!
//! Because the explainer treats models as untrusted black boxes, the
//! crate also provides a fault-tolerance layer: a [`ModelError`]
//! taxonomy with the fallible [`CostModel::try_predict`] entry point,
//! the [`ResilientModel`] decorator (retries, circuit breaker,
//! fallback degradation), the [`DeadlineModel`] wall-clock watchdog
//! (abandons stalled queries as [`ModelError::Timeout`]), and the
//! [`FaultyModel`] seeded fault-injection wrapper for robustness
//! testing.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), comet_isa::IsaError> {
//! use comet_models::{CostModel, CrudeModel};
//! use comet_isa::Microarch;
//!
//! let c = CrudeModel::new(Microarch::Haswell);
//! let block = comet_isa::parse_block("div rcx")?;
//! assert!(c.predict(&block) > 20.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod baseline;
mod crude;
mod deadline;
mod error;
mod faulty;
mod ithemal;
mod metrics;
mod registry;
mod resilient;
mod simulated;
mod tokenize;
mod traits;

pub use baseline::{coarse_baseline, CoarseBaselineModel};
pub use crude::CrudeModel;
pub use deadline::DeadlineModel;
pub use error::{catch_prediction, panic_payload_message, ModelError};
pub use faulty::{FaultConfig, FaultStats, FaultyModel};
pub use ithemal::{IthemalConfig, IthemalSurrogate};
pub use metrics::{mape, mean_std};
pub use registry::{fnv1a64, ModelRegistry, ModelSnapshot, RegistryRecovery, SnapshotInfo};
pub use resilient::{NoFallback, ResilienceReport, ResilientConfig, ResilientModel};
pub use simulated::{HardwareOracle, UicaSurrogate};
pub use tokenize::{Vocab, IMM, MEM_CLOSE, MEM_OPEN, UNK};
pub use traits::{CachedModel, CostModel, QueryStats};
