//! # comet-models
//!
//! Cost models for the COMET reproduction, all behind the query-only
//! [`CostModel`] trait exactly as COMET requires (paper §4):
//!
//! * [`CrudeModel`] — the paper's interpretable analytical model C
//!   (eq. 8), the oracle for explanation-accuracy evaluation;
//! * [`IthemalSurrogate`] — a hierarchical LSTM trained from scratch on
//!   a simulator-labelled corpus (substitute for the released Ithemal
//!   checkpoints, see DESIGN.md);
//! * [`UicaSurrogate`] — the pipeline simulator with slightly deviated
//!   tables (substitute for uiCA);
//! * [`HardwareOracle`] — the detailed simulator standing in for real
//!   Haswell/Skylake silicon.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), comet_isa::IsaError> {
//! use comet_models::{CostModel, CrudeModel};
//! use comet_isa::Microarch;
//!
//! let c = CrudeModel::new(Microarch::Haswell);
//! let block = comet_isa::parse_block("div rcx")?;
//! assert!(c.predict(&block) > 20.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod baseline;
mod crude;
mod ithemal;
mod metrics;
mod simulated;
mod tokenize;
mod traits;

pub use baseline::{coarse_baseline, CoarseBaselineModel};
pub use crude::CrudeModel;
pub use ithemal::{IthemalConfig, IthemalSurrogate};
pub use metrics::{mape, mean_std};
pub use simulated::{HardwareOracle, UicaSurrogate};
pub use tokenize::{Vocab, IMM, MEM_CLOSE, MEM_OPEN};
pub use traits::{CachedModel, CostModel, QueryStats};
