//! Prediction-error metrics.

use comet_isa::BasicBlock;

use crate::traits::CostModel;

/// Mean absolute percentage error of a model against labelled blocks.
///
/// # Panics
///
/// Panics on an empty corpus or non-positive label.
pub fn mape<M: CostModel>(model: &M, corpus: &[(BasicBlock, f64)]) -> f64 {
    assert!(!corpus.is_empty(), "MAPE over an empty corpus");
    let total: f64 = corpus
        .iter()
        .map(|(block, truth)| {
            assert!(*truth > 0.0, "labels must be positive");
            (model.predict(block) - truth).abs() / truth
        })
        .sum();
    100.0 * total / corpus.len() as f64
}

/// Mean and sample standard deviation of a series.
///
/// Returns `(mean, 0.0)` for singleton series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "mean of an empty series");
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl CostModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }

        fn predict(&self, _block: &BasicBlock) -> f64 {
            self.0
        }
    }

    #[test]
    fn mape_of_perfect_model_is_zero() {
        let block = comet_isa::parse_block("nop").unwrap();
        let corpus = vec![(block, 2.0)];
        assert_eq!(mape(&Fixed(2.0), &corpus), 0.0);
        assert!((mape(&Fixed(3.0), &corpus) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std_matches_hand_computation() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }
}
