//! Parser and table edge cases beyond the unit tests.

use comet_isa::{
    instruction_throughput, opcode_replacements, parse_block, parse_instruction, signatures,
    Microarch, Opcode,
};

#[test]
fn parser_handles_whitespace_and_case() {
    let inst = parse_instruction("  ADD   RCX ,  RAX  ").unwrap();
    assert_eq!(inst.opcode, Opcode::Add);
    assert_eq!(inst.to_string(), "add rcx, rax");
}

#[test]
fn parser_handles_all_size_keywords() {
    for (kw, reg) in [("byte", "al"), ("word", "ax"), ("dword", "eax"), ("qword", "rax")] {
        let text = format!("mov {kw} ptr [rdi], {reg}");
        let inst = parse_instruction(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert!(inst.writes_memory());
    }
    let v = parse_instruction("movaps xmmword ptr [rdi], xmm3").unwrap();
    assert!(v.writes_memory());
    let y = parse_instruction("vmovaps ymmword ptr [rdi], ymm3").unwrap();
    assert!(y.writes_memory());
}

#[test]
fn parser_handles_negative_and_hex_immediates() {
    let a = parse_instruction("add rax, -17").unwrap();
    assert_eq!(a.operands[1], comet_isa::Operand::imm(-17));
    let b = parse_instruction("and rax, 0xFF").unwrap();
    assert_eq!(b.operands[1], comet_isa::Operand::imm(255));
    let c = parse_instruction("mov rax, qword ptr [rdi - 0x10]").unwrap();
    assert_eq!(c.mem_operand().unwrap().disp, -16);
}

#[test]
fn parser_rejects_control_flow_and_malformed_input() {
    for bad in [
        "ret",
        "jne label",
        "call rax",
        "add rcx rax",    // missing comma
        "mov [rax], 1 2", // trailing junk
        "add , rax",
        "mov rax, qword ptr [rax + rbx + rcx + rdx]", // too many regs
    ] {
        assert!(parse_instruction(bad).is_err(), "accepted `{bad}`");
    }
}

#[test]
fn parse_block_reports_line_numbers() {
    let err = parse_block("add rcx, rax\nbogus rdx\npop rbx").unwrap_err();
    let message = err.to_string();
    assert!(message.contains("bogus"), "{message}");
}

#[test]
fn every_opcode_signature_arity_is_consistent() {
    for &op in Opcode::ALL {
        for sig in signatures(op) {
            assert_eq!(sig.pats.len(), sig.accesses.len(), "{op}");
            assert!(sig.pats.len() <= 3, "{op} has >3 operands");
        }
    }
}

#[test]
fn replacements_never_include_self_and_are_symmetric_sets() {
    let samples = [
        "add rcx, rax",
        "mov qword ptr [rdi], rax",
        "vdivss xmm0, xmm1, xmm2",
        "paddd xmm3, xmm4",
        "shl rbx, 3",
        "div rcx",
        "pop r12",
    ];
    for text in samples {
        let inst = parse_instruction(text).unwrap();
        let repl = opcode_replacements(&inst);
        assert!(!repl.contains(&inst.opcode), "{text}");
        let unique: std::collections::HashSet<_> = repl.iter().collect();
        assert_eq!(unique.len(), repl.len(), "duplicates for {text}");
    }
}

#[test]
fn expensive_replacement_fraction_stays_realistic() {
    // The divide/sqrt family must remain a small minority of valid
    // replacements (like the real ISA), or η-bound blocks lose
    // precision through cost-exploding flips; see DESIGN.md.
    for text in ["vaddss xmm1, xmm2, xmm3", "addss xmm1, xmm2", "movss xmm1, dword ptr [rsi]"] {
        let inst = parse_instruction(text).unwrap();
        let repl = opcode_replacements(&inst);
        let expensive = repl
            .iter()
            .filter(|op| {
                let probe = comet_isa::Instruction::new(**op, inst.operands.clone()).unwrap();
                instruction_throughput(&probe, Microarch::Haswell) >= 3.0
            })
            .count();
        let fraction = expensive as f64 / repl.len() as f64;
        assert!(fraction < 0.20, "{text}: {expensive}/{} replacements are expensive", repl.len());
    }
}

#[test]
fn throughput_tables_cover_memory_forms() {
    let reg_form = parse_instruction("addss xmm0, xmm1").unwrap();
    let mem_form = parse_instruction("addss xmm0, dword ptr [rsi]").unwrap();
    for march in Microarch::ALL {
        let r = instruction_throughput(&reg_form, march);
        let m = instruction_throughput(&mem_form, march);
        assert!(m >= r, "{march}: mem form cheaper than reg form");
    }
}
