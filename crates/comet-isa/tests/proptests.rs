//! Property-based tests for the ISA substrate.

use comet_isa::{
    opcode_replacements, parse_instruction, profile, Instruction, MemOperand, Microarch, Opcode,
    Operand, RegClass, Register, Size,
};
use proptest::prelude::*;

/// Strategy: an arbitrary valid register of any class/size.
fn any_register() -> impl Strategy<Value = Register> {
    prop_oneof![
        (0u8..16, prop_oneof![Just(Size::B8), Just(Size::B16), Just(Size::B32), Just(Size::B64)])
            .prop_map(|(i, s)| Register::new(RegClass::Gpr, i, s)),
        (0u8..16, prop_oneof![Just(Size::B128), Just(Size::B256)])
            .prop_map(|(i, s)| Register::new(RegClass::Vec, i, s)),
    ]
}

/// Strategy: a GPR of the given size.
fn gpr(size: Size) -> impl Strategy<Value = Register> {
    (0u8..16).prop_map(move |i| Register::new(RegClass::Gpr, i, size))
}

/// Strategy: a memory operand with a GPR base and optional index.
fn mem_operand(size: Size) -> impl Strategy<Value = MemOperand> {
    (
        gpr(Size::B64),
        proptest::option::of(gpr(Size::B64)),
        prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        -256i64..256,
    )
        .prop_map(move |(base, index, scale, disp)| MemOperand {
            base: Some(base),
            scale: if index.is_some() { scale } else { 1 },
            index,
            disp,
            size,
        })
}

/// Strategy: a valid instruction drawn from several common shapes.
fn valid_instruction() -> impl Strategy<Value = Instruction> {
    let gpr_size = prop_oneof![Just(Size::B16), Just(Size::B32), Just(Size::B64)];
    let alu_op = proptest::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Cmp,
        Opcode::Mov,
        Opcode::Imul,
    ]);
    let alu_rr = (alu_op.clone(), gpr_size.clone()).prop_flat_map(|(op, size)| {
        (gpr(size), gpr(size))
            .prop_map(move |(d, s)| Instruction::new(op, vec![Operand::reg(d), Operand::reg(s)]))
    });
    let alu_rm = (alu_op.clone(), gpr_size.clone()).prop_flat_map(|(op, size)| {
        (gpr(size), mem_operand(size))
            .prop_map(move |(d, m)| Instruction::new(op, vec![Operand::reg(d), Operand::Mem(m)]))
    });
    let store = gpr_size.clone().prop_flat_map(|size| {
        (mem_operand(size), gpr(size)).prop_map(move |(m, s)| {
            Instruction::new(Opcode::Mov, vec![Operand::Mem(m), Operand::reg(s)])
        })
    });
    // `imul r, imm` is not a legal two-operand form, so exclude it here.
    let imm_op = proptest::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Cmp,
        Opcode::Mov,
    ]);
    let alu_imm = (imm_op, gpr_size).prop_flat_map(|(op, size)| {
        (gpr(size), -1000i64..1000)
            .prop_map(move |(d, v)| Instruction::new(op, vec![Operand::reg(d), Operand::imm(v)]))
    });
    let lea = (gpr(Size::B64), mem_operand(Size::B64))
        .prop_map(|(d, m)| Instruction::new(Opcode::Lea, vec![Operand::reg(d), Operand::Mem(m)]));
    let vec_op = proptest::sample::select(vec![
        Opcode::Vaddss,
        Opcode::Vmulss,
        Opcode::Vdivss,
        Opcode::Vxorps,
    ]);
    let avx = (vec_op, 0u8..16, 0u8..16, 0u8..16).prop_map(|(op, a, b, c)| {
        Instruction::new(
            op,
            vec![
                Operand::reg(Register::xmm(a)),
                Operand::reg(Register::xmm(b)),
                Operand::reg(Register::xmm(c)),
            ],
        )
    });
    let unary = (0u8..16)
        .prop_map(|i| Instruction::new(Opcode::Div, vec![Operand::reg(Register::gpr64(i))]));
    prop_oneof![alu_rr, alu_rm, store, alu_imm, lea, avx, unary]
        .prop_map(|r| r.expect("strategy produced invalid instruction"))
}

proptest! {
    #[test]
    fn register_name_round_trips(reg in any_register()) {
        prop_assert_eq!(Register::from_name(reg.name()), Some(reg));
    }

    #[test]
    fn instruction_print_parse_round_trips(inst in valid_instruction()) {
        let printed = inst.to_string();
        let reparsed = parse_instruction(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(inst, reparsed);
    }

    #[test]
    fn replacements_always_produce_valid_instructions(inst in valid_instruction()) {
        for op in opcode_replacements(&inst) {
            let replaced = Instruction::new(op, inst.operands.clone());
            prop_assert!(replaced.is_ok(), "{op} rejected operands of `{inst}`");
        }
    }

    #[test]
    fn replacement_is_symmetric(inst in valid_instruction()) {
        // If O' can replace O, then O can replace O' (same operand list).
        for op in opcode_replacements(&inst) {
            let replaced = Instruction::new(op, inst.operands.clone()).unwrap();
            let back = opcode_replacements(&replaced);
            prop_assert!(
                back.contains(&inst.opcode),
                "{} -> {} not symmetric", inst.opcode, op
            );
        }
    }

    #[test]
    fn profiles_are_finite_and_positive(inst in valid_instruction()) {
        for march in Microarch::ALL {
            let p = profile(&inst, march);
            prop_assert!(p.latency.is_finite() && p.latency >= 0.0);
            prop_assert!(p.rtp.is_finite() && p.rtp >= 0.0);
            prop_assert!(p.total_uops() > 0);
            prop_assert!(
                comet_isa::instruction_throughput(&inst, march) > 0.0
            );
        }
    }

    #[test]
    fn effects_reference_only_instruction_registers(inst in valid_instruction()) {
        let fx = inst.effects();
        // Every explicit register effect must trace back to an operand or
        // a documented implicit register.
        let implicit: Vec<Register> =
            comet_isa::implicit_operands(inst.opcode).into_iter().map(|(r, _)| r).collect();
        for reg in fx.reg_reads.iter().chain(&fx.reg_writes) {
            let explicit = inst.operands.iter().any(|op| match op {
                Operand::Reg(r) => r == reg,
                Operand::Mem(m) => m.address_registers().any(|ar| ar == *reg),
                Operand::Imm(_) => false,
            });
            prop_assert!(explicit || implicit.contains(reg), "{reg} not justified in `{inst}`");
        }
    }
}
