//! The opcode subset of x86-64 modelled by this reproduction.
//!
//! The subset covers every opcode appearing in the paper's listings plus a
//! representative mix of scalar ALU, multiply/divide, shift, stack,
//! conditional-move, bit-manipulation, SSE, and AVX instructions — enough
//! for the BHive-style category partition (Scalar, Vector, Load, Store,
//! …) and for COMET's opcode-replacement perturbations to have rich,
//! realistic candidate sets.
//!
//! Control-transfer opcodes (`call`, `jmp`, `ret`, branches) are *not*
//! part of the subset: basic blocks by definition contain none, and the
//! paper explicitly excludes them from valid perturbations.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! opcodes {
    ($($variant:ident => $name:literal / $cat:ident),* $(,)?) => {
        /// An x86-64 opcode in the modelled subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Opcode {
            $($variant,)*
        }

        impl Opcode {
            /// Every opcode in the subset.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant,)*];

            /// The Intel-syntax mnemonic.
            pub fn name(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $name,)*
                }
            }

            /// Parse an Intel-syntax mnemonic (lowercase).
            pub fn from_name(name: &str) -> Option<Opcode> {
                match name {
                    $($name => Some(Opcode::$variant),)*
                    _ => None,
                }
            }

            /// Coarse semantic category, used by the timing tables and the
            /// BHive-style block generators.
            pub fn category(self) -> OpCategory {
                match self {
                    $(Opcode::$variant => OpCategory::$cat,)*
                }
            }
        }
    };
}

/// Coarse semantic category of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// Single-cycle scalar integer ALU (add, xor, …).
    ScalarAlu,
    /// Scalar integer multiply.
    ScalarMul,
    /// Scalar integer divide (unpipelined, very expensive).
    ScalarDiv,
    /// Shifts and rotates.
    Shift,
    /// Data movement between registers/memory.
    Move,
    /// Address computation (`lea`).
    Lea,
    /// Stack push/pop.
    Stack,
    /// Conditional moves.
    Cmov,
    /// Bit scans / counts.
    BitScan,
    /// No-op.
    Nop,
    /// Vector/scalar floating-point add/sub/min/max.
    VecFloatAdd,
    /// Vector/scalar floating-point multiply.
    VecFloatMul,
    /// Vector/scalar floating-point divide or square root.
    VecFloatDiv,
    /// Vector bitwise logic.
    VecLogic,
    /// Vector integer arithmetic.
    VecIntAlu,
    /// Vector integer multiply.
    VecIntMul,
    /// Vector data movement.
    VecMove,
}

impl OpCategory {
    /// Whether the category touches vector (SIMD) state.
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            OpCategory::VecFloatAdd
                | OpCategory::VecFloatMul
                | OpCategory::VecFloatDiv
                | OpCategory::VecLogic
                | OpCategory::VecIntAlu
                | OpCategory::VecIntMul
                | OpCategory::VecMove
        )
    }
}

opcodes! {
    // Scalar integer ALU.
    Add => "add" / ScalarAlu,
    Sub => "sub" / ScalarAlu,
    Adc => "adc" / ScalarAlu,
    Sbb => "sbb" / ScalarAlu,
    And => "and" / ScalarAlu,
    Or => "or" / ScalarAlu,
    Xor => "xor" / ScalarAlu,
    Cmp => "cmp" / ScalarAlu,
    Test => "test" / ScalarAlu,
    Inc => "inc" / ScalarAlu,
    Dec => "dec" / ScalarAlu,
    Neg => "neg" / ScalarAlu,
    Not => "not" / ScalarAlu,
    // Multiply / divide.
    Imul => "imul" / ScalarMul,
    Mul => "mul" / ScalarMul,
    Div => "div" / ScalarDiv,
    Idiv => "idiv" / ScalarDiv,
    // Shifts and rotates.
    Shl => "shl" / Shift,
    Shr => "shr" / Shift,
    Sar => "sar" / Shift,
    Rol => "rol" / Shift,
    Ror => "ror" / Shift,
    // Moves.
    Mov => "mov" / Move,
    Movzx => "movzx" / Move,
    Movsx => "movsx" / Move,
    Xchg => "xchg" / Move,
    Bswap => "bswap" / Move,
    // Address generation.
    Lea => "lea" / Lea,
    // Stack.
    Push => "push" / Stack,
    Pop => "pop" / Stack,
    // Conditional moves.
    Cmove => "cmove" / Cmov,
    Cmovne => "cmovne" / Cmov,
    Cmovl => "cmovl" / Cmov,
    Cmovg => "cmovg" / Cmov,
    Cmovle => "cmovle" / Cmov,
    Cmovge => "cmovge" / Cmov,
    Cmovb => "cmovb" / Cmov,
    Cmova => "cmova" / Cmov,
    // Bit scans / counts.
    Bsf => "bsf" / BitScan,
    Bsr => "bsr" / BitScan,
    Popcnt => "popcnt" / BitScan,
    Lzcnt => "lzcnt" / BitScan,
    Tzcnt => "tzcnt" / BitScan,
    // Nop.
    Nop => "nop" / Nop,
    // SSE scalar float.
    Addss => "addss" / VecFloatAdd,
    Subss => "subss" / VecFloatAdd,
    Minss => "minss" / VecFloatAdd,
    Maxss => "maxss" / VecFloatAdd,
    Mulss => "mulss" / VecFloatMul,
    Divss => "divss" / VecFloatDiv,
    Sqrtss => "sqrtss" / VecFloatDiv,
    Addsd => "addsd" / VecFloatAdd,
    Subsd => "subsd" / VecFloatAdd,
    Minsd => "minsd" / VecFloatAdd,
    Maxsd => "maxsd" / VecFloatAdd,
    Mulsd => "mulsd" / VecFloatMul,
    Divsd => "divsd" / VecFloatDiv,
    Sqrtsd => "sqrtsd" / VecFloatDiv,
    // SSE scalar compares, approximations, and converts.
    Comiss => "comiss" / VecFloatAdd,
    Ucomiss => "ucomiss" / VecFloatAdd,
    Comisd => "comisd" / VecFloatAdd,
    Ucomisd => "ucomisd" / VecFloatAdd,
    Rcpss => "rcpss" / VecFloatMul,
    Rsqrtss => "rsqrtss" / VecFloatMul,
    Cvtss2sd => "cvtss2sd" / VecMove,
    Cvtsd2ss => "cvtsd2ss" / VecMove,
    // SSE packed float.
    Addps => "addps" / VecFloatAdd,
    Subps => "subps" / VecFloatAdd,
    Mulps => "mulps" / VecFloatMul,
    Divps => "divps" / VecFloatDiv,
    Addpd => "addpd" / VecFloatAdd,
    Subpd => "subpd" / VecFloatAdd,
    Mulpd => "mulpd" / VecFloatMul,
    Divpd => "divpd" / VecFloatDiv,
    // SSE logic.
    Xorps => "xorps" / VecLogic,
    Andps => "andps" / VecLogic,
    Orps => "orps" / VecLogic,
    Andnps => "andnps" / VecLogic,
    // SSE packed float min/max and shuffles.
    Minps => "minps" / VecFloatAdd,
    Maxps => "maxps" / VecFloatAdd,
    Unpcklps => "unpcklps" / VecMove,
    Unpckhps => "unpckhps" / VecMove,
    // SSE integer.
    Paddd => "paddd" / VecIntAlu,
    Psubd => "psubd" / VecIntAlu,
    Paddq => "paddq" / VecIntAlu,
    Psubq => "psubq" / VecIntAlu,
    Pand => "pand" / VecLogic,
    Por => "por" / VecLogic,
    Pxor => "pxor" / VecLogic,
    Pmulld => "pmulld" / VecIntMul,
    Pminud => "pminud" / VecIntAlu,
    Pmaxud => "pmaxud" / VecIntAlu,
    Pavgb => "pavgb" / VecIntAlu,
    Pcmpeqd => "pcmpeqd" / VecIntAlu,
    Pcmpgtd => "pcmpgtd" / VecIntAlu,
    Punpckldq => "punpckldq" / VecMove,
    Punpckhdq => "punpckhdq" / VecMove,
    // Additional cheap packed-integer arithmetic (SSE2/SSE4 + AVX).
    Paddb => "paddb" / VecIntAlu,
    Paddw => "paddw" / VecIntAlu,
    Paddsb => "paddsb" / VecIntAlu,
    Paddsw => "paddsw" / VecIntAlu,
    Paddusb => "paddusb" / VecIntAlu,
    Paddusw => "paddusw" / VecIntAlu,
    Psubb => "psubb" / VecIntAlu,
    Psubw => "psubw" / VecIntAlu,
    Psubsb => "psubsb" / VecIntAlu,
    Psubsw => "psubsw" / VecIntAlu,
    Psubusb => "psubusb" / VecIntAlu,
    Psubusw => "psubusw" / VecIntAlu,
    Pminsw => "pminsw" / VecIntAlu,
    Pminsd => "pminsd" / VecIntAlu,
    Pminub => "pminub" / VecIntAlu,
    Pminuw => "pminuw" / VecIntAlu,
    Pmaxsw => "pmaxsw" / VecIntAlu,
    Pmaxsd => "pmaxsd" / VecIntAlu,
    Pmaxub => "pmaxub" / VecIntAlu,
    Pmaxuw => "pmaxuw" / VecIntAlu,
    Pcmpeqb => "pcmpeqb" / VecIntAlu,
    Pcmpeqw => "pcmpeqw" / VecIntAlu,
    Pcmpeqq => "pcmpeqq" / VecIntAlu,
    Pcmpgtb => "pcmpgtb" / VecIntAlu,
    Pcmpgtw => "pcmpgtw" / VecIntAlu,
    Pcmpgtq => "pcmpgtq" / VecIntAlu,
    Pavgw => "pavgw" / VecIntAlu,
    Vpaddb => "vpaddb" / VecIntAlu,
    Vpaddw => "vpaddw" / VecIntAlu,
    Vpsubb => "vpsubb" / VecIntAlu,
    Vpsubw => "vpsubw" / VecIntAlu,
    Vpminsd => "vpminsd" / VecIntAlu,
    Vpmaxsd => "vpmaxsd" / VecIntAlu,
    Vpminsw => "vpminsw" / VecIntAlu,
    Vpmaxsw => "vpmaxsw" / VecIntAlu,
    Vpcmpeqb => "vpcmpeqb" / VecIntAlu,
    Vpcmpgtb => "vpcmpgtb" / VecIntAlu,
    Vpavgw => "vpavgw" / VecIntAlu,
    // Packed pack/unpack shuffles.
    Packssdw => "packssdw" / VecMove,
    Packsswb => "packsswb" / VecMove,
    Packusdw => "packusdw" / VecMove,
    Punpcklbw => "punpcklbw" / VecMove,
    Punpcklwd => "punpcklwd" / VecMove,
    Punpckhbw => "punpckhbw" / VecMove,
    Punpckhwd => "punpckhwd" / VecMove,
    Vpacksswb => "vpacksswb" / VecMove,
    Vpackssdw => "vpackssdw" / VecMove,
    Vpunpcklbw => "vpunpcklbw" / VecMove,
    Vpunpcklwd => "vpunpcklwd" / VecMove,
    // SSE moves.
    Movaps => "movaps" / VecMove,
    Movups => "movups" / VecMove,
    Movss => "movss" / VecMove,
    Movsd => "movsd" / VecMove,
    // AVX three-operand scalar float.
    Vaddss => "vaddss" / VecFloatAdd,
    Vsubss => "vsubss" / VecFloatAdd,
    Vminss => "vminss" / VecFloatAdd,
    Vmaxss => "vmaxss" / VecFloatAdd,
    Vmulss => "vmulss" / VecFloatMul,
    Vdivss => "vdivss" / VecFloatDiv,
    Vsqrtss => "vsqrtss" / VecFloatDiv,
    Vaddsd => "vaddsd" / VecFloatAdd,
    Vsubsd => "vsubsd" / VecFloatAdd,
    Vmulsd => "vmulsd" / VecFloatMul,
    Vdivsd => "vdivsd" / VecFloatDiv,
    Vrcpss => "vrcpss" / VecFloatMul,
    Vrsqrtss => "vrsqrtss" / VecFloatMul,
    Vcvtss2sd => "vcvtss2sd" / VecMove,
    Vcvtsd2ss => "vcvtsd2ss" / VecMove,
    // AVX three-operand packed float and logic.
    Vaddps => "vaddps" / VecFloatAdd,
    Vsubps => "vsubps" / VecFloatAdd,
    Vmulps => "vmulps" / VecFloatMul,
    Vdivps => "vdivps" / VecFloatDiv,
    Vxorps => "vxorps" / VecLogic,
    Vandps => "vandps" / VecLogic,
    Vorps => "vorps" / VecLogic,
    Vandnps => "vandnps" / VecLogic,
    Vminps => "vminps" / VecFloatAdd,
    Vmaxps => "vmaxps" / VecFloatAdd,
    Vunpcklps => "vunpcklps" / VecMove,
    Vunpckhps => "vunpckhps" / VecMove,
    // AVX integer.
    Vpaddd => "vpaddd" / VecIntAlu,
    Vpsubd => "vpsubd" / VecIntAlu,
    Vpand => "vpand" / VecLogic,
    Vpor => "vpor" / VecLogic,
    Vpxor => "vpxor" / VecLogic,
    Vpminud => "vpminud" / VecIntAlu,
    Vpmaxud => "vpmaxud" / VecIntAlu,
    Vpavgb => "vpavgb" / VecIntAlu,
    Vpcmpeqd => "vpcmpeqd" / VecIntAlu,
    Vpcmpgtd => "vpcmpgtd" / VecIntAlu,
    Vpunpckldq => "vpunpckldq" / VecMove,
    Vpunpckhdq => "vpunpckhdq" / VecMove,
    // AVX moves.
    Vmovaps => "vmovaps" / VecMove,
    Vmovups => "vmovups" / VecMove,
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_name(op.name()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = Opcode::ALL.iter().map(|op| op.name()).collect();
        assert_eq!(names.len(), Opcode::ALL.len());
    }

    #[test]
    fn unknown_mnemonics_rejected() {
        assert_eq!(Opcode::from_name("jmp"), None);
        assert_eq!(Opcode::from_name("call"), None);
        assert_eq!(Opcode::from_name(""), None);
    }

    #[test]
    fn subset_is_reasonably_large() {
        assert!(Opcode::ALL.len() >= 90, "got {}", Opcode::ALL.len());
    }

    #[test]
    fn vector_categories_flagged() {
        assert!(Opcode::Vdivss.category().is_vector());
        assert!(Opcode::Paddd.category().is_vector());
        assert!(!Opcode::Add.category().is_vector());
        assert!(!Opcode::Div.category().is_vector());
    }
}
