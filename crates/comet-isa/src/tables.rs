//! Per-microarchitecture instruction timing and port-usage tables.
//!
//! Latency, reciprocal throughput, µop counts, and execution-port sets
//! for the modelled opcode subset on Haswell and Skylake. Values are
//! approximations of publicly documented measurements (uops.info, Agner
//! Fog's tables); the reproduction targets the *shape* of the paper's
//! results, not absolute cycle counts — see DESIGN.md §1.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::inst::Instruction;
use crate::opcode::OpCategory;
use crate::reg::Size;
use crate::Opcode;

/// An Intel microarchitecture modelled by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microarch {
    /// Intel Haswell (4th generation Core).
    Haswell,
    /// Intel Skylake (6th generation Core).
    Skylake,
}

impl Microarch {
    /// Both modelled microarchitectures.
    pub const ALL: [Microarch; 2] = [Microarch::Haswell, Microarch::Skylake];

    /// Short name used in tables ("HSW" / "SKL").
    pub fn abbrev(self) -> &'static str {
        match self {
            Microarch::Haswell => "HSW",
            Microarch::Skylake => "SKL",
        }
    }
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Microarch::Haswell => write!(f, "Haswell"),
            Microarch::Skylake => write!(f, "Skylake"),
        }
    }
}

/// A set of execution ports, as a bitmask over ports 0–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortSet(pub u8);

impl PortSet {
    /// Ports usable by scalar ALU µops on HSW/SKL.
    pub const P0156: PortSet = PortSet(0b0110_0011);
    /// Ports 0, 1, 5 (vector logic).
    pub const P015: PortSet = PortSet(0b0010_0011);
    /// Ports 0 and 1.
    pub const P01: PortSet = PortSet(0b0000_0011);
    /// Ports 0 and 6 (shifts, branches).
    pub const P06: PortSet = PortSet(0b0100_0001);
    /// Ports 1 and 5.
    pub const P15: PortSet = PortSet(0b0010_0010);
    /// Port 0 only (divider).
    pub const P0: PortSet = PortSet(0b0000_0001);
    /// Port 1 only (integer multiply, bit scans).
    pub const P1: PortSet = PortSet(0b0000_0010);
    /// Port 5 only.
    pub const P5: PortSet = PortSet(0b0010_0000);
    /// Load ports 2 and 3.
    pub const LOAD: PortSet = PortSet(0b0000_1100);
    /// Store-data port 4.
    pub const STORE_DATA: PortSet = PortSet(0b0001_0000);
    /// Store-address ports 2, 3, 7.
    pub const STORE_ADDR: PortSet = PortSet(0b1000_1100);

    /// Iterate over the port indices in the set.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..8).filter(move |p| self.0 & (1 << p) != 0)
    }

    /// Number of ports in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set contains the given port.
    pub fn contains(self, port: u8) -> bool {
        self.0 & (1 << port) != 0
    }
}

impl fmt::Display for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p")?;
        for p in self.iter() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Timing profile of one *instruction* (opcode + operand form) on a
/// microarchitecture, decomposed the way port-based simulators do:
/// compute µops plus separate load/store µops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstProfile {
    /// Number of compute µops (excludes load/store µops).
    pub compute_uops: u8,
    /// Result latency of the compute part, in cycles.
    pub latency: f64,
    /// Reciprocal throughput of the compute part, in cycles.
    pub rtp: f64,
    /// Ports usable by the compute µops.
    pub ports: PortSet,
    /// Number of load µops (issued on [`PortSet::LOAD`]).
    pub loads: u8,
    /// Number of store µops (store-data on port 4).
    pub stores: u8,
}

impl InstProfile {
    /// Total µops issued by the front end.
    pub fn total_uops(&self) -> u32 {
        u32::from(self.compute_uops) + u32::from(self.loads) + 2 * u32::from(self.stores)
    }
}

/// L1 load-to-use latency, in cycles.
pub const LOAD_LATENCY: f64 = 5.0;

/// Front-end issue width (µops per cycle) for HSW/SKL.
pub const ISSUE_WIDTH: f64 = 4.0;

/// Base (register-form) timing of an opcode:
/// `(compute_uops, latency, reciprocal throughput, ports)`.
fn base_profile(op: Opcode, march: Microarch) -> (u8, f64, f64, PortSet) {
    use Microarch::{Haswell as Hsw, Skylake as Skl};
    use Opcode::*;
    match (op, march) {
        // Scalar ALU.
        (Add | Sub | And | Or | Xor | Cmp | Test | Inc | Dec | Neg | Not, _) => {
            (1, 1.0, 0.25, PortSet::P0156)
        }
        (Adc | Sbb, Hsw) => (2, 2.0, 1.0, PortSet::P06),
        (Adc | Sbb, Skl) => (1, 1.0, 0.5, PortSet::P06),
        // Multiply / divide.
        (Imul, _) => (1, 3.0, 1.0, PortSet::P1),
        (Mul, _) => (2, 3.0, 1.0, PortSet::P1),
        (Div, Hsw) => (10, 36.0, 25.0, PortSet::P0),
        (Div, Skl) => (10, 35.0, 21.0, PortSet::P0),
        (Idiv, Hsw) => (10, 39.0, 27.0, PortSet::P0),
        (Idiv, Skl) => (10, 37.0, 23.0, PortSet::P0),
        // Shifts.
        (Shl | Shr | Sar | Rol | Ror, _) => (1, 1.0, 0.5, PortSet::P06),
        // Moves.
        (Mov | Movzx | Movsx, _) => (1, 1.0, 0.25, PortSet::P0156),
        (Xchg, _) => (3, 2.0, 1.0, PortSet::P0156),
        (Bswap, _) => (2, 2.0, 1.0, PortSet::P15),
        // Address generation (simple form; see `profile` for complex LEA).
        (Lea, _) => (1, 1.0, 0.5, PortSet::P15),
        // Stack (compute part only; the load/store µops are added by
        // `profile`).
        (Push | Pop, _) => (0, 0.0, 0.0, PortSet::P0156),
        // Conditional moves.
        (Cmove | Cmovne | Cmovl | Cmovg | Cmovle | Cmovge | Cmovb | Cmova, Hsw) => {
            (2, 2.0, 0.5, PortSet::P0156)
        }
        (Cmove | Cmovne | Cmovl | Cmovg | Cmovle | Cmovge | Cmovb | Cmova, Skl) => {
            (1, 1.0, 0.5, PortSet::P06)
        }
        // Bit scans / counts.
        (Bsf | Bsr | Popcnt | Lzcnt | Tzcnt, _) => (1, 3.0, 1.0, PortSet::P1),
        (Nop, _) => (1, 0.0, 0.25, PortSet::P0156),
        // Float add family.
        (
            Addss | Subss | Minss | Maxss | Addsd | Subsd | Minsd | Maxsd | Addps | Subps | Addpd
            | Subpd | Minps | Maxps | Vaddss | Vsubss | Vminss | Vmaxss | Vaddsd | Vsubsd | Vaddps
            | Vsubps | Vminps | Vmaxps,
            Hsw,
        ) => (1, 3.0, 1.0, PortSet::P1),
        (
            Addss | Subss | Minss | Maxss | Addsd | Subsd | Minsd | Maxsd | Addps | Subps | Addpd
            | Subpd | Minps | Maxps | Vaddss | Vsubss | Vminss | Vmaxss | Vaddsd | Vsubsd | Vaddps
            | Vsubps | Vminps | Vmaxps,
            Skl,
        ) => (1, 4.0, 0.5, PortSet::P01),
        // Float multiply.
        (Mulss | Mulsd | Mulps | Mulpd | Vmulss | Vmulsd | Vmulps, Hsw) => {
            (1, 5.0, 0.5, PortSet::P01)
        }
        (Mulss | Mulsd | Mulps | Mulpd | Vmulss | Vmulsd | Vmulps, Skl) => {
            (1, 4.0, 0.5, PortSet::P01)
        }
        // Float divide / sqrt (unpipelined-ish: high rtp, port 0).
        (Divss | Divps | Vdivss | Vdivps, Hsw) => (1, 13.0, 7.0, PortSet::P0),
        (Divss | Divps | Vdivss | Vdivps, Skl) => (1, 11.0, 3.0, PortSet::P0),
        (Divsd | Divpd | Vdivsd, Hsw) => (1, 20.0, 14.0, PortSet::P0),
        (Divsd | Divpd | Vdivsd, Skl) => (1, 14.0, 4.0, PortSet::P0),
        (Sqrtss | Vsqrtss, Hsw) => (1, 11.0, 7.0, PortSet::P0),
        (Sqrtss | Vsqrtss, Skl) => (1, 12.0, 3.0, PortSet::P0),
        (Sqrtsd, Hsw) => (1, 16.0, 8.0, PortSet::P0),
        (Sqrtsd, Skl) => (1, 18.0, 6.0, PortSet::P0),
        // Scalar compares, reciprocal approximations, converts.
        (Comiss | Ucomiss | Comisd | Ucomisd, _) => (1, 2.0, 1.0, PortSet::P1),
        (Rcpss | Rsqrtss | Vrcpss | Vrsqrtss, _) => (1, 5.0, 1.0, PortSet::P0),
        (Cvtss2sd | Cvtsd2ss | Vcvtss2sd | Vcvtsd2ss, Hsw) => (1, 2.0, 1.0, PortSet::P1),
        (Cvtss2sd | Cvtsd2ss | Vcvtss2sd | Vcvtsd2ss, Skl) => (1, 2.0, 1.0, PortSet::P01),
        // Vector logic.
        (
            Xorps | Andps | Orps | Andnps | Pand | Por | Pxor | Vxorps | Vandps | Vorps | Vandnps
            | Vpand | Vpor | Vpxor,
            _,
        ) => (1, 1.0, 0.34, PortSet::P015),
        // Vector integer.
        (
            Paddd | Psubd | Paddq | Psubq | Pminud | Pmaxud | Pavgb | Pcmpeqd | Pcmpgtd | Vpaddd
            | Vpsubd | Vpminud | Vpmaxud | Vpavgb | Vpcmpeqd | Vpcmpgtd,
            Hsw,
        ) => (1, 1.0, 0.5, PortSet::P15),
        (
            Paddd | Psubd | Paddq | Psubq | Pminud | Pmaxud | Pavgb | Pcmpeqd | Pcmpgtd | Vpaddd
            | Vpsubd | Vpminud | Vpmaxud | Vpavgb | Vpcmpeqd | Vpcmpgtd,
            Skl,
        ) => (1, 1.0, 0.34, PortSet::P015),
        (Pmulld, Hsw) => (2, 10.0, 2.0, PortSet::P0),
        (Pmulld, Skl) => (2, 10.0, 1.0, PortSet::P01),
        // Vector moves.
        (Movaps | Movups | Vmovaps | Vmovups, _) => (1, 1.0, 0.25, PortSet::P015),
        (
            Paddb | Paddw | Paddsb | Paddsw | Paddusb | Paddusw | Psubb | Psubw | Psubsb | Psubsw
            | Psubusb | Psubusw | Pminsw | Pminsd | Pminub | Pminuw | Pmaxsw | Pmaxsd | Pmaxub
            | Pmaxuw | Pcmpeqb | Pcmpeqw | Pcmpeqq | Pcmpgtb | Pcmpgtw | Pcmpgtq | Pavgw | Vpaddb
            | Vpaddw | Vpsubb | Vpsubw | Vpminsd | Vpmaxsd | Vpminsw | Vpmaxsw | Vpcmpeqb
            | Vpcmpgtb | Vpavgw,
            Hsw,
        ) => (1, 1.0, 0.5, PortSet::P15),
        (
            Paddb | Paddw | Paddsb | Paddsw | Paddusb | Paddusw | Psubb | Psubw | Psubsb | Psubsw
            | Psubusb | Psubusw | Pminsw | Pminsd | Pminub | Pminuw | Pmaxsw | Pmaxsd | Pmaxub
            | Pmaxuw | Pcmpeqb | Pcmpeqw | Pcmpeqq | Pcmpgtb | Pcmpgtw | Pcmpgtq | Pavgw | Vpaddb
            | Vpaddw | Vpsubb | Vpsubw | Vpminsd | Vpmaxsd | Vpminsw | Vpmaxsw | Vpcmpeqb
            | Vpcmpgtb | Vpavgw,
            Skl,
        ) => (1, 1.0, 0.34, PortSet::P015),
        (
            Packssdw | Packsswb | Packusdw | Punpcklbw | Punpcklwd | Punpckhbw | Punpckhwd
            | Vpacksswb | Vpackssdw | Vpunpcklbw | Vpunpcklwd,
            _,
        ) => (1, 1.0, 1.0, PortSet::P5),
        (
            Unpcklps | Unpckhps | Punpckldq | Punpckhdq | Vunpcklps | Vunpckhps | Vpunpckldq
            | Vpunpckhdq,
            _,
        ) => (1, 1.0, 1.0, PortSet::P5),
        (Movss | Movsd, _) => (1, 1.0, 1.0, PortSet::P5),
    }
}

/// The full timing profile of an instruction on a microarchitecture.
///
/// Beyond the opcode's base profile, accounts for:
///
/// * load/store µops for memory operands (and for `push`/`pop`);
/// * narrow (≤32-bit) integer division being markedly cheaper;
/// * complex `lea` forms (base + index + displacement) taking the slow
///   port-1 path;
/// * 256-bit divide throughput halving.
pub fn profile(inst: &Instruction, march: Microarch) -> InstProfile {
    let (mut compute_uops, mut latency, mut rtp, mut ports) = base_profile(inst.opcode, march);
    let category = inst.opcode.category();

    // Narrow integer division is much cheaper than 64-bit.
    if category == OpCategory::ScalarDiv {
        let wide = inst.operands.first().and_then(|op| op.size()).is_some_and(|s| s == Size::B64);
        if !wide {
            latency = (latency * 0.65).round();
            rtp = (rtp * 0.4).round();
            compute_uops = compute_uops.min(6);
        }
    }

    // Complex LEA (three address components) takes the slow path.
    if inst.opcode == Opcode::Lea {
        if let Some(mem) = inst.mem_operand() {
            let components = usize::from(mem.base.is_some())
                + usize::from(mem.index.is_some())
                + usize::from(mem.disp != 0);
            if components >= 3 {
                latency = 3.0;
                rtp = 1.0;
                ports = PortSet::P1;
            }
        }
    }

    // 256-bit divides halve throughput.
    if category == OpCategory::VecFloatDiv {
        let wide = inst.operands.first().and_then(|op| op.size()).is_some_and(|s| s == Size::B256);
        if wide {
            rtp *= 2.0;
            latency += 1.0;
        }
    }

    let fx = inst.effects();
    let mut loads = fx.mem_reads.len() as u8;
    let mut stores = fx.mem_writes.len() as u8;
    if inst.opcode == Opcode::Push {
        stores += 1;
    }
    if inst.opcode == Opcode::Pop {
        loads += 1;
    }

    InstProfile { compute_uops, latency, rtp, ports, loads, stores }
}

/// Crude per-instruction reciprocal-throughput estimate, used by the
/// paper's interpretable cost model C as `cost_inst` (Appendix G derives
/// it from uops.info's hardware throughput table; we derive it from our
/// own tables): the binding resource among compute, load, and store
/// pressure.
pub fn instruction_throughput(inst: &Instruction, march: Microarch) -> f64 {
    let p = profile(inst, march);
    let load_pressure = f64::from(p.loads) * 0.5; // two load ports
    let store_pressure = f64::from(p.stores) * 1.0; // one store-data port
    p.rtp.max(load_pressure).max(store_pressure).max(f64::from(p.total_uops()) / ISSUE_WIDTH)
}

/// Register-to-register result latency plus load latency when the value
/// is sourced from memory.
pub fn instruction_latency(inst: &Instruction, march: Microarch) -> f64 {
    let p = profile(inst, march);
    if p.loads > 0 {
        p.latency + LOAD_LATENCY
    } else {
        p.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{MemOperand, Operand};
    use crate::reg::Register;

    fn parse(text: &str) -> Instruction {
        crate::parse::parse_instruction(text).unwrap()
    }

    #[test]
    fn every_opcode_has_profiles_on_both_marches() {
        for &op in Opcode::ALL {
            for march in Microarch::ALL {
                let (uops, lat, rtp, ports) = base_profile(op, march);
                assert!(rtp >= 0.0 && lat >= 0.0, "{op} {march}");
                assert!(uops > 0 || matches!(op, Opcode::Push | Opcode::Pop), "{op}");
                let _ = ports.count();
            }
        }
    }

    #[test]
    fn div_dominates_alu() {
        let div = parse("div rcx");
        let add = parse("add rcx, rax");
        for march in Microarch::ALL {
            assert!(
                instruction_throughput(&div, march) > 10.0 * instruction_throughput(&add, march)
            );
        }
    }

    #[test]
    fn narrow_div_cheaper_than_wide() {
        let div64 = parse("div rcx");
        let div32 = parse("div ecx");
        let p64 = profile(&div64, Microarch::Haswell);
        let p32 = profile(&div32, Microarch::Haswell);
        assert!(p32.rtp < p64.rtp);
        assert!(p32.latency < p64.latency);
    }

    #[test]
    fn stores_cost_more_than_register_moves() {
        let store = parse("mov qword ptr [rdi + 24], rdx");
        let mov = parse("mov rdi, rbp");
        for march in Microarch::ALL {
            assert!(instruction_throughput(&store, march) > instruction_throughput(&mov, march));
        }
    }

    #[test]
    fn loads_add_latency() {
        let load = parse("mov rsi, qword ptr [r14 + 32]");
        let mov = parse("mov rsi, r14");
        assert!(
            instruction_latency(&load, Microarch::Haswell)
                >= instruction_latency(&mov, Microarch::Haswell) + LOAD_LATENCY
        );
    }

    #[test]
    fn complex_lea_slower_than_simple() {
        let complex = parse("lea rax, [rcx + rax - 1]");
        let simple = parse("lea rdx, [rax + 1]");
        let pc = profile(&complex, Microarch::Haswell);
        let ps = profile(&simple, Microarch::Haswell);
        assert!(pc.latency > ps.latency);
        assert!(pc.rtp > ps.rtp);
    }

    #[test]
    fn skylake_divides_faster_than_haswell() {
        let div = parse("vdivss xmm0, xmm0, xmm6");
        let hsw = profile(&div, Microarch::Haswell);
        let skl = profile(&div, Microarch::Skylake);
        assert!(skl.rtp < hsw.rtp);
    }

    #[test]
    fn push_profile_counts_store_uops() {
        let push =
            Instruction::new(Opcode::Push, vec![Operand::reg(Register::from_name("rbx").unwrap())])
                .unwrap();
        let p = profile(&push, Microarch::Haswell);
        assert_eq!(p.stores, 1);
        assert_eq!(p.loads, 0);
        let mem = MemOperand::base(Register::from_name("rax").unwrap(), Size::B64);
        let pop_mem = Instruction::new(Opcode::Pop, vec![Operand::Mem(mem)]).unwrap();
        let p2 = profile(&pop_mem, Microarch::Haswell);
        // `pop m64` both loads (stack) and stores (destination).
        assert_eq!(p2.loads, 1);
        assert_eq!(p2.stores, 1);
    }

    #[test]
    fn portset_iteration() {
        assert_eq!(PortSet::P0156.iter().collect::<Vec<_>>(), vec![0, 1, 5, 6]);
        assert_eq!(PortSet::LOAD.count(), 2);
        assert!(PortSet::STORE_ADDR.contains(7));
    }
}
