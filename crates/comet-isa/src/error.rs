//! Error types for the ISA crate.

use std::error::Error;
use std::fmt;

use crate::operand::OperandKind;
use crate::Opcode;

/// Errors produced while constructing or parsing instructions and blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The mnemonic is not part of the modelled subset.
    UnknownOpcode(String),
    /// The opcode does not accept the given operand kinds.
    InvalidOperands {
        /// The offending opcode.
        opcode: Opcode,
        /// The operand kinds that failed to match any signature.
        kinds: Vec<OperandKind>,
    },
    /// A line failed to parse.
    Parse {
        /// 1-based line number within the parsed block.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A block must contain at least one instruction.
    EmptyBlock,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownOpcode(name) => write!(f, "unknown opcode `{name}`"),
            IsaError::InvalidOperands { opcode, kinds } => {
                write!(f, "opcode `{opcode}` does not accept operands (")?;
                for (i, kind) in kinds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{kind}")?;
                }
                write!(f, ")")
            }
            IsaError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IsaError::EmptyBlock => write!(f, "basic block is empty"),
        }
    }
}

impl Error for IsaError {}
