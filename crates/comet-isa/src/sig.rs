//! Opcode operand signatures and access semantics.
//!
//! A [`Signature`] describes one legal operand form of an opcode: which
//! operand kinds/sizes are accepted in each position, and whether each
//! operand is read, written, or both. COMET's perturbation algorithm uses
//! signatures in two ways:
//!
//! * *validity*: an instruction is a legal basic-block instruction iff its
//!   operand list matches one of its opcode's signatures;
//! * *replacement*: opcode `O'` may replace `O` in an instruction iff `O'`
//!   accepts the instruction's exact operand kinds (paper §5.2) — with the
//!   additional requirement that address-only memory operands (`lea`) only
//!   match address-only patterns, which reproduces the paper's observation
//!   (Appendix D) that `lea` has no valid replacement.

use serde::{Deserialize, Serialize};

use crate::operand::OperandKind;
use crate::reg::Size;

/// How an instruction treats one of its explicit operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Access {
    /// Operand value is read.
    Read,
    /// Operand value is written.
    Write,
    /// Operand value is read and written.
    ReadWrite,
    /// Operand value is neither read nor written (e.g. the memory operand
    /// of `lea`, whose *address registers* are still read).
    None,
}

impl Access {
    /// Whether the operand's value is read.
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// Whether the operand's value is written.
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// A pattern matched against one operand position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pat {
    /// Accepted general-purpose register widths (empty = not accepted).
    pub gpr: &'static [Size],
    /// Accepted vector register widths.
    pub vec: &'static [Size],
    /// Accepted memory access widths.
    pub mem: &'static [Size],
    /// Whether an immediate is accepted.
    pub imm: bool,
    /// If true, a matching memory operand is an address computation only
    /// (no load/store) — `lea`'s second operand.
    pub addr_only: bool,
}

const NO_SIZES: &[Size] = &[];

impl Pat {
    const EMPTY: Pat =
        Pat { gpr: NO_SIZES, vec: NO_SIZES, mem: NO_SIZES, imm: false, addr_only: false };

    /// GPR-only pattern.
    pub const fn gpr(sizes: &'static [Size]) -> Pat {
        Pat { gpr: sizes, ..Pat::EMPTY }
    }

    /// GPR-or-memory pattern (`r/m`).
    pub const fn rm(sizes: &'static [Size]) -> Pat {
        Pat { gpr: sizes, mem: sizes, ..Pat::EMPTY }
    }

    /// Memory-only pattern.
    pub const fn mem(sizes: &'static [Size]) -> Pat {
        Pat { mem: sizes, ..Pat::EMPTY }
    }

    /// Address-only memory pattern (`lea`).
    pub const fn addr(sizes: &'static [Size]) -> Pat {
        Pat { mem: sizes, addr_only: true, ..Pat::EMPTY }
    }

    /// Immediate pattern.
    pub const fn imm() -> Pat {
        Pat { imm: true, ..Pat::EMPTY }
    }

    /// Vector-register-only pattern.
    pub const fn vec(sizes: &'static [Size]) -> Pat {
        Pat { vec: sizes, ..Pat::EMPTY }
    }

    /// Vector-register-or-memory pattern.
    pub const fn vm(vsizes: &'static [Size], msizes: &'static [Size]) -> Pat {
        Pat { vec: vsizes, mem: msizes, ..Pat::EMPTY }
    }

    /// Whether this pattern accepts the given operand kind.
    pub fn matches(&self, kind: OperandKind) -> bool {
        match kind {
            OperandKind::Gpr(s) => self.gpr.contains(&s),
            OperandKind::Vec(s) => self.vec.contains(&s),
            OperandKind::Mem(s) => self.mem.contains(&s),
            OperandKind::Imm => self.imm,
        }
    }
}

/// One legal operand form of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Per-position operand patterns.
    pub pats: &'static [Pat],
    /// Per-position access semantics (parallel to `pats`).
    pub accesses: &'static [Access],
    /// If true, all sized operands (registers and memory) must share one
    /// width — the standard x86 ALU form constraint.
    pub uniform: bool,
    /// If true, the first operand must be strictly wider than the second
    /// (`movzx`/`movsx`).
    pub widening: bool,
}

impl Signature {
    const fn new(pats: &'static [Pat], accesses: &'static [Access]) -> Signature {
        Signature { pats, accesses, uniform: true, widening: false }
    }

    const fn free(pats: &'static [Pat], accesses: &'static [Access]) -> Signature {
        Signature { pats, accesses, uniform: false, widening: false }
    }

    const fn widen(pats: &'static [Pat], accesses: &'static [Access]) -> Signature {
        Signature { pats, accesses, uniform: false, widening: true }
    }

    /// Whether this signature accepts the given operand kind list.
    pub fn matches(&self, kinds: &[OperandKind]) -> bool {
        if kinds.len() != self.pats.len() {
            return false;
        }
        if !self.pats.iter().zip(kinds).all(|(pat, &kind)| pat.matches(kind)) {
            return false;
        }
        let size_of = |kind: &OperandKind| match *kind {
            OperandKind::Gpr(s) | OperandKind::Vec(s) | OperandKind::Mem(s) => Some(s),
            OperandKind::Imm => None,
        };
        if self.uniform {
            let mut sized = kinds.iter().filter_map(size_of);
            if let Some(first) = sized.next() {
                if !sized.all(|s| s == first) {
                    return false;
                }
            }
        }
        if self.widening {
            match (size_of(&kinds[0]), kinds.get(1).and_then(size_of)) {
                (Some(a), Some(b)) if a > b => {}
                _ => return false,
            }
        }
        true
    }
}

// Size sets.
use Size::{B128, B16, B256, B32, B64, B8};
const S_ALL: &[Size] = &[B8, B16, B32, B64];
const S_WIDE: &[Size] = &[B16, B32, B64];
const S_32_64: &[Size] = &[B32, B64];
const S_8: &[Size] = &[B8];
const S_8_16: &[Size] = &[B8, B16];
const S_64: &[Size] = &[B64];
const V_128: &[Size] = &[B128];
const V_ANY: &[Size] = &[B128, B256];
const M_32: &[Size] = &[B32];
const M_64: &[Size] = &[B64];
const M_128: &[Size] = &[B128];
const M_VANY: &[Size] = &[B128, B256];

use Access::{None as NoAcc, Read as R, ReadWrite as RW, Write as W};

// ---- scalar families -------------------------------------------------------

/// `op r/m, r` | `op r, r/m` | `op r/m, imm` with read-write destination.
pub static ALU2: &[Signature] = &[
    Signature::new(&[Pat::rm(S_ALL), Pat::gpr(S_ALL)], &[RW, R]),
    Signature::new(&[Pat::gpr(S_ALL), Pat::rm(S_ALL)], &[RW, R]),
    Signature::new(&[Pat::rm(S_ALL), Pat::imm()], &[RW, R]),
];

/// Compare family: same forms as [`ALU2`] but reads both operands.
pub static CMP2: &[Signature] = &[
    Signature::new(&[Pat::rm(S_ALL), Pat::gpr(S_ALL)], &[R, R]),
    Signature::new(&[Pat::gpr(S_ALL), Pat::rm(S_ALL)], &[R, R]),
    Signature::new(&[Pat::rm(S_ALL), Pat::imm()], &[R, R]),
];

static UNARY_RM: &[Signature] = &[Signature::new(&[Pat::rm(S_ALL)], &[RW])];

static MULDIV: &[Signature] = &[Signature::new(&[Pat::rm(S_ALL)], &[R])];

static IMUL: &[Signature] = &[
    Signature::new(&[Pat::gpr(S_WIDE), Pat::rm(S_WIDE)], &[RW, R]),
    Signature::new(&[Pat::gpr(S_WIDE), Pat::rm(S_WIDE), Pat::imm()], &[W, R, R]),
];

static SHIFT: &[Signature] = &[
    Signature::new(&[Pat::rm(S_ALL), Pat::imm()], &[RW, R]),
    Signature::free(&[Pat::rm(S_ALL), Pat::gpr(S_8)], &[RW, R]),
];

static MOV: &[Signature] = &[
    Signature::new(&[Pat::rm(S_ALL), Pat::gpr(S_ALL)], &[W, R]),
    Signature::new(&[Pat::gpr(S_ALL), Pat::rm(S_ALL)], &[W, R]),
    Signature::new(&[Pat::rm(S_ALL), Pat::imm()], &[W, R]),
];

static MOVX: &[Signature] = &[Signature::widen(&[Pat::gpr(S_WIDE), Pat::rm(S_8_16)], &[W, R])];

static XCHG: &[Signature] = &[
    Signature::new(&[Pat::rm(S_ALL), Pat::gpr(S_ALL)], &[RW, RW]),
    Signature::new(&[Pat::gpr(S_ALL), Pat::rm(S_ALL)], &[RW, RW]),
];

static BSWAP: &[Signature] = &[Signature::new(&[Pat::gpr(S_32_64)], &[RW])];

static LEA: &[Signature] = &[Signature::free(&[Pat::gpr(S_WIDE), Pat::addr(S_ALL)], &[W, NoAcc])];

static PUSH: &[Signature] = &[
    Signature::new(&[Pat::gpr(S_64)], &[R]),
    Signature::new(&[Pat::mem(S_64)], &[R]),
    Signature::new(&[Pat::imm()], &[R]),
];

static POP: &[Signature] =
    &[Signature::new(&[Pat::gpr(S_64)], &[W]), Signature::new(&[Pat::mem(S_64)], &[W])];

static CMOV: &[Signature] = &[Signature::new(&[Pat::gpr(S_WIDE), Pat::rm(S_WIDE)], &[RW, R])];

static BITSCAN: &[Signature] = &[Signature::new(&[Pat::gpr(S_WIDE), Pat::rm(S_WIDE)], &[W, R])];

static NOP: &[Signature] = &[Signature::new(&[], &[])];

// ---- vector families -------------------------------------------------------

static SSE_SS_RW: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vm(V_128, M_32)], &[RW, R])];
static SSE_SD_RW: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vm(V_128, M_64)], &[RW, R])];
static SSE_SS_W: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vm(V_128, M_32)], &[W, R])];
static SSE_SD_W: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vm(V_128, M_64)], &[W, R])];
static SSE_PACKED: &[Signature] =
    &[Signature::new(&[Pat::vec(V_128), Pat::vm(V_128, M_128)], &[RW, R])];
static SSE_MOV: &[Signature] = &[
    Signature::new(&[Pat::vec(V_128), Pat::vm(V_128, M_128)], &[W, R]),
    Signature::new(&[Pat::mem(M_128), Pat::vec(V_128)], &[W, R]),
];
static MOVSS: &[Signature] = &[
    Signature::free(&[Pat::vec(V_128), Pat::vec(V_128)], &[RW, R]),
    Signature::free(&[Pat::vec(V_128), Pat::mem(M_32)], &[W, R]),
    Signature::free(&[Pat::mem(M_32), Pat::vec(V_128)], &[W, R]),
];
static MOVSD: &[Signature] = &[
    Signature::free(&[Pat::vec(V_128), Pat::vec(V_128)], &[RW, R]),
    Signature::free(&[Pat::vec(V_128), Pat::mem(M_64)], &[W, R]),
    Signature::free(&[Pat::mem(M_64), Pat::vec(V_128)], &[W, R]),
];
static SSE_SS_CMP: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vm(V_128, M_32)], &[R, R])];
static SSE_SD_CMP: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vm(V_128, M_64)], &[R, R])];
static AVX_SS: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vec(V_128), Pat::vm(V_128, M_32)], &[W, R, R])];
static AVX_SD: &[Signature] =
    &[Signature::free(&[Pat::vec(V_128), Pat::vec(V_128), Pat::vm(V_128, M_64)], &[W, R, R])];
static AVX_PACKED: &[Signature] =
    &[Signature::new(&[Pat::vec(V_ANY), Pat::vec(V_ANY), Pat::vm(V_ANY, M_VANY)], &[W, R, R])];
static AVX_MOV: &[Signature] = &[
    Signature::new(&[Pat::vec(V_ANY), Pat::vm(V_ANY, M_VANY)], &[W, R]),
    Signature::new(&[Pat::mem(M_VANY), Pat::vec(V_ANY)], &[W, R]),
];

/// The legal operand signatures of an opcode.
pub fn signatures(op: crate::Opcode) -> &'static [Signature] {
    use crate::Opcode::*;
    match op {
        Add | Sub | Adc | Sbb | And | Or | Xor => ALU2,
        Cmp | Test => CMP2,
        Inc | Dec | Neg | Not => UNARY_RM,
        Imul => IMUL,
        Mul | Div | Idiv => MULDIV,
        Shl | Shr | Sar | Rol | Ror => SHIFT,
        Mov => MOV,
        Movzx | Movsx => MOVX,
        Xchg => XCHG,
        Bswap => BSWAP,
        Lea => LEA,
        Push => PUSH,
        Pop => POP,
        Cmove | Cmovne | Cmovl | Cmovg | Cmovle | Cmovge | Cmovb | Cmova => CMOV,
        Bsf | Bsr | Popcnt | Lzcnt | Tzcnt => BITSCAN,
        Nop => NOP,
        Addss | Subss | Minss | Maxss | Mulss | Divss => SSE_SS_RW,
        Sqrtss | Rcpss | Rsqrtss | Cvtss2sd => SSE_SS_W,
        Comiss | Ucomiss => SSE_SS_CMP,
        Comisd | Ucomisd => SSE_SD_CMP,
        Addsd | Subsd | Minsd | Maxsd | Mulsd | Divsd => SSE_SD_RW,
        Sqrtsd | Cvtsd2ss => SSE_SD_W,
        Addps | Subps | Mulps | Divps | Addpd | Subpd | Mulpd | Divpd | Xorps | Andps | Orps
        | Andnps | Minps | Maxps | Unpcklps | Unpckhps | Paddd | Psubd | Paddq | Psubq | Pand
        | Por | Pxor | Pmulld | Pminud | Pmaxud | Pavgb | Pcmpeqd | Pcmpgtd | Punpckldq
        | Punpckhdq | Paddb | Paddw | Paddsb | Paddsw | Paddusb | Paddusw | Psubb | Psubw
        | Psubsb | Psubsw | Psubusb | Psubusw | Pminsw | Pminsd | Pminub | Pminuw | Pmaxsw
        | Pmaxsd | Pmaxub | Pmaxuw | Pcmpeqb | Pcmpeqw | Pcmpeqq | Pcmpgtb | Pcmpgtw | Pcmpgtq
        | Pavgw | Packssdw | Packsswb | Packusdw | Punpcklbw | Punpcklwd | Punpckhbw
        | Punpckhwd => SSE_PACKED,
        Movaps | Movups => SSE_MOV,
        Movss => MOVSS,
        Movsd => MOVSD,
        Vaddss | Vsubss | Vminss | Vmaxss | Vmulss | Vdivss | Vsqrtss | Vrcpss | Vrsqrtss
        | Vcvtss2sd => AVX_SS,
        Vaddsd | Vsubsd | Vmulsd | Vdivsd | Vcvtsd2ss => AVX_SD,
        Vaddps | Vsubps | Vmulps | Vdivps | Vxorps | Vandps | Vorps | Vandnps | Vminps | Vmaxps
        | Vunpcklps | Vunpckhps | Vpaddd | Vpsubd | Vpand | Vpor | Vpxor | Vpminud | Vpmaxud
        | Vpavgb | Vpcmpeqd | Vpcmpgtd | Vpunpckldq | Vpunpckhdq | Vpaddb | Vpaddw | Vpsubb
        | Vpsubw | Vpminsd | Vpmaxsd | Vpminsw | Vpmaxsw | Vpcmpeqb | Vpcmpgtb | Vpavgw
        | Vpacksswb | Vpackssdw | Vpunpcklbw | Vpunpcklwd => AVX_PACKED,
        Vmovaps | Vmovups => AVX_MOV,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn alu_accepts_standard_forms() {
        let sigs = signatures(Opcode::Add);
        let rr = [OperandKind::Gpr(B64), OperandKind::Gpr(B64)];
        let rm = [OperandKind::Gpr(B32), OperandKind::Mem(B32)];
        let ri = [OperandKind::Gpr(B64), OperandKind::Imm];
        for kinds in [&rr[..], &rm[..], &ri[..]] {
            assert!(sigs.iter().any(|s| s.matches(kinds)), "{kinds:?}");
        }
    }

    #[test]
    fn alu_rejects_mixed_widths() {
        let sigs = signatures(Opcode::Add);
        let bad = [OperandKind::Gpr(B64), OperandKind::Gpr(B32)];
        assert!(!sigs.iter().any(|s| s.matches(&bad)));
        let bad2 = [OperandKind::Gpr(B64), OperandKind::Mem(B32)];
        assert!(!sigs.iter().any(|s| s.matches(&bad2)));
    }

    #[test]
    fn movzx_requires_widening() {
        let sigs = signatures(Opcode::Movzx);
        let ok = [OperandKind::Gpr(B32), OperandKind::Gpr(B8)];
        let bad = [OperandKind::Gpr(B16), OperandKind::Gpr(B16)];
        assert!(sigs.iter().any(|s| s.matches(&ok)));
        assert!(!sigs.iter().any(|s| s.matches(&bad)));
    }

    #[test]
    fn shift_accepts_byte_count_register() {
        let sigs = signatures(Opcode::Shl);
        let by_cl = [OperandKind::Gpr(B64), OperandKind::Gpr(B8)];
        let by_imm = [OperandKind::Gpr(B32), OperandKind::Imm];
        assert!(sigs.iter().any(|s| s.matches(&by_cl)));
        assert!(sigs.iter().any(|s| s.matches(&by_imm)));
    }

    #[test]
    fn avx_packed_uniform_across_lanes() {
        let sigs = signatures(Opcode::Vaddps);
        let ok = [OperandKind::Vec(B256), OperandKind::Vec(B256), OperandKind::Vec(B256)];
        let bad = [OperandKind::Vec(B256), OperandKind::Vec(B128), OperandKind::Vec(B128)];
        assert!(sigs.iter().any(|s| s.matches(&ok)));
        assert!(!sigs.iter().any(|s| s.matches(&bad)));
    }

    #[test]
    fn scalar_sse_takes_narrow_memory() {
        let sigs = signatures(Opcode::Addss);
        let mem = [OperandKind::Vec(B128), OperandKind::Mem(B32)];
        let wide_mem = [OperandKind::Vec(B128), OperandKind::Mem(B128)];
        assert!(sigs.iter().any(|s| s.matches(&mem)));
        assert!(!sigs.iter().any(|s| s.matches(&wide_mem)));
    }

    #[test]
    fn lea_memory_operand_is_address_only() {
        let sigs = signatures(Opcode::Lea);
        assert!(sigs[0].pats[1].addr_only);
        let kinds = [OperandKind::Gpr(B64), OperandKind::Mem(B64)];
        assert!(sigs.iter().any(|s| s.matches(&kinds)));
    }

    #[test]
    fn every_opcode_has_signatures() {
        for &op in Opcode::ALL {
            let sigs = signatures(op);
            assert!(!sigs.is_empty(), "{op}");
            for sig in sigs {
                assert_eq!(sig.pats.len(), sig.accesses.len(), "{op}");
            }
        }
    }
}
