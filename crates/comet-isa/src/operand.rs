//! Instruction operands: registers, memory references, immediates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::reg::{RegClass, Register, Size};

/// A memory operand in Intel syntax: `size ptr [base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOperand {
    /// Base address register, if any.
    pub base: Option<Register>,
    /// Index register, if any.
    pub index: Option<Register>,
    /// Index scale factor (1, 2, 4, or 8). Meaningful only with `index`.
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
    /// Access width of the memory reference.
    pub size: Size,
}

impl MemOperand {
    /// `size ptr [base]`
    pub fn base(base: Register, size: Size) -> MemOperand {
        MemOperand { base: Some(base), index: None, scale: 1, disp: 0, size }
    }

    /// `size ptr [base + disp]`
    pub fn base_disp(base: Register, disp: i64, size: Size) -> MemOperand {
        MemOperand { base: Some(base), index: None, scale: 1, disp, size }
    }

    /// `size ptr [base + index*scale + disp]`
    pub fn base_index(
        base: Register,
        index: Register,
        scale: u8,
        disp: i64,
        size: Size,
    ) -> MemOperand {
        MemOperand { base: Some(base), index: Some(index), scale, disp, size }
    }

    /// Registers read to compute the effective address.
    pub fn address_registers(&self) -> impl Iterator<Item = Register> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Whether two memory operands may refer to the same location.
    ///
    /// We use the conservative *syntactic* disambiguation common to static
    /// analyzers: identical (base, index, scale, disp) expressions
    /// definitely overlap; expressions that differ only in displacement by
    /// at least the access width definitely do not; anything else may
    /// alias.
    pub fn may_alias(&self, other: &MemOperand) -> bool {
        let same_base = match (self.base, other.base) {
            (Some(a), Some(b)) => a.aliases(b),
            (None, None) => true,
            _ => return true, // unknown vs known base: conservatively alias
        };
        let same_index = match (self.index, other.index) {
            (Some(a), Some(b)) => a.aliases(b) && self.scale == other.scale,
            (None, None) => true,
            _ => return true,
        };
        if !same_base || !same_index {
            // Different base/index registers: could still alias at runtime,
            // but like the paper's multigraph construction we treat
            // distinct address expressions as independent.
            return false;
        }
        // Same address expression: check displacement ranges.
        let a0 = self.disp;
        let a1 = self.disp + i64::from(self.size.bytes());
        let b0 = other.disp;
        let b1 = other.disp + i64::from(other.size.bytes());
        a0 < b1 && b0 < a1
    }

    /// Whether the two operands are the *same* syntactic expression.
    pub fn same_address(&self, other: &MemOperand) -> bool {
        self.base == other.base
            && self.index == other.index
            && (self.index.is_none() || self.scale == other.scale)
            && self.disp == other.disp
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.size {
            Size::B8 => "byte",
            Size::B16 => "word",
            Size::B32 => "dword",
            Size::B64 => "qword",
            Size::B128 => "xmmword",
            Size::B256 => "ymmword",
        };
        write!(f, "{kw} ptr [")?;
        let mut wrote = false;
        if let Some(base) = self.base {
            write!(f, "{base}")?;
            wrote = true;
        }
        if let Some(index) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{index}")?;
            if self.scale != 1 {
                write!(f, "*{}", self.scale)?;
            }
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, " + {}", self.disp)?;
                } else {
                    write!(f, " - {}", -self.disp)?;
                }
            } else {
                write!(f, "{}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// An immediate (constant) operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Immediate {
    /// The constant value.
    pub value: i64,
}

impl Immediate {
    /// Wrap a constant.
    pub fn new(value: i64) -> Immediate {
        Immediate { value }
    }
}

impl fmt::Display for Immediate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Register),
    /// A memory operand.
    Mem(MemOperand),
    /// An immediate operand.
    Imm(Immediate),
}

impl Operand {
    /// Convenience constructor for a register operand.
    pub fn reg(register: Register) -> Operand {
        Operand::Reg(register)
    }

    /// Convenience constructor for an immediate operand.
    pub fn imm(value: i64) -> Operand {
        Operand::Imm(Immediate::new(value))
    }

    /// The register, if this is a register operand.
    pub fn as_reg(&self) -> Option<Register> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The memory operand, if this is one.
    pub fn as_mem(&self) -> Option<&MemOperand> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// The structural kind of this operand (for signature matching).
    pub fn kind(&self) -> OperandKind {
        match self {
            Operand::Reg(r) => match r.class() {
                RegClass::Gpr => OperandKind::Gpr(r.size()),
                RegClass::Vec => OperandKind::Vec(r.size()),
            },
            Operand::Mem(m) => OperandKind::Mem(m.size),
            Operand::Imm(_) => OperandKind::Imm,
        }
    }

    /// The operand's data width, if it has one (immediates are sized by
    /// the opcode form and report `None`).
    pub fn size(&self) -> Option<Size> {
        match self {
            Operand::Reg(r) => Some(r.size()),
            Operand::Mem(m) => Some(m.size),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// The structural kind of an operand, used for opcode signature matching:
/// an opcode may replace another only if it accepts operands of the same
/// kinds and sizes (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandKind {
    /// General-purpose register of the given width.
    Gpr(Size),
    /// Vector register of the given width.
    Vec(Size),
    /// Memory reference of the given width.
    Mem(Size),
    /// Immediate constant.
    Imm,
}

impl fmt::Display for OperandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandKind::Gpr(s) => write!(f, "r{}", s.bits()),
            OperandKind::Vec(s) => write!(f, "v{}", s.bits()),
            OperandKind::Mem(s) => write!(f, "m{}", s.bits()),
            OperandKind::Imm => write!(f, "imm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> Register {
        Register::from_name(name).unwrap()
    }

    #[test]
    fn display_formats_intel_syntax() {
        let m = MemOperand::base_index(r("rbp"), r("rax"), 4, -8, Size::B64);
        assert_eq!(m.to_string(), "qword ptr [rbp + rax*4 - 8]");
        let m2 = MemOperand::base(r("rdi"), Size::B8);
        assert_eq!(m2.to_string(), "byte ptr [rdi]");
        let m3 = MemOperand::base_disp(r("rsp"), 16, Size::B32);
        assert_eq!(m3.to_string(), "dword ptr [rsp + 16]");
    }

    #[test]
    fn same_expression_aliases() {
        let a = MemOperand::base_disp(r("rax"), 8, Size::B64);
        let b = MemOperand::base_disp(r("rax"), 8, Size::B64);
        assert!(a.may_alias(&b));
        assert!(a.same_address(&b));
    }

    #[test]
    fn disjoint_displacements_do_not_alias() {
        let a = MemOperand::base_disp(r("rax"), 0, Size::B64);
        let b = MemOperand::base_disp(r("rax"), 8, Size::B64);
        assert!(!a.may_alias(&b));
        // Overlapping ranges do alias.
        let c = MemOperand::base_disp(r("rax"), 4, Size::B64);
        assert!(a.may_alias(&c));
    }

    #[test]
    fn different_bases_treated_independent() {
        let a = MemOperand::base(r("rax"), Size::B64);
        let b = MemOperand::base(r("rcx"), Size::B64);
        assert!(!a.may_alias(&b));
        // But aliased register names with the same expression do overlap.
        let eax_based = MemOperand::base(r("rax"), Size::B64);
        assert!(a.may_alias(&eax_based));
    }

    #[test]
    fn operand_kinds() {
        assert_eq!(Operand::reg(r("eax")).kind(), OperandKind::Gpr(Size::B32));
        assert_eq!(Operand::reg(r("xmm5")).kind(), OperandKind::Vec(Size::B128));
        assert_eq!(Operand::imm(42).kind(), OperandKind::Imm);
        let m = Operand::Mem(MemOperand::base(r("rsi"), Size::B16));
        assert_eq!(m.kind(), OperandKind::Mem(Size::B16));
    }
}
