//! Instructions and basic blocks.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::operand::{MemOperand, Operand, OperandKind};
use crate::reg::{RegClass, Register, Size};
use crate::sig::{signatures, Signature};
use crate::Opcode;

/// A single decoded x86 instruction.
///
/// Fields are public in the passive-data-structure spirit; use
/// [`Instruction::new`] to construct validated instructions and
/// [`Instruction::is_valid`] to re-check after mutation.
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// Explicit operands in Intel (destination-first) order.
    pub operands: Vec<Operand>,
}

/// `clone_from` reuses the destination's operand buffer, so samplers
/// that rewrite the same instruction slots millions of times do not
/// reallocate once buffers have warmed up.
impl Clone for Instruction {
    fn clone(&self) -> Instruction {
        Instruction { opcode: self.opcode, operands: self.operands.clone() }
    }

    fn clone_from(&mut self, source: &Instruction) {
        self.opcode = source.opcode;
        self.operands.clone_from(&source.operands);
    }
}

/// Upper bound on explicit operand counts used for stack staging in
/// the allocation-free effect computation (x86 needs at most 3).
const MAX_STAGED_OPERANDS: usize = 4;

impl Instruction {
    /// Construct a validated instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidOperands`] if the opcode accepts no
    /// signature matching the operand kinds.
    pub fn new(opcode: Opcode, operands: Vec<Operand>) -> Result<Instruction, IsaError> {
        let inst = Instruction { opcode, operands };
        if inst.matching_signature().is_none() {
            return Err(IsaError::InvalidOperands { opcode, kinds: inst.operand_kinds() });
        }
        Ok(inst)
    }

    /// The structural kinds of the operands.
    pub fn operand_kinds(&self) -> Vec<OperandKind> {
        self.operands.iter().map(Operand::kind).collect()
    }

    /// The first signature of the opcode matching this instruction's
    /// operands, if any.
    pub fn matching_signature(&self) -> Option<&'static Signature> {
        let kinds = self.operand_kinds();
        signatures(self.opcode).iter().find(|sig| sig.matches(&kinds))
    }

    /// Whether the operands match one of the opcode's signatures.
    pub fn is_valid(&self) -> bool {
        self.matching_signature().is_some()
    }

    /// Registers and memory locations read and written by this
    /// instruction, including implicit operands (`div` reads/writes
    /// `rax`/`rdx`; `push`/`pop` read/write `rsp`).
    ///
    /// Address registers of any memory operand are always read,
    /// including for `lea` whose memory operand is otherwise untouched.
    pub fn effects(&self) -> Effects {
        let mut effects = self.explicit_effects();
        for (reg, access) in implicit_operands(self.opcode) {
            if access.reads() {
                effects.reg_reads.push(reg);
            }
            if access.writes() {
                effects.reg_writes.push(reg);
            }
        }
        effects
    }

    /// Like [`Instruction::effects`], but restricted to the *explicit*
    /// operands — the effects visible in the instruction's tokens,
    /// which is what the paper's multigraph construction observes.
    pub fn explicit_effects(&self) -> Effects {
        let mut effects = Effects::default();
        self.explicit_effects_into(&mut effects);
        effects
    }

    /// Allocation-free variant of [`Instruction::explicit_effects`]:
    /// clears `out` and refills it in place, reusing its buffers. The
    /// operand-kind staging that [`Instruction::matching_signature`]
    /// would heap-allocate goes through a stack buffer instead, so a
    /// warmed-up `Effects` makes this a zero-allocation call — the
    /// contract the perturbation sampler's scratch path relies on.
    pub fn explicit_effects_into(&self, out: &mut Effects) {
        out.clear();
        let mut staged = [OperandKind::Imm; MAX_STAGED_OPERANDS];
        let sig = if self.operands.len() <= MAX_STAGED_OPERANDS {
            let kinds = &mut staged[..self.operands.len()];
            for (kind, operand) in kinds.iter_mut().zip(&self.operands) {
                *kind = operand.kind();
            }
            signatures(self.opcode).iter().find(|sig| sig.matches(kinds))
        } else {
            self.matching_signature()
        };
        let Some(sig) = sig else {
            return;
        };
        let effects = out;
        for (operand, access) in self.operands.iter().zip(sig.accesses) {
            match operand {
                Operand::Reg(reg) => {
                    if access.reads() {
                        effects.reg_reads.push(*reg);
                    }
                    if access.writes() {
                        effects.reg_writes.push(*reg);
                    }
                }
                Operand::Mem(mem) => {
                    effects.reg_reads.extend(mem.address_registers());
                    if access.reads() {
                        effects.mem_reads.push(*mem);
                    }
                    if access.writes() {
                        effects.mem_writes.push(*mem);
                    }
                }
                Operand::Imm(_) => {}
            }
        }
    }

    /// Whether the instruction loads from memory.
    pub fn reads_memory(&self) -> bool {
        !self.effects().mem_reads.is_empty() || self.opcode == Opcode::Pop
    }

    /// Whether the instruction stores to memory.
    pub fn writes_memory(&self) -> bool {
        !self.effects().mem_writes.is_empty() || self.opcode == Opcode::Push
    }

    /// The memory operand, if the instruction has one.
    pub fn mem_operand(&self) -> Option<&MemOperand> {
        self.operands.iter().find_map(Operand::as_mem)
    }
}

/// Implicit register operands of an opcode (beyond the explicit operand
/// list): `mul`/`div`/`idiv` read and write `rax`/`rdx`, stack operations
/// read and write `rsp`.
pub fn implicit_operands(opcode: Opcode) -> Vec<(Register, crate::sig::Access)> {
    use crate::sig::Access;
    match opcode {
        Opcode::Mul | Opcode::Div | Opcode::Idiv => vec![
            (Register::new(RegClass::Gpr, 0, Size::B64), Access::ReadWrite), // rax
            (Register::new(RegClass::Gpr, 2, Size::B64), Access::ReadWrite), // rdx
        ],
        Opcode::Push | Opcode::Pop => {
            vec![(
                Register::new(RegClass::Gpr, crate::reg::RSP_INDEX, Size::B64),
                Access::ReadWrite,
            )]
        }
        _ => Vec::new(),
    }
}

/// The register and memory effects of one instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Registers whose value is read.
    pub reg_reads: Vec<Register>,
    /// Registers whose value is written.
    pub reg_writes: Vec<Register>,
    /// Memory locations loaded from.
    pub mem_reads: Vec<MemOperand>,
    /// Memory locations stored to.
    pub mem_writes: Vec<MemOperand>,
}

impl Effects {
    /// Empty all four effect lists, keeping their allocations.
    pub fn clear(&mut self) {
        self.reg_reads.clear();
        self.reg_writes.clear();
        self.mem_reads.clear();
        self.mem_writes.clear();
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        for (i, operand) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " ")?;
            } else {
                write!(f, ", ")?;
            }
            // `lea`'s memory operand is conventionally printed without a
            // size keyword: it is an address computation, not an access.
            match (self.opcode, operand) {
                (Opcode::Lea, Operand::Mem(mem)) => {
                    let full = mem.to_string();
                    let bracket = full.find('[').unwrap_or(0);
                    write!(f, "{}", &full[bracket..])?;
                }
                _ => write!(f, "{operand}")?,
            }
        }
        Ok(())
    }
}

/// A straight-line sequence of instructions with no control flow.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicBlock {
    insts: Vec<Instruction>,
}

impl BasicBlock {
    /// Construct a validated, non-empty basic block.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyBlock`] for an empty instruction list, or
    /// [`IsaError::InvalidOperands`] if any instruction is invalid.
    pub fn new(insts: Vec<Instruction>) -> Result<BasicBlock, IsaError> {
        if insts.is_empty() {
            return Err(IsaError::EmptyBlock);
        }
        for inst in &insts {
            if !inst.is_valid() {
                return Err(IsaError::InvalidOperands {
                    opcode: inst.opcode,
                    kinds: inst.operand_kinds(),
                });
            }
        }
        Ok(BasicBlock { insts })
    }

    /// Number of instructions (the paper's η feature).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block is empty (never true for validated blocks).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The instruction at `index`.
    pub fn get(&self, index: usize) -> Option<&Instruction> {
        self.insts.get(index)
    }

    /// Iterate over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.insts.iter()
    }

    /// Consume the block, returning its instructions.
    pub fn into_instructions(self) -> Vec<Instruction> {
        self.insts
    }

    /// Rebuild this block in place from `insts`, reusing the existing
    /// instruction and operand buffers (each slot is overwritten with
    /// [`Clone::clone_from`]). This is the hot-path counterpart of
    /// [`BasicBlock::new`] for samplers that materialize millions of
    /// variant blocks: once buffers have warmed up it performs no heap
    /// allocation.
    ///
    /// Per-instruction validity is checked only with `debug_assert!`
    /// (the full check allocates); callers must supply instructions
    /// that are already well-formed, e.g. clones of validated
    /// instructions with class- and size-preserving register renames.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyBlock`] if `insts` yields nothing; the
    /// block is left unchanged in that case.
    pub fn rebuild_from<'i, I>(&mut self, insts: I) -> Result<(), IsaError>
    where
        I: IntoIterator<Item = &'i Instruction>,
    {
        let mut len = 0;
        for inst in insts {
            if len < self.insts.len() {
                self.insts[len].clone_from(inst);
            } else {
                self.insts.push(inst.clone());
            }
            len += 1;
        }
        if len == 0 {
            return Err(IsaError::EmptyBlock);
        }
        self.insts.truncate(len);
        debug_assert!(self.is_valid(), "rebuild_from produced an invalid block");
        Ok(())
    }

    /// Whether every instruction is valid (for defensive re-checks after
    /// manual construction).
    pub fn is_valid(&self) -> bool {
        !self.insts.is_empty() && self.insts.iter().all(Instruction::is_valid)
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{inst}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a BasicBlock {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> Operand {
        Operand::reg(Register::from_name(name).unwrap())
    }

    #[test]
    fn constructs_valid_instruction() {
        let add = Instruction::new(Opcode::Add, vec![r("rcx"), r("rax")]).unwrap();
        assert_eq!(add.to_string(), "add rcx, rax");
    }

    #[test]
    fn rejects_invalid_operands() {
        let err = Instruction::new(Opcode::Add, vec![r("rcx"), r("eax")]).unwrap_err();
        assert!(matches!(err, IsaError::InvalidOperands { .. }));
    }

    #[test]
    fn effects_of_alu() {
        let add = Instruction::new(Opcode::Add, vec![r("rcx"), r("rax")]).unwrap();
        let fx = add.effects();
        let rcx = Register::from_name("rcx").unwrap();
        let rax = Register::from_name("rax").unwrap();
        assert!(fx.reg_reads.contains(&rcx) && fx.reg_reads.contains(&rax));
        assert_eq!(fx.reg_writes, vec![rcx]);
        assert!(fx.mem_reads.is_empty() && fx.mem_writes.is_empty());
    }

    #[test]
    fn effects_of_store() {
        let mem = MemOperand::base_disp(Register::from_name("rdi").unwrap(), 24, Size::B64);
        let store = Instruction::new(Opcode::Mov, vec![Operand::Mem(mem), r("rdx")]).unwrap();
        let fx = store.effects();
        assert_eq!(fx.mem_writes.len(), 1);
        assert!(fx.mem_reads.is_empty());
        // Address register is read.
        assert!(fx.reg_reads.contains(&Register::from_name("rdi").unwrap()));
        assert!(store.writes_memory() && !store.reads_memory());
    }

    #[test]
    fn effects_of_lea_do_not_touch_memory() {
        let mem = MemOperand::base_disp(Register::from_name("rax").unwrap(), 1, Size::B64);
        let lea = Instruction::new(Opcode::Lea, vec![r("rdx"), Operand::Mem(mem)]).unwrap();
        let fx = lea.effects();
        assert!(fx.mem_reads.is_empty() && fx.mem_writes.is_empty());
        assert!(fx.reg_reads.contains(&Register::from_name("rax").unwrap()));
        assert_eq!(fx.reg_writes, vec![Register::from_name("rdx").unwrap()]);
        assert_eq!(lea.to_string(), "lea rdx, [rax + 1]");
    }

    #[test]
    fn div_has_implicit_rax_rdx() {
        let div = Instruction::new(Opcode::Div, vec![r("rcx")]).unwrap();
        let fx = div.effects();
        let rax = Register::from_name("rax").unwrap();
        let rdx = Register::from_name("rdx").unwrap();
        assert!(fx.reg_reads.contains(&rax) && fx.reg_writes.contains(&rax));
        assert!(fx.reg_reads.contains(&rdx) && fx.reg_writes.contains(&rdx));
    }

    #[test]
    fn push_pop_use_rsp() {
        let push = Instruction::new(Opcode::Push, vec![r("rbx")]).unwrap();
        let rsp = Register::from_name("rsp").unwrap();
        let fx = push.effects();
        assert!(fx.reg_reads.contains(&rsp) && fx.reg_writes.contains(&rsp));
        assert!(push.writes_memory());
        let pop = Instruction::new(Opcode::Pop, vec![r("rbx")]).unwrap();
        assert!(pop.reads_memory());
    }

    #[test]
    fn empty_block_rejected() {
        assert_eq!(BasicBlock::new(vec![]).unwrap_err(), IsaError::EmptyBlock);
    }

    #[test]
    fn block_display_is_one_instruction_per_line() {
        let block = BasicBlock::new(vec![
            Instruction::new(Opcode::Add, vec![r("rcx"), r("rax")]).unwrap(),
            Instruction::new(Opcode::Mov, vec![r("rdx"), r("rcx")]).unwrap(),
        ])
        .unwrap();
        assert_eq!(block.to_string(), "add rcx, rax\nmov rdx, rcx");
        assert_eq!(block.len(), 2);
    }
}
