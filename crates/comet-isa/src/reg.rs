//! x86-64 register model with aliasing.
//!
//! Registers are modelled structurally as a (class, index, size) triple
//! rather than a flat enum: COMET's perturbation algorithm needs to
//! enumerate "all registers of the same type and size" cheaply, and the
//! dependency analysis needs to know when two differently-sized names
//! refer to overlapping architectural state (e.g. `eax` aliases `rax`).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Architectural register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// General-purpose integer registers (`rax` family, `r8`..`r15`).
    Gpr,
    /// SIMD vector registers (`xmm0`..`xmm15`, `ymm0`..`ymm15`).
    Vec,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Gpr => write!(f, "gpr"),
            RegClass::Vec => write!(f, "vec"),
        }
    }
}

/// Operand width in bits.
///
/// The paper restricts operand sizes to powers of two between 8 and 512
/// bits; our ISA subset tops out at 256 (AVX `ymm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are self-describing bit widths
pub enum Size {
    B8,
    B16,
    B32,
    B64,
    B128,
    B256,
}

impl Size {
    /// Width in bits.
    pub fn bits(self) -> u16 {
        match self {
            Size::B8 => 8,
            Size::B16 => 16,
            Size::B32 => 32,
            Size::B64 => 64,
            Size::B128 => 128,
            Size::B256 => 256,
        }
    }

    /// Width in bytes.
    pub fn bytes(self) -> u16 {
        self.bits() / 8
    }

    /// Parse a width in bits back into a [`Size`].
    pub fn from_bits(bits: u16) -> Option<Size> {
        Some(match bits {
            8 => Size::B8,
            16 => Size::B16,
            32 => Size::B32,
            64 => Size::B64,
            128 => Size::B128,
            256 => Size::B256,
            _ => return None,
        })
    }

    /// All sizes valid for general-purpose registers.
    pub const GPR_SIZES: [Size; 4] = [Size::B8, Size::B16, Size::B32, Size::B64];

    /// All sizes valid for vector registers.
    pub const VEC_SIZES: [Size; 2] = [Size::B128, Size::B256];
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A concrete architectural register name, e.g. `rcx` or `xmm3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Register {
    class: RegClass,
    index: u8,
    size: Size,
}

/// Number of architectural registers per class in our subset.
pub const NUM_GPR: u8 = 16;
/// Number of vector registers in our subset.
pub const NUM_VEC: u8 = 16;

/// GPR index of the stack pointer (`rsp`), which is implicitly used by
/// `push`/`pop` and excluded from random renaming.
pub const RSP_INDEX: u8 = 4;

const GPR64: [&str; 16] = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13",
    "r14", "r15",
];
const GPR32: [&str; 16] = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d", "r12d",
    "r13d", "r14d", "r15d",
];
const GPR16: [&str; 16] = [
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w", "r12w", "r13w",
    "r14w", "r15w",
];
const GPR8: [&str; 16] = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b", "r12b",
    "r13b", "r14b", "r15b",
];

impl Register {
    /// Create a register from its components.
    ///
    /// # Panics
    ///
    /// Panics if the (class, size) combination or index is invalid; use
    /// [`Register::try_new`] for a fallible variant.
    pub fn new(class: RegClass, index: u8, size: Size) -> Register {
        Register::try_new(class, index, size).expect("invalid register description")
    }

    /// Fallible constructor validating the class/index/size combination.
    pub fn try_new(class: RegClass, index: u8, size: Size) -> Option<Register> {
        let ok = match class {
            RegClass::Gpr => index < NUM_GPR && Size::GPR_SIZES.contains(&size),
            RegClass::Vec => index < NUM_VEC && Size::VEC_SIZES.contains(&size),
        };
        ok.then_some(Register { class, index, size })
    }

    /// 64-bit GPR with the given hardware index.
    pub fn gpr64(index: u8) -> Register {
        Register::new(RegClass::Gpr, index, Size::B64)
    }

    /// 128-bit vector register with the given index.
    pub fn xmm(index: u8) -> Register {
        Register::new(RegClass::Vec, index, Size::B128)
    }

    /// 256-bit vector register with the given index.
    pub fn ymm(index: u8) -> Register {
        Register::new(RegClass::Vec, index, Size::B256)
    }

    /// Register class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// Hardware index within the class (0..16).
    pub fn index(self) -> u8 {
        self.index
    }

    /// Operand size of this register name.
    pub fn size(self) -> Size {
        self.size
    }

    /// The widest register aliasing this one (`eax` → `rax`, `xmm3` → `ymm3`).
    ///
    /// Two registers refer to overlapping architectural state exactly when
    /// their full registers are equal; this is the unit of dependency
    /// analysis.
    pub fn full(self) -> Register {
        let size = match self.class {
            RegClass::Gpr => Size::B64,
            RegClass::Vec => Size::B256,
        };
        Register { size, ..self }
    }

    /// Whether two register names alias (overlap architecturally).
    pub fn aliases(self, other: Register) -> bool {
        self.full() == other.full()
    }

    /// The same architectural register viewed at a different width.
    pub fn with_size(self, size: Size) -> Option<Register> {
        Register::try_new(self.class, self.index, size)
    }

    /// Whether this is the stack pointer (any width of `rsp`).
    pub fn is_stack_pointer(self) -> bool {
        self.class == RegClass::Gpr && self.index == RSP_INDEX
    }

    /// The canonical Intel-syntax name of this register.
    pub fn name(self) -> &'static str {
        match (self.class, self.size) {
            (RegClass::Gpr, Size::B64) => GPR64[self.index as usize],
            (RegClass::Gpr, Size::B32) => GPR32[self.index as usize],
            (RegClass::Gpr, Size::B16) => GPR16[self.index as usize],
            (RegClass::Gpr, Size::B8) => GPR8[self.index as usize],
            (RegClass::Vec, Size::B128) => XMM[self.index as usize],
            (RegClass::Vec, Size::B256) => YMM[self.index as usize],
            _ => unreachable!("invalid register"),
        }
    }

    /// Parse an Intel-syntax register name.
    pub fn from_name(name: &str) -> Option<Register> {
        let tables: [(&[&str; 16], RegClass, Size); 6] = [
            (&GPR64, RegClass::Gpr, Size::B64),
            (&GPR32, RegClass::Gpr, Size::B32),
            (&GPR16, RegClass::Gpr, Size::B16),
            (&GPR8, RegClass::Gpr, Size::B8),
            (&XMM, RegClass::Vec, Size::B128),
            (&YMM, RegClass::Vec, Size::B256),
        ];
        for (table, class, size) in tables {
            if let Some(index) = table.iter().position(|n| *n == name) {
                return Some(Register::new(class, index as u8, size));
            }
        }
        None
    }

    /// Iterate over every register of the given class and size.
    pub fn all(class: RegClass, size: Size) -> impl Iterator<Item = Register> {
        let count = match class {
            RegClass::Gpr => NUM_GPR,
            RegClass::Vec => NUM_VEC,
        };
        (0..count).filter_map(move |index| Register::try_new(class, index, size))
    }
}

const XMM: [&str; 16] = [
    "xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5", "xmm6", "xmm7", "xmm8", "xmm9", "xmm10",
    "xmm11", "xmm12", "xmm13", "xmm14", "xmm15",
];
const YMM: [&str; 16] = [
    "ymm0", "ymm1", "ymm2", "ymm3", "ymm4", "ymm5", "ymm6", "ymm7", "ymm8", "ymm9", "ymm10",
    "ymm11", "ymm12", "ymm13", "ymm14", "ymm15",
];

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_name() {
        for class in [RegClass::Gpr, RegClass::Vec] {
            let sizes: &[Size] = match class {
                RegClass::Gpr => &Size::GPR_SIZES,
                RegClass::Vec => &Size::VEC_SIZES,
            };
            for &size in sizes {
                for reg in Register::all(class, size) {
                    assert_eq!(Register::from_name(reg.name()), Some(reg));
                }
            }
        }
    }

    #[test]
    fn aliasing_follows_full_register() {
        let rax = Register::from_name("rax").unwrap();
        let eax = Register::from_name("eax").unwrap();
        let al = Register::from_name("al").unwrap();
        let rcx = Register::from_name("rcx").unwrap();
        assert!(rax.aliases(eax));
        assert!(eax.aliases(al));
        assert!(!rax.aliases(rcx));

        let xmm0 = Register::from_name("xmm0").unwrap();
        let ymm0 = Register::from_name("ymm0").unwrap();
        assert!(xmm0.aliases(ymm0));
    }

    #[test]
    fn invalid_combinations_rejected() {
        assert!(Register::try_new(RegClass::Gpr, 0, Size::B128).is_none());
        assert!(Register::try_new(RegClass::Vec, 0, Size::B32).is_none());
        assert!(Register::try_new(RegClass::Gpr, 16, Size::B64).is_none());
    }

    #[test]
    fn stack_pointer_detected_at_all_widths() {
        for name in ["rsp", "esp", "sp", "spl"] {
            assert!(Register::from_name(name).unwrap().is_stack_pointer());
        }
        assert!(!Register::from_name("rbp").unwrap().is_stack_pointer());
    }

    #[test]
    fn with_size_changes_view() {
        let rdx = Register::from_name("rdx").unwrap();
        assert_eq!(rdx.with_size(Size::B32).unwrap().name(), "edx");
        assert_eq!(rdx.with_size(Size::B128), None);
    }

    #[test]
    fn all_enumerates_full_class() {
        assert_eq!(Register::all(RegClass::Gpr, Size::B64).count(), 16);
        assert_eq!(Register::all(RegClass::Vec, Size::B128).count(), 16);
    }
}
