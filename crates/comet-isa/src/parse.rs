//! Intel-syntax assembly parser for basic blocks.
//!
//! Accepts the syntax used throughout the paper's listings, e.g.
//!
//! ```text
//! lea rdx, [rax + 1]
//! mov qword ptr [rdi + 24], rdx
//! mov byte ptr [rax], 80
//! ```
//!
//! One instruction per line; `;` and `#` begin comments.

use crate::error::IsaError;
use crate::inst::{BasicBlock, Instruction};
use crate::operand::{MemOperand, Operand};
use crate::reg::{Register, Size};
use crate::Opcode;

/// Parse a multi-line Intel-syntax listing into a validated basic block.
///
/// # Errors
///
/// Returns a [`IsaError::Parse`] describing the first offending line, an
/// [`IsaError::UnknownOpcode`]/[`IsaError::InvalidOperands`] for
/// semantic problems, or [`IsaError::EmptyBlock`] if no instructions
/// remain after stripping comments and blank lines.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), comet_isa::IsaError> {
/// let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx")?;
/// assert_eq!(block.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_block(text: &str) -> Result<BasicBlock, IsaError> {
    let mut insts = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        insts.push(parse_instruction_inner(line, lineno + 1)?);
    }
    BasicBlock::new(insts)
}

/// Parse a single instruction.
///
/// # Errors
///
/// Same failure modes as [`parse_block`], reported as line 1.
pub fn parse_instruction(line: &str) -> Result<Instruction, IsaError> {
    let stripped = strip_comment(line).trim();
    parse_instruction_inner(stripped, 1)
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IsaError {
    IsaError::Parse { line, message: message.into() }
}

fn parse_instruction_inner(line: &str, lineno: usize) -> Result<Instruction, IsaError> {
    // Tolerate a leading numeric label as found in the paper's listings
    // ("1 add rcx, rax").
    let line = line
        .split_once(char::is_whitespace)
        .filter(|(head, _)| head.chars().all(|c| c.is_ascii_digit()) && !head.is_empty())
        .map_or(line, |(_, rest)| rest.trim());

    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, rest)) => (m, rest.trim()),
        None => (line, ""),
    };
    let mnemonic_lc = mnemonic.to_ascii_lowercase();
    let opcode = Opcode::from_name(&mnemonic_lc)
        .ok_or_else(|| IsaError::UnknownOpcode(mnemonic_lc.clone()))?;

    let mut operands = Vec::new();
    if !rest.is_empty() {
        for part in rest.split(',') {
            operands.push(parse_operand(part.trim(), lineno)?);
        }
    }
    resolve_memory_sizes(opcode, &mut operands);
    Instruction::new(opcode, operands)
}

/// Memory operands written without a size keyword (`lea rax, [rbx]`)
/// inherit the width of the first sized register operand, defaulting to
/// 64 bits.
fn resolve_memory_sizes(opcode: Opcode, operands: &mut [Operand]) {
    let inferred = operands.iter().find_map(|op| op.as_reg()).map_or(Size::B64, |reg| reg.size());
    let _ = opcode;
    for op in operands.iter_mut() {
        if let Operand::Mem(mem) = op {
            if mem.size == UNSIZED_SENTINEL {
                mem.size = inferred;
            }
        }
    }
}

/// Placeholder width for `[expr]` with no size keyword, fixed up by
/// [`resolve_memory_sizes`]. `B256` never appears bare in our syntax.
const UNSIZED_SENTINEL: Size = Size::B256;

fn parse_operand(text: &str, lineno: usize) -> Result<Operand, IsaError> {
    if text.is_empty() {
        return Err(parse_err(lineno, "empty operand"));
    }
    if let Some(reg) = Register::from_name(&text.to_ascii_lowercase()) {
        return Ok(Operand::Reg(reg));
    }
    if text.starts_with('[') {
        return parse_mem(text, None, lineno).map(Operand::Mem);
    }
    let lower = text.to_ascii_lowercase();
    for (kw, size) in [
        ("byte", Size::B8),
        ("word", Size::B16),
        ("dword", Size::B32),
        ("qword", Size::B64),
        ("xmmword", Size::B128),
        ("ymmword", Size::B256),
    ] {
        if let Some(rest) = lower.strip_prefix(kw) {
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix("ptr")
                .ok_or_else(|| parse_err(lineno, format!("expected `ptr` after `{kw}`")))?
                .trim_start();
            return parse_mem(rest, Some(size), lineno).map(Operand::Mem);
        }
    }
    parse_imm(text, lineno).map(Operand::imm)
}

fn parse_imm(text: &str, lineno: usize) -> Result<i64, IsaError> {
    let (negative, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest.trim_start()),
        None => (false, text),
    };
    let value =
        if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16)
        } else {
            digits.parse::<i64>()
        }
        .map_err(|_| parse_err(lineno, format!("invalid operand `{text}`")))?;
    Ok(if negative { -value } else { value })
}

fn parse_mem(text: &str, size: Option<Size>, lineno: usize) -> Result<MemOperand, IsaError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| parse_err(lineno, format!("malformed memory operand `{text}`")))?
        .trim();
    let mut mem = MemOperand {
        base: None,
        index: None,
        scale: 1,
        disp: 0,
        size: size.unwrap_or(UNSIZED_SENTINEL),
    };

    for (sign, term) in split_signed_terms(inner) {
        let term = term.trim();
        if term.is_empty() {
            return Err(parse_err(lineno, "empty address term"));
        }
        // reg*scale or scale*reg
        if let Some((lhs, rhs)) = term.split_once('*') {
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            let (reg_text, scale_text) = if Register::from_name(&lhs.to_ascii_lowercase()).is_some()
            {
                (lhs, rhs)
            } else {
                (rhs, lhs)
            };
            let reg = Register::from_name(&reg_text.to_ascii_lowercase())
                .ok_or_else(|| parse_err(lineno, format!("bad scaled register `{term}`")))?;
            let scale: u8 =
                scale_text.parse().map_err(|_| parse_err(lineno, format!("bad scale `{term}`")))?;
            if !matches!(scale, 1 | 2 | 4 | 8) || sign < 0 {
                return Err(parse_err(lineno, format!("bad scale `{term}`")));
            }
            if mem.index.is_some() {
                return Err(parse_err(lineno, "two index registers"));
            }
            mem.index = Some(reg);
            mem.scale = scale;
        } else if let Some(reg) = Register::from_name(&term.to_ascii_lowercase()) {
            if sign < 0 {
                return Err(parse_err(lineno, "negated register in address"));
            }
            if mem.base.is_none() {
                mem.base = Some(reg);
            } else if mem.index.is_none() {
                mem.index = Some(reg);
                mem.scale = 1;
            } else {
                return Err(parse_err(lineno, "too many address registers"));
            }
        } else {
            let value = parse_imm(term, lineno)?;
            mem.disp += i64::from(sign) * value;
        }
    }
    Ok(mem)
}

/// Split `a + b - c` into signed terms at the top level.
fn split_signed_terms(text: &str) -> Vec<(i8, &str)> {
    let mut terms = Vec::new();
    let mut sign: i8 = 1;
    let mut start = 0;
    for (i, ch) in text.char_indices() {
        if ch == '+' || ch == '-' {
            let piece = &text[start..i];
            if !piece.trim().is_empty() {
                terms.push((sign, piece));
            }
            sign = if ch == '+' { 1 } else { -1 };
            start = i + 1;
        }
    }
    let tail = &text[start..];
    if !tail.trim().is_empty() {
        terms.push((sign, tail));
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_motivating_example() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block.get(0).unwrap().opcode, Opcode::Add);
        assert_eq!(block.get(2).unwrap().opcode, Opcode::Pop);
    }

    #[test]
    fn parses_case_study_one() {
        let text = "lea rdx, [rax + 1]\n\
                    mov qword ptr [rdi + 24], rdx\n\
                    mov byte ptr [rax], 80\n\
                    mov rsi, qword ptr [r14 + 32]\n\
                    mov rdi, rbp";
        let block = parse_block(text).unwrap();
        assert_eq!(block.len(), 5);
        let store = block.get(1).unwrap();
        assert!(store.writes_memory());
        let mem = store.mem_operand().unwrap();
        assert_eq!(mem.disp, 24);
        assert_eq!(mem.size, Size::B64);
        assert_eq!(block.get(2).unwrap().operands[1], Operand::imm(80));
    }

    #[test]
    fn parses_case_study_two() {
        let text = "mov ecx, edx\n\
                    xor edx, edx\n\
                    lea rax, [rcx + rax - 1]\n\
                    div rcx\n\
                    mov rdx, rcx\n\
                    imul rax, rcx";
        let block = parse_block(text).unwrap();
        assert_eq!(block.len(), 6);
        let lea = block.get(2).unwrap();
        let mem = lea.mem_operand().unwrap();
        assert_eq!(mem.base, Register::from_name("rcx"));
        assert_eq!(mem.index, Register::from_name("rax"));
        assert_eq!(mem.disp, -1);
    }

    #[test]
    fn parses_vector_listing() {
        let text = "vdivss xmm0, xmm0, xmm6\n\
                    vmulss xmm7, xmm0, xmm0\n\
                    vxorps xmm0, xmm0, xmm5";
        let block = parse_block(text).unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block.get(0).unwrap().opcode, Opcode::Vdivss);
    }

    #[test]
    fn parses_scaled_index_and_hex() {
        let inst = parse_instruction("mov rax, qword ptr [rbp + rcx*8 + 0x10]").unwrap();
        let mem = inst.mem_operand().unwrap();
        assert_eq!(mem.scale, 8);
        assert_eq!(mem.disp, 16);
    }

    #[test]
    fn round_trips_through_display() {
        let texts = [
            "add rcx, rax",
            "mov qword ptr [rdi + 24], rdx",
            "lea rax, [rcx + rax - 1]",
            "vdivss xmm0, xmm0, xmm6",
            "shl eax, 3",
            "mov rbp, qword ptr [rsp + 8]",
        ];
        for text in texts {
            let inst = parse_instruction(text).unwrap();
            let printed = inst.to_string();
            let reparsed = parse_instruction(&printed).unwrap();
            assert_eq!(inst, reparsed, "{text} -> {printed}");
        }
    }

    #[test]
    fn comments_and_labels_tolerated() {
        let block =
            parse_block("1 add rcx, rax ; comment\n# full line comment\n2 pop rbx").unwrap();
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_block("jmp somewhere").is_err());
        assert!(parse_block("").is_err());
        assert!(parse_instruction("add rcx").is_err());
        assert!(parse_instruction("mov qword [rax], 1").is_err());
    }
}
