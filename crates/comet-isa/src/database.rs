//! Opcode replacement queries for COMET's perturbation algorithm.
//!
//! The paper perturbs a vertex (instruction) by replacing its opcode with
//! "another opcode in the ISA that can produce a valid assembly basic
//! block instruction with the operands of the original instruction".

use crate::inst::Instruction;
use crate::operand::OperandKind;
use crate::sig::signatures;
use crate::Opcode;

/// The address-only profile of the signature an instruction matched:
/// one flag per operand position, true where the position is an
/// address-only memory pattern (`lea`).
fn addr_profile(opcode: Opcode, kinds: &[OperandKind]) -> Option<Vec<bool>> {
    signatures(opcode)
        .iter()
        .find(|sig| sig.matches(kinds))
        .map(|sig| sig.pats.iter().map(|pat| pat.addr_only).collect())
}

/// All opcodes (other than `inst.opcode`) that accept `inst`'s operands,
/// i.e. the valid opcode replacements for a vertex perturbation.
///
/// An opcode qualifies iff one of its signatures matches the operand
/// kinds *and* treats memory operands with the same address-only profile:
/// a real memory access may not become an address computation or vice
/// versa. This reproduces the paper's Appendix D observation that `lea`
/// has no valid replacement.
///
/// Returns an empty vector for instructions that cannot be replaced.
pub fn opcode_replacements(inst: &Instruction) -> Vec<Opcode> {
    let kinds = inst.operand_kinds();
    let Some(profile) = addr_profile(inst.opcode, &kinds) else {
        return Vec::new();
    };
    Opcode::ALL
        .iter()
        .copied()
        .filter(|&candidate| candidate != inst.opcode)
        .filter(|&candidate| {
            addr_profile(candidate, &kinds).is_some_and(|cand_profile| cand_profile == profile)
        })
        .collect()
}

/// Number of distinct opcodes (including the original) that accept the
/// instruction's operands. Used for perturbation-space size estimation
/// (paper Appendix F).
pub fn replacement_universe_size(inst: &Instruction) -> usize {
    opcode_replacements(inst).len() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{MemOperand, Operand};
    use crate::reg::{Register, Size};

    fn r(name: &str) -> Operand {
        Operand::reg(Register::from_name(name).unwrap())
    }

    fn inst(op: Opcode, operands: Vec<Operand>) -> Instruction {
        Instruction::new(op, operands).unwrap()
    }

    #[test]
    fn alu_reg_reg_has_rich_replacements() {
        let add = inst(Opcode::Add, vec![r("rcx"), r("rax")]);
        let repl = opcode_replacements(&add);
        assert!(repl.contains(&Opcode::Sub));
        assert!(repl.contains(&Opcode::Mov));
        assert!(repl.contains(&Opcode::Xor));
        assert!(repl.contains(&Opcode::Cmovne));
        assert!(!repl.contains(&Opcode::Add));
        assert!(!repl.contains(&Opcode::Addss));
        assert!(repl.len() >= 15, "got {}", repl.len());
    }

    #[test]
    fn lea_has_no_replacements() {
        let mem = MemOperand::base_disp(Register::from_name("rax").unwrap(), 1, Size::B64);
        let lea = inst(Opcode::Lea, vec![r("rdx"), Operand::Mem(mem)]);
        assert!(opcode_replacements(&lea).is_empty());
    }

    #[test]
    fn load_is_not_replaceable_by_lea() {
        let mem = MemOperand::base_disp(Register::from_name("r14").unwrap(), 32, Size::B64);
        let load = inst(Opcode::Mov, vec![r("rsi"), Operand::Mem(mem)]);
        let repl = opcode_replacements(&load);
        assert!(!repl.contains(&Opcode::Lea));
        assert!(repl.contains(&Opcode::Add));
    }

    #[test]
    fn pop_replaceable_by_push() {
        // The paper's motivating example perturbs `pop rbx` into `push rbx`.
        let pop = inst(Opcode::Pop, vec![r("rbx")]);
        let repl = opcode_replacements(&pop);
        assert!(repl.contains(&Opcode::Push));
        assert!(repl.contains(&Opcode::Inc));
    }

    #[test]
    fn avx_scalar_replacements_stay_in_family() {
        let vdiv = inst(Opcode::Vdivss, vec![r("xmm0"), r("xmm0"), r("xmm6")]);
        let repl = opcode_replacements(&vdiv);
        assert!(repl.contains(&Opcode::Vmulss));
        assert!(repl.contains(&Opcode::Vaddss));
        assert!(!repl.contains(&Opcode::Addss));
        assert!(!repl.contains(&Opcode::Mov));
    }

    #[test]
    fn universe_counts_original() {
        let add = inst(Opcode::Add, vec![r("rcx"), r("rax")]);
        assert_eq!(replacement_universe_size(&add), opcode_replacements(&add).len() + 1);
    }
}
