//! # comet-isa
//!
//! An x86-64 instruction-set substrate for the COMET cost-model
//! explanation framework: registers (with aliasing), operands, a curated
//! opcode subset with operand signatures and access semantics, Intel
//! syntax parsing/printing, and per-microarchitecture timing tables for
//! Haswell and Skylake.
//!
//! The design centres on the two queries COMET's perturbation algorithm
//! needs:
//!
//! * *which opcodes can replace this one?* — [`opcode_replacements`]
//!   matches operand kinds against every opcode's signatures;
//! * *what does this instruction read and write?* —
//!   [`Instruction::effects`] reports register and memory effects
//!   including implicit operands, from which the dependency multigraph is
//!   built.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), comet_isa::IsaError> {
//! use comet_isa::{parse_block, opcode_replacements};
//!
//! let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx")?;
//! assert_eq!(block.len(), 3);
//!
//! // `add rcx, rax` can be replaced by any opcode accepting (r64, r64).
//! let replacements = opcode_replacements(&block.instructions()[0]);
//! assert!(replacements.contains(&comet_isa::Opcode::Sub));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod database;
mod error;
mod inst;
mod opcode;
pub mod operand;
pub mod parse;
pub mod reg;
pub mod sig;
pub mod tables;

pub use database::{opcode_replacements, replacement_universe_size};
pub use error::IsaError;
pub use inst::{implicit_operands, BasicBlock, Effects, Instruction};
pub use opcode::{OpCategory, Opcode};
pub use operand::{Immediate, MemOperand, Operand, OperandKind};
pub use parse::{parse_block, parse_instruction};
pub use reg::{RegClass, Register, Size};
pub use sig::{signatures, Access, Signature};
pub use tables::{
    instruction_latency, instruction_throughput, profile, InstProfile, Microarch, PortSet,
};
