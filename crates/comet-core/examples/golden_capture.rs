//! Prints the exact seeded explanation outputs pinned by
//! `tests/golden.rs`. Run it (`cargo run --release -p comet-core
//! --example golden_capture`) to re-capture the golden values after an
//! *intentional* algorithm change — and bump the evaluation journal
//! fingerprint when you do. Note the printed feature indices are
//! 1-based display form; the test encodes them 0-based.
use comet_core::{ExplainConfig, Explainer};
use comet_isa::{parse_block, Microarch};
use comet_models::CrudeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let blocks = [
        ("small", "add rcx, rax\nmov rdx, rcx\npop rbx"),
        ("case2", "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx"),
    ];
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    for (name, text) in blocks {
        let block = parse_block(text).unwrap();
        let explainer = Explainer::new(CrudeModel::new(Microarch::Haswell), config);
        for seed in [3u64, 7] {
            let e = explainer.explain(&block, &mut StdRng::seed_from_u64(seed)).unwrap();
            println!(
                "{name} seed={seed}: features={} precision={:?} coverage={:?} prediction={:?} anchored={} queries={}",
                e.display_features(), e.precision, e.coverage, e.prediction, e.anchored, e.queries
            );
        }
    }
}
