//! COMET's explanation search (paper §5.2): an Anchors-style beam
//! search over feature sets, with precision estimated by KL-LUCB
//! Bernoulli bounds and coverage estimated empirically over a shared
//! pool of unconstrained perturbations.
//!
//! The model is treated as an untrusted black box: every query goes
//! through [`CostModel::try_predict`], individual query failures are
//! tolerated (the sample is skipped, the fault counted, the budget
//! charged), and [`Explainer::explain`] returns a typed
//! [`ExplainError`] only when no explanation can be produced at all.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use comet_isa::BasicBlock;
use comet_models::{CostModel, ModelError};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bitset::FeatureMask;
use crate::feature::FeatureSet;
use crate::perturb::{PerturbConfig, Perturber};
use crate::precision::{exploration_beta, BernoulliEstimate};

/// Explanation-search configuration. Defaults follow the paper:
/// precision threshold 0.7 (δ = 0.3), ε = 0.5 cycles, Anchors' default
/// beam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplainConfig {
    /// Radius of the acceptable-cost ball T around M(β). The paper uses
    /// 0.25 for the crude model C and 0.5 cycles for Ithemal/uiCA.
    pub epsilon: f64,
    /// Precision threshold is `1 - delta` (paper: δ = 0.3).
    pub delta: f64,
    /// Beam width (Anchors default: 10).
    pub beam_width: usize,
    /// Initial samples per candidate feature set.
    pub init_samples: usize,
    /// Additional samples drawn per LUCB refinement round.
    pub batch_size: usize,
    /// Total sample budget per candidate.
    pub max_samples: usize,
    /// Samples from Π(∅) used for empirical coverage (paper: 10k).
    pub coverage_samples: usize,
    /// Failure probability for the KL confidence bounds.
    pub confidence: f64,
    /// LUCB stopping tolerance on the top-k boundary gap.
    pub tolerance: f64,
    /// Maximum explanation cardinality (simplicity cap).
    pub max_features: usize,
    /// Global cap on model queries per explanation; when exhausted the
    /// search returns its current best candidate. Bounds worst-case
    /// latency on models where few feature sets anchor. Failed queries
    /// are charged too, so a faulting model cannot stall the search.
    pub max_total_queries: u64,
    /// Perturbation-algorithm parameters.
    pub perturb: PerturbConfig,
}

impl Default for ExplainConfig {
    fn default() -> ExplainConfig {
        ExplainConfig {
            epsilon: 0.5,
            delta: 0.3,
            beam_width: 10,
            init_samples: 16,
            batch_size: 8,
            max_samples: 600,
            coverage_samples: 2_000,
            confidence: 0.05,
            tolerance: 0.15,
            max_features: 4,
            max_total_queries: 25_000,
            perturb: PerturbConfig::default(),
        }
    }
}

impl ExplainConfig {
    /// The paper's settings for the crude analytical model C
    /// (ε = 0.25, Appendix E).
    pub fn for_crude_model() -> ExplainConfig {
        ExplainConfig { epsilon: 0.25, ..ExplainConfig::default() }
    }

    /// The paper's settings for practical throughput models
    /// (ε = 0.5 cycles).
    pub fn for_throughput_model() -> ExplainConfig {
        ExplainConfig::default()
    }

    /// The precision threshold `1 - delta`.
    pub fn threshold(&self) -> f64 {
        1.0 - self.delta
    }
}

/// Why no explanation could be produced.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExplainError {
    /// The model failed on the original, unperturbed block, so there is
    /// no reference prediction to explain. (Failures on *perturbed*
    /// blocks are tolerated and surface as [`Explanation::faults`].)
    Model(ModelError),
    /// The block has no extractable features (e.g. an empty block).
    NoFeatures,
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::Model(e) => {
                write!(f, "cost model failed on the explained block: {e}")
            }
            ExplainError::NoFeatures => write!(f, "block has no extractable features"),
        }
    }
}

impl std::error::Error for ExplainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplainError::Model(e) => Some(e),
            ExplainError::NoFeatures => None,
        }
    }
}

impl From<ModelError> for ExplainError {
    fn from(e: ModelError) -> ExplainError {
        ExplainError::Model(e)
    }
}

/// A COMET explanation: the feature set, its estimated quality, and
/// bookkeeping about the search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    /// The explanation feature set F̂*.
    pub features: FeatureSet,
    /// Estimated precision (probabilistic faithfulness).
    pub precision: f64,
    /// Estimated coverage (probabilistic generalizability).
    pub coverage: f64,
    /// The model's prediction for the explained block.
    pub prediction: f64,
    /// Whether the precision threshold was actually reached (if false,
    /// this is the best-effort highest-precision candidate).
    pub anchored: bool,
    /// Number of cost-model queries spent (failed queries included).
    pub queries: u64,
    /// Queries that returned an error; the sampler skips them, so high
    /// fault counts mean the estimates rest on fewer samples.
    #[serde(default)]
    pub faults: u64,
    /// Model-layer retries spent during this explanation (reported by
    /// [`CostModel::resilience`]; zero for models that do not track
    /// them).
    #[serde(default)]
    pub retries: u64,
    /// True when the explanation was produced under degraded
    /// conditions: at least one query faulted, or the model reports
    /// itself degraded (e.g. a tripped circuit breaker serving
    /// fallback predictions).
    #[serde(default)]
    pub degraded: bool,
    /// Wall-clock seconds the search took. Diagnostic only: excluded
    /// from serialization (journals stay byte-stable across machines
    /// and resumes) and from equality (see the `PartialEq` impl).
    #[serde(skip)]
    pub duration_secs: f64,
}

/// Equality ignores [`Explanation::duration_secs`]: timing varies
/// between identical-seed runs, and the determinism contract ("same
/// seed, same explanation") is about search *content*, which is what
/// journal resume-identity checks compare.
impl PartialEq for Explanation {
    fn eq(&self, other: &Explanation) -> bool {
        self.features == other.features
            && self.precision == other.precision
            && self.coverage == other.coverage
            && self.prediction == other.prediction
            && self.anchored == other.anchored
            && self.queries == other.queries
            && self.faults == other.faults
            && self.retries == other.retries
            && self.degraded == other.degraded
    }
}

impl Explanation {
    /// The explanation rendered in the paper's notation.
    pub fn display_features(&self) -> String {
        crate::feature::format_feature_set(&self.features)
    }

    /// Model queries per wall-clock second, the search's throughput.
    /// Zero when no duration was recorded (e.g. deserialized records).
    pub fn queries_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.queries as f64 / self.duration_secs
        } else {
            0.0
        }
    }
}

/// The COMET explainer for a given cost model.
#[derive(Debug)]
pub struct Explainer<M> {
    model: M,
    config: ExplainConfig,
}

/// A beam-search candidate: a feature subset (as a bitmask over the
/// perturber's interned [`FeaturePool`](crate::FeaturePool)) plus its
/// running precision estimate. Masks make beam dedup integer hashing
/// and subset checks bitwise AND-compares.
struct Candidate {
    features: FeatureMask,
    est: BernoulliEstimate,
}

impl<M: CostModel> Explainer<M> {
    /// Create an explainer. The model is queried, never introspected.
    pub fn new(model: M, config: ExplainConfig) -> Explainer<M> {
        Explainer { model, config }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &ExplainConfig {
        &self.config
    }

    /// Explain the model's prediction for `block` (paper Figure 1).
    ///
    /// Model failures on perturbed samples are tolerated: the sample is
    /// skipped, counted in [`Explanation::faults`], and charged against
    /// [`ExplainConfig::max_total_queries`]. An error is returned only
    /// when the model fails on the original block itself
    /// ([`ExplainError::Model`]) or the block has no features
    /// ([`ExplainError::NoFeatures`]).
    pub fn explain<R: Rng>(
        &self,
        block: &BasicBlock,
        rng: &mut R,
    ) -> Result<Explanation, ExplainError> {
        let start = Instant::now();
        let perturber = Perturber::new(block, self.config.perturb);
        let pool = perturber.pool();
        let queries = Cell::new(0u64);
        let faults = Cell::new(0u64);
        let resilience_before = self.model.resilience().unwrap_or_default();

        queries.set(queries.get() + 1);
        let prediction = self.model.try_predict(block).map_err(ExplainError::Model)?;

        // Shared sampling scratch: one set of perturbation buffers
        // serves every model query this explanation makes. RefCell
        // because the sampling closure below is shared across the
        // search loops; borrows never overlap (sampling is strictly
        // sequential).
        let scratch = RefCell::new(perturber.make_scratch());
        let empty_mask = pool.empty_mask();

        // Shared coverage pool: surviving feature masks of
        // unconstrained perturbations (no model queries needed). A flat
        // `Vec` of bitmasks — coverage counting over it is a bitwise
        // AND-compare per entry instead of a `BTreeSet` subset walk.
        let coverage_pool: Vec<FeatureMask> = {
            let mut s = scratch.borrow_mut();
            (0..self.config.coverage_samples)
                .map(|_| {
                    perturber.perturb_into(&empty_mask, rng, &mut s);
                    s.surviving().clone()
                })
                .collect()
        };
        let coverage_of = |features: &FeatureMask| -> f64 {
            let hits = coverage_pool.iter().filter(|s| features.is_subset(s)).count();
            hits as f64 / coverage_pool.len().max(1) as f64
        };

        let n_features = pool.len();
        if n_features == 0 {
            return Err(ExplainError::NoFeatures);
        }

        // One precision sample: query the model on a perturbation. A
        // failed query is charged to the budget and counted as a fault
        // but contributes no evidence (skipping keeps the Bernoulli
        // estimate unbiased; the budget charge guarantees termination
        // even against a model that always fails). Once the budget is
        // exhausted the sampler is a no-op, so `queries` never exceeds
        // `max_total_queries`. The whole path is allocation-free: the
        // perturbed block is written into the shared scratch.
        let sample = |candidate: &mut Candidate, rng: &mut R| {
            if queries.get() >= self.config.max_total_queries {
                return;
            }
            let mut s = scratch.borrow_mut();
            perturber.perturb_into(&candidate.features, rng, &mut s);
            queries.set(queries.get() + 1);
            match self.model.try_predict(s.block()) {
                // Open ε-ball: with quantized cost models (the crude
                // model moves in exact quarter-cycle steps) an
                // inclusive bound would admit genuinely changed
                // predictions.
                Ok(cost) => candidate.est.update((cost - prediction).abs() < self.config.epsilon),
                Err(_) => faults.set(faults.get() + 1),
            }
        };

        let threshold = self.config.threshold();
        let mut beam: Vec<Candidate> = Vec::new();
        let mut best_overall: Option<(FeatureMask, f64)> = None;
        // Outcome of the beam search: (features, precision, anchored).
        let mut outcome: Option<(FeatureMask, f64, bool)> = None;
        let budget_left = |queries: &Cell<u64>| queries.get() < self.config.max_total_queries;

        'levels: for level in 1..=self.config.max_features {
            // Build this level's candidates. Dedup hashes fixed-width
            // masks (two words inline), not heap sets.
            let mut seen: HashSet<FeatureMask> = HashSet::new();
            let mut candidates: Vec<Candidate> = Vec::new();
            if level == 1 {
                for f in 0..n_features {
                    let mut set = empty_mask.clone();
                    set.insert(f);
                    if seen.insert(set.clone()) {
                        candidates.push(Candidate { features: set, est: Default::default() });
                    }
                }
            } else {
                for parent in &beam {
                    for f in 0..n_features {
                        if parent.features.contains(f) {
                            continue;
                        }
                        let mut set = parent.features.clone();
                        set.insert(f);
                        if seen.insert(set.clone()) {
                            candidates.push(Candidate { features: set, est: Default::default() });
                        }
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }

            // Initial sampling.
            for candidate in &mut candidates {
                for _ in 0..self.config.init_samples {
                    sample(candidate, rng);
                }
            }
            if !budget_left(&queries) {
                for candidate in &candidates {
                    let mean = candidate.est.mean();
                    if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                        best_overall = Some((candidate.features.clone(), mean));
                    }
                }
                break 'levels;
            }

            // LUCB refinement of the top-k boundary.
            let k = self.config.beam_width.min(candidates.len());
            let mut round: u64 = 1;
            loop {
                let beta = exploration_beta(round, candidates.len(), self.config.confidence);
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.sort_by(|&a, &b| {
                    candidates[b].est.mean().total_cmp(&candidates[a].est.mean())
                });
                let in_top = &order[..k];
                let out_top = &order[k..];
                let weakest_in = in_top
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        candidates[a].est.lcb(beta).total_cmp(&candidates[b].est.lcb(beta))
                    })
                    // Invariant: `k >= 1` because `candidates` is
                    // non-empty, so the top set is never empty.
                    .expect("non-empty top set");
                let strongest_out = out_top.iter().copied().max_by(|&a, &b| {
                    candidates[a].est.ucb(beta).total_cmp(&candidates[b].est.ucb(beta))
                });
                let gap = match strongest_out {
                    Some(v) => candidates[v].est.ucb(beta) - candidates[weakest_in].est.lcb(beta),
                    None => 0.0,
                };
                let budget_left_global = budget_left(&queries);
                let budget_left = candidates[weakest_in].est.samples
                    < self.config.max_samples as u64
                    || strongest_out.is_some_and(|v| {
                        candidates[v].est.samples < self.config.max_samples as u64
                    });
                if gap <= self.config.tolerance || !budget_left || !budget_left_global {
                    break;
                }
                for _ in 0..self.config.batch_size {
                    if candidates[weakest_in].est.samples < self.config.max_samples as u64 {
                        sample(&mut candidates[weakest_in], rng);
                    }
                    if let Some(v) = strongest_out {
                        if candidates[v].est.samples < self.config.max_samples as u64 {
                            sample(&mut candidates[v], rng);
                        }
                    }
                }
                round += 1;
            }

            // Track the best-precision candidate seen anywhere.
            for candidate in &candidates {
                let mean = candidate.est.mean();
                if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                    best_overall = Some((candidate.features.clone(), mean));
                }
            }

            // Confirmation pass: candidates whose point estimate clears
            // the threshold are sampled until their lower bound either
            // confirms the anchor or the estimate falls below the
            // threshold (Anchors' `lb > τ - tolerance` check needs
            // enough samples to be meaningful).
            for candidate in &mut candidates {
                loop {
                    let beta = exploration_beta(
                        round,
                        self.config.beam_width.max(1),
                        self.config.confidence,
                    );
                    if candidate.est.mean() < threshold
                        || candidate.est.lcb(beta) >= threshold - self.config.tolerance
                        || candidate.est.samples >= self.config.max_samples as u64
                        || !budget_left(&queries)
                    {
                        break;
                    }
                    for _ in 0..self.config.batch_size {
                        sample(candidate, rng);
                    }
                }
            }

            // Anchors at this level: precision estimate over threshold
            // with a confident lower bound (same exploration rate as the
            // confirmation pass).
            let beta =
                exploration_beta(round, self.config.beam_width.max(1), self.config.confidence);
            let anchors: Vec<&Candidate> = candidates
                .iter()
                .filter(|c| {
                    c.est.mean() >= threshold
                        && c.est.lcb(beta) >= threshold - self.config.tolerance
                })
                .collect();
            if !anchors.is_empty() {
                // Coverage is monotone decreasing in |F|, so the first
                // level with an anchor holds the max-coverage anchor.
                let best = anchors
                    .into_iter()
                    .map(|c| {
                        let cov = coverage_of(&c.features);
                        (c, cov)
                    })
                    .max_by(|(_, ca), (_, cb)| ca.total_cmp(cb))
                    // Invariant: guarded by `!anchors.is_empty()`.
                    .expect("non-empty anchors");
                // Greedy minimization: borderline singletons can miss
                // their own level by sampling noise, leaving a redundant
                // feature in the anchor. Try dropping each feature and
                // keep any subset that still confirms the threshold
                // (strictly improving coverage).
                let mut features = best.0.features.clone();
                let mut precision = best.0.est.mean();
                let mut improved = true;
                while improved && features.len() > 1 {
                    improved = false;
                    // Ascending-bit order is the features' `Ord` order,
                    // so the drop sequence (and hence RNG consumption)
                    // matches the former `BTreeSet` iteration exactly.
                    let snapshot = features.clone();
                    for feature in snapshot.iter() {
                        let mut subset = features.clone();
                        subset.remove(feature);
                        let mut candidate =
                            Candidate { features: subset.clone(), est: Default::default() };
                        let b = exploration_beta(
                            round,
                            self.config.beam_width.max(1),
                            self.config.confidence,
                        );
                        while candidate.est.samples < self.config.max_samples as u64
                            && budget_left(&queries)
                        {
                            sample(&mut candidate, rng);
                            if candidate.est.samples >= self.config.init_samples as u64
                                && candidate.est.ucb(b) < threshold
                            {
                                break;
                            }
                        }
                        let est = candidate.est;
                        if est.mean() >= threshold
                            && est.lcb(b) >= threshold - self.config.tolerance
                        {
                            features = subset;
                            precision = est.mean();
                            improved = true;
                            break;
                        }
                    }
                }
                outcome = Some((features, precision, true));
                break 'levels;
            }

            // No anchor yet: carry the beam to the next level.
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| candidates[b].est.mean().total_cmp(&candidates[a].est.mean()));
            order.truncate(self.config.beam_width);
            let mut next_beam = Vec::new();
            let mut taken: HashSet<usize> = order.iter().copied().collect();
            for (i, candidate) in candidates.into_iter().enumerate() {
                if taken.remove(&i) {
                    next_beam.push(candidate);
                }
            }
            beam = next_beam;
        }

        // Either an anchor was found, or we report the best effort.
        let (features, precision, anchored) = match outcome {
            Some(found) => found,
            // Invariant: level 1 always has candidates (`all_features`
            // is non-empty), and both exits of the level loop record
            // every level-1 candidate into `best_overall` first.
            None => {
                let (features, precision) =
                    best_overall.expect("at least one candidate was evaluated");
                (features, precision, false)
            }
        };
        let coverage = coverage_of(&features);
        let resilience_after = self.model.resilience().unwrap_or_default();
        let retries = resilience_after.retries.saturating_sub(resilience_before.retries);
        let degraded = faults.get() > 0 || resilience_after.degraded;
        Ok(Explanation {
            features: pool.set_of(&features),
            precision,
            coverage,
            prediction,
            anchored,
            queries: queries.get(),
            faults: faults.get(),
            retries,
            degraded,
            duration_secs: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;
    use comet_isa::parse_block;
    use comet_models::{FaultConfig, FaultyModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cost model that only looks at the block length.
    struct LengthModel;

    impl CostModel for LengthModel {
        fn name(&self) -> &str {
            "length"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            block.len() as f64 / 4.0
        }
    }

    /// A cost model that only cares whether a `div` is present.
    struct DivModel;

    impl CostModel for DivModel {
        fn name(&self) -> &str {
            "div"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            let has_div = block
                .iter()
                .any(|i| matches!(i.opcode, comet_isa::Opcode::Div | comet_isa::Opcode::Idiv));
            if has_div {
                25.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn explains_a_length_only_model_with_eta() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(0);
        let explanation = explainer.explain(&block, &mut rng).unwrap();
        assert!(explanation.anchored);
        assert_eq!(
            explanation.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::NumInstructions],
            "{}",
            explanation.display_features()
        );
        assert!(explanation.precision >= 0.7);
        assert!(explanation.coverage > 0.0);
        assert_eq!(explanation.faults, 0);
        assert!(!explanation.degraded);
    }

    #[test]
    fn explains_a_div_model_with_the_div_instruction() {
        let block =
            parse_block("mov ecx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nimul rax, rcx").unwrap();
        let explainer = Explainer::new(DivModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(1);
        let explanation = explainer.explain(&block, &mut rng).unwrap();
        assert!(explanation.anchored);
        assert_eq!(
            explanation.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::Instruction(2)],
            "{}",
            explanation.display_features()
        );
    }

    #[test]
    fn query_counter_tracks_usage() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(2);
        let explanation = explainer.explain(&block, &mut rng).unwrap();
        assert!(explanation.queries > 10);
    }

    #[test]
    fn explanation_is_reproducible_per_seed() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let a = explainer.explain(&block, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = explainer.explain(&block, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a.features, b.features);
        assert_eq!(a.precision, b.precision);
    }

    #[test]
    fn model_failure_on_the_original_block_is_typed() {
        struct AlwaysNan;
        impl CostModel for AlwaysNan {
            fn name(&self) -> &str {
                "always-nan"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                f64::NAN
            }
        }
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let explainer = Explainer::new(AlwaysNan, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(0);
        match explainer.explain(&block, &mut rng) {
            Err(ExplainError::Model(ModelError::NonFinite { .. })) => {}
            other => panic!("expected a NonFinite model error, got {other:?}"),
        }
    }

    #[test]
    fn faulting_samples_degrade_but_do_not_fail() {
        // The original block predicts fine (seeded schedule: first
        // query healthy with overwhelming probability is not assumed —
        // we retry seeds until the initial prediction succeeds).
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let config = ExplainConfig {
            coverage_samples: 100,
            max_samples: 60,
            max_total_queries: 1_500,
            ..ExplainConfig::for_crude_model()
        };
        let mut explained = false;
        for seed in 0..10u64 {
            let faulty = FaultyModel::new(
                LengthModel,
                FaultConfig { nan_rate: 0.1, transient_rate: 0.1, seed, ..Default::default() },
            );
            let explainer = Explainer::new(faulty, config);
            let mut rng = StdRng::seed_from_u64(seed);
            match explainer.explain(&block, &mut rng) {
                Ok(e) => {
                    assert!(e.queries <= config.max_total_queries);
                    if e.faults > 0 {
                        assert!(e.degraded);
                        explained = true;
                    }
                }
                Err(ExplainError::Model(_)) => {} // initial query faulted
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(explained, "no seed produced a degraded-but-successful explanation");
    }

    #[test]
    fn budget_is_a_hard_cap_even_when_every_sample_faults() {
        struct HealthyOnceThenFail(Cell<bool>);
        impl CostModel for HealthyOnceThenFail {
            fn name(&self) -> &str {
                "healthy-once"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                if self.0.replace(true) {
                    f64::NAN
                } else {
                    1.0
                }
            }
        }
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let config = ExplainConfig {
            coverage_samples: 50,
            max_total_queries: 500,
            ..ExplainConfig::for_crude_model()
        };
        let explainer = Explainer::new(HealthyOnceThenFail(Cell::new(false)), config);
        let mut rng = StdRng::seed_from_u64(4);
        let e = explainer.explain(&block, &mut rng).unwrap();
        assert!(e.queries <= 500);
        assert_eq!(e.faults, e.queries - 1);
        assert!(e.degraded);
        assert!(!e.anchored);
    }
}
