//! COMET's explanation search (paper §5.2): an Anchors-style beam
//! search over feature sets, with precision estimated by KL-LUCB
//! Bernoulli bounds and coverage estimated empirically over a shared
//! pool of unconstrained perturbations.
//!
//! The model is treated as an untrusted black box: every query goes
//! through [`CostModel::try_predict`], individual query failures are
//! tolerated (the sample is skipped, the fault counted, the budget
//! charged), and [`Explainer::explain`] returns a typed
//! [`ExplainError`] only when no explanation can be produced at all.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use comet_isa::BasicBlock;
use comet_models::{CostModel, ModelError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::bitset::{splitmix64, FeatureMask};
use crate::feature::FeatureSet;
use crate::par::WorkerPool;
use crate::perturb::{PerturbConfig, PerturbScratch, Perturber};
use crate::precision::{exploration_beta, BernoulliEstimate};

/// Explanation-search configuration. Defaults follow the paper:
/// precision threshold 0.7 (δ = 0.3), ε = 0.5 cycles, Anchors' default
/// beam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplainConfig {
    /// Radius of the acceptable-cost ball T around M(β). The paper uses
    /// 0.25 for the crude model C and 0.5 cycles for Ithemal/uiCA.
    pub epsilon: f64,
    /// Precision threshold is `1 - delta` (paper: δ = 0.3).
    pub delta: f64,
    /// Beam width (Anchors default: 10).
    pub beam_width: usize,
    /// Initial samples per candidate feature set.
    pub init_samples: usize,
    /// Additional samples drawn per LUCB refinement round.
    pub batch_size: usize,
    /// Total sample budget per candidate.
    pub max_samples: usize,
    /// Samples from Π(∅) used for empirical coverage (paper: 10k).
    pub coverage_samples: usize,
    /// Failure probability for the KL confidence bounds.
    pub confidence: f64,
    /// LUCB stopping tolerance on the top-k boundary gap.
    pub tolerance: f64,
    /// Maximum explanation cardinality (simplicity cap).
    pub max_features: usize,
    /// Global cap on model queries per explanation; when exhausted the
    /// search returns its current best candidate. Bounds worst-case
    /// latency on models where few feature sets anchor. Failed queries
    /// are charged too, so a faulting model cannot stall the search.
    pub max_total_queries: u64,
    /// Perturbation-algorithm parameters.
    pub perturb: PerturbConfig,
}

impl Default for ExplainConfig {
    fn default() -> ExplainConfig {
        ExplainConfig {
            epsilon: 0.5,
            delta: 0.3,
            beam_width: 10,
            init_samples: 16,
            batch_size: 8,
            max_samples: 600,
            coverage_samples: 2_000,
            confidence: 0.05,
            tolerance: 0.15,
            max_features: 4,
            max_total_queries: 25_000,
            perturb: PerturbConfig::default(),
        }
    }
}

impl ExplainConfig {
    /// The paper's settings for the crude analytical model C
    /// (ε = 0.25, Appendix E).
    pub fn for_crude_model() -> ExplainConfig {
        ExplainConfig { epsilon: 0.25, ..ExplainConfig::default() }
    }

    /// The paper's settings for practical throughput models
    /// (ε = 0.5 cycles).
    pub fn for_throughput_model() -> ExplainConfig {
        ExplainConfig::default()
    }

    /// The precision threshold `1 - delta`.
    pub fn threshold(&self) -> f64 {
        1.0 - self.delta
    }

    /// A reduced-budget variant of this config for degraded serving:
    /// roughly an eighth of the model-query budget (fewer KL-LUCB
    /// draws per candidate, a smaller coverage pool, a narrower beam,
    /// and a lower cardinality cap). The statistical machinery is
    /// unchanged — only the budgets shrink — so the result is a
    /// legitimate, if less certain, anchors explanation.
    pub fn reduced_budget(&self) -> ExplainConfig {
        ExplainConfig {
            beam_width: self.beam_width.clamp(1, 4),
            init_samples: (self.init_samples / 2).max(4),
            max_samples: (self.max_samples / 4).max(16),
            coverage_samples: (self.coverage_samples / 4).max(100),
            max_features: self.max_features.clamp(1, 3),
            max_total_queries: (self.max_total_queries / 8).max(500),
            ..*self
        }
    }

    /// A minimal single-feature probe for the last rung of a
    /// degradation ladder: greedily scores individual features with a
    /// handful of draws and returns the best one. Hundreds of model
    /// queries instead of tens of thousands — cheap enough to run even
    /// under a nearly exhausted deadline.
    pub fn baseline_probe(&self) -> ExplainConfig {
        ExplainConfig {
            beam_width: 1,
            init_samples: 8,
            batch_size: 8,
            max_samples: 16,
            coverage_samples: 64,
            max_features: 1,
            max_total_queries: 256,
            ..*self
        }
    }
}

/// Why no explanation could be produced.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExplainError {
    /// The model failed on the original, unperturbed block, so there is
    /// no reference prediction to explain. (Failures on *perturbed*
    /// blocks are tolerated and surface as [`Explanation::faults`].)
    Model(ModelError),
    /// The block has no extractable features (e.g. an empty block).
    NoFeatures,
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::Model(e) => {
                write!(f, "cost model failed on the explained block: {e}")
            }
            ExplainError::NoFeatures => write!(f, "block has no extractable features"),
        }
    }
}

impl std::error::Error for ExplainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplainError::Model(e) => Some(e),
            ExplainError::NoFeatures => None,
        }
    }
}

impl From<ModelError> for ExplainError {
    fn from(e: ModelError) -> ExplainError {
        ExplainError::Model(e)
    }
}

/// A COMET explanation: the feature set, its estimated quality, and
/// bookkeeping about the search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    /// The explanation feature set F̂*.
    pub features: FeatureSet,
    /// Estimated precision (probabilistic faithfulness).
    pub precision: f64,
    /// Estimated coverage (probabilistic generalizability).
    pub coverage: f64,
    /// The model's prediction for the explained block.
    pub prediction: f64,
    /// Whether the precision threshold was actually reached (if false,
    /// this is the best-effort highest-precision candidate).
    pub anchored: bool,
    /// Number of cost-model queries spent (failed queries included).
    pub queries: u64,
    /// Queries that returned an error; the sampler skips them, so high
    /// fault counts mean the estimates rest on fewer samples.
    #[serde(default)]
    pub faults: u64,
    /// Model-layer retries spent during this explanation (reported by
    /// [`CostModel::resilience`]; zero for models that do not track
    /// them).
    #[serde(default)]
    pub retries: u64,
    /// True when the explanation was produced under degraded
    /// conditions: at least one query faulted, or the model reports
    /// itself degraded (e.g. a tripped circuit breaker serving
    /// fallback predictions).
    #[serde(default)]
    pub degraded: bool,
    /// Wall-clock seconds the search took. Diagnostic only: excluded
    /// from serialization (journals stay byte-stable across machines
    /// and resumes) and from equality (see the `PartialEq` impl).
    #[serde(skip)]
    pub duration_secs: f64,
}

/// Equality ignores [`Explanation::duration_secs`]: timing varies
/// between identical-seed runs, and the determinism contract ("same
/// seed, same explanation") is about search *content*, which is what
/// journal resume-identity checks compare.
impl PartialEq for Explanation {
    fn eq(&self, other: &Explanation) -> bool {
        self.features == other.features
            && self.precision == other.precision
            && self.coverage == other.coverage
            && self.prediction == other.prediction
            && self.anchored == other.anchored
            && self.queries == other.queries
            && self.faults == other.faults
            && self.retries == other.retries
            && self.degraded == other.degraded
    }
}

impl Explanation {
    /// The explanation rendered in the paper's notation.
    pub fn display_features(&self) -> String {
        crate::feature::format_feature_set(&self.features)
    }

    /// Model queries per wall-clock second, the search's throughput.
    /// Zero when no duration was recorded (e.g. deserialized records).
    pub fn queries_per_sec(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.queries as f64 / self.duration_secs
        } else {
            0.0
        }
    }

    /// Fraction of the explanation's features of each kind, in
    /// [`FeatureKind`](crate::feature::FeatureKind)`::ALL` order
    /// (`[inst, dep, eta]`). All zeros for an empty feature set.
    /// Corpus-level rollups (the Figure 3/4 feature-mix breakdowns and
    /// the precomputed store's importance lanes) aggregate these.
    pub fn kind_fractions(&self) -> [f64; 3] {
        let mut counts = [0u32; 3];
        for feature in &self.features {
            let slot = crate::feature::FeatureKind::ALL
                .iter()
                .position(|k| *k == feature.kind())
                .expect("FeatureKind::ALL covers every kind");
            counts[slot] += 1;
        }
        let total = self.features.len();
        if total == 0 {
            return [0.0; 3];
        }
        counts.map(|c| f64::from(c) / total as f64)
    }
}

/// The COMET explainer for a given cost model.
#[derive(Debug)]
pub struct Explainer<M> {
    model: M,
    config: ExplainConfig,
}

/// A beam-search candidate: a feature subset (as a bitmask over the
/// perturber's interned [`FeaturePool`](crate::FeaturePool)) plus its
/// running precision estimate. Masks make beam dedup integer hashing
/// and subset checks bitwise AND-compares.
struct Candidate {
    features: FeatureMask,
    est: BernoulliEstimate,
}

/// One KL-LUCB selection pass: rank candidates by point estimate, split
/// at `k`, and return (weakest lower bound in the top set, strongest
/// upper bound outside it, boundary gap).
///
/// Each candidate's bound is inverted exactly once per pass, into
/// `bounds` (ranks `< k` hold LCBs, the rest UCBs). The previous
/// formulation inverted bounds inside `min_by`/`max_by` comparators —
/// roughly twice per comparison — which made bound inversion, not
/// model queries, the dominant cost of the whole search. `order` and
/// `bounds` are caller-held scratch so steady-state rounds stay off the
/// heap. Selection and tie-breaking semantics are unchanged: candidates
/// are visited in the same ranked order with the same bound values.
fn lucb_select(
    candidates: &[Candidate],
    k: usize,
    beta: f64,
    order: &mut Vec<usize>,
    bounds: &mut Vec<f64>,
) -> (usize, Option<usize>, f64) {
    order.clear();
    order.extend(0..candidates.len());
    order.sort_by(|&a, &b| candidates[b].est.mean().total_cmp(&candidates[a].est.mean()));
    bounds.clear();
    bounds.extend(order.iter().enumerate().map(|(rank, &c)| {
        if rank < k {
            candidates[c].est.lcb(beta)
        } else {
            candidates[c].est.ucb(beta)
        }
    }));
    let (weakest_in, weakest_lcb) = order[..k]
        .iter()
        .zip(&bounds[..k])
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(&c, &lcb)| (c, lcb))
        // Invariant: `k >= 1` because `candidates` is non-empty, so the
        // top set is never empty.
        .expect("non-empty top set");
    let strongest_out = order[k..]
        .iter()
        .zip(&bounds[k..])
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(&c, &ucb)| (c, ucb));
    let gap = match strongest_out {
        Some((_, ucb)) => ucb - weakest_lcb,
        None => 0.0,
    };
    (weakest_in, strongest_out.map(|(c, _)| c), gap)
}

impl<M: CostModel> Explainer<M> {
    /// Create an explainer. The model is queried, never introspected.
    pub fn new(model: M, config: ExplainConfig) -> Explainer<M> {
        Explainer { model, config }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &ExplainConfig {
        &self.config
    }

    /// Explain the model's prediction for `block` (paper Figure 1).
    ///
    /// Model failures on perturbed samples are tolerated: the sample is
    /// skipped, counted in [`Explanation::faults`], and charged against
    /// [`ExplainConfig::max_total_queries`]. An error is returned only
    /// when the model fails on the original block itself
    /// ([`ExplainError::Model`]) or the block has no features
    /// ([`ExplainError::NoFeatures`]).
    pub fn explain<R: Rng>(
        &self,
        block: &BasicBlock,
        rng: &mut R,
    ) -> Result<Explanation, ExplainError> {
        let start = Instant::now();
        let perturber = Perturber::new(block, self.config.perturb);
        let pool = perturber.pool();
        let queries = Cell::new(0u64);
        let faults = Cell::new(0u64);
        let resilience_before = self.model.resilience().unwrap_or_default();

        queries.set(queries.get() + 1);
        let prediction = self.model.try_predict(block).map_err(ExplainError::Model)?;

        // Shared sampling scratch: one set of perturbation buffers
        // serves every model query this explanation makes. RefCell
        // because the sampling closure below is shared across the
        // search loops; borrows never overlap (sampling is strictly
        // sequential).
        let scratch = RefCell::new(perturber.make_scratch());
        let empty_mask = pool.empty_mask();

        // Shared coverage pool: surviving feature masks of
        // unconstrained perturbations (no model queries needed). A flat
        // `Vec` of bitmasks — coverage counting over it is a bitwise
        // AND-compare per entry instead of a `BTreeSet` subset walk.
        let coverage_pool: Vec<FeatureMask> = {
            let mut s = scratch.borrow_mut();
            (0..self.config.coverage_samples)
                .map(|_| {
                    perturber.perturb_into(&empty_mask, rng, &mut s);
                    s.surviving().clone()
                })
                .collect()
        };
        let coverage_of = |features: &FeatureMask| -> f64 {
            let hits = coverage_pool.iter().filter(|s| features.is_subset(s)).count();
            hits as f64 / coverage_pool.len().max(1) as f64
        };

        let n_features = pool.len();
        if n_features == 0 {
            return Err(ExplainError::NoFeatures);
        }

        // One precision sample: query the model on a perturbation. A
        // failed query is charged to the budget and counted as a fault
        // but contributes no evidence (skipping keeps the Bernoulli
        // estimate unbiased; the budget charge guarantees termination
        // even against a model that always fails). Once the budget is
        // exhausted the sampler is a no-op, so `queries` never exceeds
        // `max_total_queries`. The whole path is allocation-free: the
        // perturbed block is written into the shared scratch.
        let sample = |candidate: &mut Candidate, rng: &mut R| {
            if queries.get() >= self.config.max_total_queries {
                return;
            }
            let mut s = scratch.borrow_mut();
            perturber.perturb_into(&candidate.features, rng, &mut s);
            queries.set(queries.get() + 1);
            match self.model.try_predict(s.block()) {
                // Open ε-ball: with quantized cost models (the crude
                // model moves in exact quarter-cycle steps) an
                // inclusive bound would admit genuinely changed
                // predictions.
                Ok(cost) => candidate.est.update((cost - prediction).abs() < self.config.epsilon),
                Err(_) => faults.set(faults.get() + 1),
            }
        };

        let threshold = self.config.threshold();
        let mut beam: Vec<Candidate> = Vec::new();
        let mut best_overall: Option<(FeatureMask, f64)> = None;
        // Outcome of the beam search: (features, precision, anchored).
        let mut outcome: Option<(FeatureMask, f64, bool)> = None;
        let budget_left = |queries: &Cell<u64>| queries.get() < self.config.max_total_queries;
        // Scratch for `lucb_select`, reused across rounds and levels.
        let mut order_buf: Vec<usize> = Vec::new();
        let mut bounds_buf: Vec<f64> = Vec::new();

        'levels: for level in 1..=self.config.max_features {
            // Build this level's candidates. Dedup hashes fixed-width
            // masks (two words inline), not heap sets.
            let mut seen: HashSet<FeatureMask> = HashSet::new();
            let mut candidates: Vec<Candidate> = Vec::new();
            if level == 1 {
                for f in 0..n_features {
                    let mut set = empty_mask.clone();
                    set.insert(f);
                    if seen.insert(set.clone()) {
                        candidates.push(Candidate { features: set, est: Default::default() });
                    }
                }
            } else {
                for parent in &beam {
                    for f in 0..n_features {
                        if parent.features.contains(f) {
                            continue;
                        }
                        let mut set = parent.features.clone();
                        set.insert(f);
                        if seen.insert(set.clone()) {
                            candidates.push(Candidate { features: set, est: Default::default() });
                        }
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }

            // Initial sampling.
            for candidate in &mut candidates {
                for _ in 0..self.config.init_samples {
                    sample(candidate, rng);
                }
            }
            if !budget_left(&queries) {
                for candidate in &candidates {
                    let mean = candidate.est.mean();
                    if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                        best_overall = Some((candidate.features.clone(), mean));
                    }
                }
                break 'levels;
            }

            // LUCB refinement of the top-k boundary.
            let k = self.config.beam_width.min(candidates.len());
            let mut round: u64 = 1;
            loop {
                let beta = exploration_beta(round, candidates.len(), self.config.confidence);
                let (weakest_in, strongest_out, gap) =
                    lucb_select(&candidates, k, beta, &mut order_buf, &mut bounds_buf);
                let budget_left_global = budget_left(&queries);
                let budget_left = candidates[weakest_in].est.samples
                    < self.config.max_samples as u64
                    || strongest_out.is_some_and(|v| {
                        candidates[v].est.samples < self.config.max_samples as u64
                    });
                if gap <= self.config.tolerance || !budget_left || !budget_left_global {
                    break;
                }
                for _ in 0..self.config.batch_size {
                    if candidates[weakest_in].est.samples < self.config.max_samples as u64 {
                        sample(&mut candidates[weakest_in], rng);
                    }
                    if let Some(v) = strongest_out {
                        if candidates[v].est.samples < self.config.max_samples as u64 {
                            sample(&mut candidates[v], rng);
                        }
                    }
                }
                round += 1;
            }

            // Track the best-precision candidate seen anywhere.
            for candidate in &candidates {
                let mean = candidate.est.mean();
                if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                    best_overall = Some((candidate.features.clone(), mean));
                }
            }

            // Confirmation pass: candidates whose point estimate clears
            // the threshold are sampled until their lower bound either
            // confirms the anchor or the estimate falls below the
            // threshold (Anchors' `lb > τ - tolerance` check needs
            // enough samples to be meaningful).
            for candidate in &mut candidates {
                loop {
                    let beta = exploration_beta(
                        round,
                        self.config.beam_width.max(1),
                        self.config.confidence,
                    );
                    if candidate.est.mean() < threshold
                        || candidate.est.lcb(beta) >= threshold - self.config.tolerance
                        || candidate.est.samples >= self.config.max_samples as u64
                        || !budget_left(&queries)
                    {
                        break;
                    }
                    for _ in 0..self.config.batch_size {
                        sample(candidate, rng);
                    }
                }
            }

            // Anchors at this level: precision estimate over threshold
            // with a confident lower bound (same exploration rate as the
            // confirmation pass).
            let beta =
                exploration_beta(round, self.config.beam_width.max(1), self.config.confidence);
            let anchors: Vec<&Candidate> = candidates
                .iter()
                .filter(|c| {
                    c.est.mean() >= threshold
                        && c.est.lcb(beta) >= threshold - self.config.tolerance
                })
                .collect();
            if !anchors.is_empty() {
                // Coverage is monotone decreasing in |F|, so the first
                // level with an anchor holds the max-coverage anchor.
                let best = anchors
                    .into_iter()
                    .map(|c| {
                        let cov = coverage_of(&c.features);
                        (c, cov)
                    })
                    .max_by(|(_, ca), (_, cb)| ca.total_cmp(cb))
                    // Invariant: guarded by `!anchors.is_empty()`.
                    .expect("non-empty anchors");
                // Greedy minimization: borderline singletons can miss
                // their own level by sampling noise, leaving a redundant
                // feature in the anchor. Try dropping each feature and
                // keep any subset that still confirms the threshold
                // (strictly improving coverage).
                let mut features = best.0.features.clone();
                let mut precision = best.0.est.mean();
                let mut improved = true;
                while improved && features.len() > 1 {
                    improved = false;
                    // Ascending-bit order is the features' `Ord` order,
                    // so the drop sequence (and hence RNG consumption)
                    // matches the former `BTreeSet` iteration exactly.
                    let snapshot = features.clone();
                    for feature in snapshot.iter() {
                        let mut subset = features.clone();
                        subset.remove(feature);
                        let mut candidate =
                            Candidate { features: subset.clone(), est: Default::default() };
                        let b = exploration_beta(
                            round,
                            self.config.beam_width.max(1),
                            self.config.confidence,
                        );
                        while candidate.est.samples < self.config.max_samples as u64
                            && budget_left(&queries)
                        {
                            sample(&mut candidate, rng);
                            if candidate.est.samples >= self.config.init_samples as u64
                                && candidate.est.ucb(b) < threshold
                            {
                                break;
                            }
                        }
                        let est = candidate.est;
                        if est.mean() >= threshold
                            && est.lcb(b) >= threshold - self.config.tolerance
                        {
                            features = subset;
                            precision = est.mean();
                            improved = true;
                            break;
                        }
                    }
                }
                outcome = Some((features, precision, true));
                break 'levels;
            }

            // No anchor yet: carry the beam to the next level.
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| candidates[b].est.mean().total_cmp(&candidates[a].est.mean()));
            order.truncate(self.config.beam_width);
            let mut next_beam = Vec::new();
            let mut taken: HashSet<usize> = order.iter().copied().collect();
            for (i, candidate) in candidates.into_iter().enumerate() {
                if taken.remove(&i) {
                    next_beam.push(candidate);
                }
            }
            beam = next_beam;
        }

        // Either an anchor was found, or we report the best effort.
        let (features, precision, anchored) = match outcome {
            Some(found) => found,
            // Invariant: level 1 always has candidates (`all_features`
            // is non-empty), and both exits of the level loop record
            // every level-1 candidate into `best_overall` first.
            None => {
                let (features, precision) =
                    best_overall.expect("at least one candidate was evaluated");
                (features, precision, false)
            }
        };
        let coverage = coverage_of(&features);
        let resilience_after = self.model.resilience().unwrap_or_default();
        let retries = resilience_after.retries.saturating_sub(resilience_before.retries);
        let degraded = faults.get() > 0 || resilience_after.degraded;
        Ok(Explanation {
            features: pool.set_of(&features),
            precision,
            coverage,
            prediction,
            anchored,
            queries: queries.get(),
            faults: faults.get(),
            retries,
            degraded,
            duration_secs: start.elapsed().as_secs_f64(),
        })
    }
}

/// Execution resources for [`Explainer::explain_batched`]: a persistent
/// worker pool plus the target model-batch size, with cumulative
/// batching statistics.
///
/// Create one `BatchExec` per explaining thread (pool threads are the
/// expensive part) and reuse it across explanations; the counters
/// accumulate across every explanation run on it, so services can
/// export occupancy directly.
#[derive(Debug)]
pub struct BatchExec {
    pool: WorkerPool,
    batch: usize,
    batched_queries: AtomicU64,
    batch_chunks: AtomicU64,
    inline_queries: AtomicU64,
    /// EWMA nanoseconds per draw through the batched dispatch path
    /// (f64 bits; 0 = no observation yet).
    batched_ns: AtomicU64,
    /// EWMA nanoseconds per draw through the inline dispatch path.
    inline_ns: AtomicU64,
    /// Rounds dispatched since the adaptive choice became informed;
    /// drives periodic probing of the slower path.
    probe_counter: AtomicU64,
}

/// How often the adaptive dispatcher re-probes the currently-slower
/// path, in rounds, when the two paths are close (within 1.5×) and when
/// one is clearly dominant.
const PROBE_INTERVAL_CLOSE: u64 = 32;
const PROBE_INTERVAL_SKEWED: u64 = 256;

impl BatchExec {
    /// A batch executor issuing model batches of up to `batch` blocks
    /// across `workers` pool workers (both clamped to at least 1).
    /// `BatchExec::new(1, 1)` is the scalar reference configuration:
    /// single-item batches on the calling thread only.
    pub fn new(batch: usize, workers: usize) -> BatchExec {
        BatchExec {
            pool: WorkerPool::new(workers),
            batch: batch.max(1),
            batched_queries: AtomicU64::new(0),
            batch_chunks: AtomicU64::new(0),
            inline_queries: AtomicU64::new(0),
            batched_ns: AtomicU64::new(0),
            inline_ns: AtomicU64::new(0),
            probe_counter: AtomicU64::new(0),
        }
    }

    /// Maximum blocks per model batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Total pool workers, including the calling thread.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Model queries issued through `predict_batch` so far (cumulative
    /// across explanations).
    pub fn queries_batched(&self) -> u64 {
        self.batched_queries.load(Ordering::Relaxed)
    }

    /// `predict_batch` calls issued so far.
    pub fn chunks(&self) -> u64 {
        self.batch_chunks.load(Ordering::Relaxed)
    }

    /// Mean batch occupancy: queries per chunk over the configured
    /// batch size, in `(0, 1]`. Zero before any chunk has run.
    pub fn occupancy(&self) -> f64 {
        let chunks = self.chunks();
        if chunks == 0 {
            return 0.0;
        }
        self.queries_batched() as f64 / (chunks * self.batch as u64) as f64
    }

    /// Model queries issued through the *inline* dispatch path — the
    /// adaptive degradation that runs a round's draws one by one on the
    /// calling thread when measurement says batch staging doesn't pay
    /// (cumulative across explanations).
    pub fn queries_inline(&self) -> u64 {
        self.inline_queries.load(Ordering::Relaxed)
    }

    /// Adaptive mode choice for the next dispatch round: `true` to run
    /// it batched across the pool, `false` to run it inline.
    ///
    /// Until each path has been timed once the choice is forced — first
    /// batched, then inline — so both EWMAs get seeded; afterwards the
    /// faster per-draw EWMA wins, with the loser re-probed every
    /// [`PROBE_INTERVAL_CLOSE`] rounds (every [`PROBE_INTERVAL_SKEWED`]
    /// when the gap exceeds 1.5×, so a clearly-dominant choice is
    /// disturbed rarely). For a deterministic model the mode cannot
    /// change any outcome — both paths evaluate the same counter-seeded
    /// draws — so this timing feedback never breaks bitwise
    /// reproducibility.
    fn choose_batched(&self) -> bool {
        let batched = f64::from_bits(self.batched_ns.load(Ordering::Relaxed));
        if batched == 0.0 {
            return true;
        }
        let inline = f64::from_bits(self.inline_ns.load(Ordering::Relaxed));
        if inline == 0.0 {
            return false;
        }
        let batched_faster = batched <= inline;
        let ratio = if batched_faster { inline / batched } else { batched / inline };
        let interval = if ratio > 1.5 { PROBE_INTERVAL_SKEWED } else { PROBE_INTERVAL_CLOSE };
        let round = self.probe_counter.fetch_add(1, Ordering::Relaxed);
        if round % interval == interval - 1 {
            return !batched_faster;
        }
        batched_faster
    }

    /// Fold a round's measured per-draw cost into the chosen path's
    /// EWMA (weight 0.3 on the new observation).
    fn observe(&self, batched: bool, ns_per_draw: f64) {
        let cell = if batched { &self.batched_ns } else { &self.inline_ns };
        let old = f64::from_bits(cell.load(Ordering::Relaxed));
        let new = if old == 0.0 { ns_per_draw } else { old * 0.7 + ns_per_draw * 0.3 };
        cell.store(new.to_bits(), Ordering::Relaxed);
    }
}

/// Per-worker mutable state for the batched search: perturbation
/// scratch plus the block batch handed to `predict_batch`. Batch slots
/// are rebuilt in place ([`BasicBlock::rebuild_from`]) so the steady
/// state allocates nothing.
struct WorkerState {
    scratch: PerturbScratch,
    batch: Vec<BasicBlock>,
}

/// Outcome codes written by batch workers: one byte per planned draw.
const DRAW_OUT: u8 = 0;
const DRAW_IN: u8 = 1;
const DRAW_FAULT: u8 = 2;

/// Stream tag separating coverage-pool draws from candidate draws.
const COVERAGE_TAG: u64 = 0x636F_7665_7261_6765; // "coverage"

/// Coverage perturbations claimed per cursor grab (they make no model
/// queries, so chunking is purely an atomic-contention knob).
const COVERAGE_CHUNK: usize = 64;

/// One dispatch round of the batched search: draws planned — and their
/// query budget charged — *before* any worker runs, so the set of draws
/// is a pure function of the search state and never depends on batch
/// size, pool size, or thread scheduling.
#[derive(Default)]
struct Round {
    /// Distinct masks this round samples, indexed by the jobs below.
    masks: Vec<FeatureMask>,
    /// `(mask slot, per-draw RNG seed)`, in planning order.
    jobs: Vec<(usize, u64)>,
}

impl Round {
    /// Reset for reuse, keeping the allocations.
    fn clear(&mut self) {
        self.masks.clear();
        self.jobs.clear();
    }

    /// Plan up to `wanted` draws for `mask`, clipped by the remaining
    /// global query budget (each planned draw charges one query, fault
    /// or not — same accounting as the scalar path). Every draw gets a
    /// counter-derived RNG seed
    /// `splitmix64(splitmix64(seed ^ stable_hash(mask)) ^ index)` where
    /// `index` is the mask's lifetime draw counter — so the stream a
    /// draw uses depends only on *which draw for which mask* it is,
    /// never on which worker runs it or which batch it lands in.
    /// Returns the planned range within this round's jobs.
    fn plan(
        &mut self,
        mask: &FeatureMask,
        wanted: u64,
        seed: u64,
        drawn: &mut HashMap<FeatureMask, u64>,
        queries: &mut u64,
        budget: u64,
    ) -> Range<usize> {
        let n = wanted.min(budget.saturating_sub(*queries));
        *queries += n;
        let start = self.jobs.len();
        if n > 0 {
            let slot = self.masks.len();
            self.masks.push(mask.clone());
            let counter = drawn.entry(mask.clone()).or_insert(0);
            let stream = splitmix64(seed ^ mask.stable_hash());
            for j in 0..n {
                self.jobs.push((slot, splitmix64(stream ^ (*counter + j))));
            }
            *counter += n;
        }
        start..self.jobs.len()
    }
}

/// Fold a round's outcome slice into a candidate's Bernoulli estimate,
/// in draw-index order (the updates are commutative counts, but a fixed
/// order keeps the accounting auditable).
fn settle(
    est: &mut BernoulliEstimate,
    outcomes: &[AtomicU8],
    range: Range<usize>,
    faults: &mut u64,
) {
    for slot in &outcomes[range] {
        match slot.load(Ordering::Relaxed) {
            DRAW_IN => est.update(true),
            DRAW_OUT => est.update(false),
            _ => *faults += 1,
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<M: CostModel + Sync> Explainer<M> {
    /// Explain `block` through the batched, multi-worker search path.
    ///
    /// Same search as [`Explainer::explain`] — Anchors beam search with
    /// KL-LUCB bounds — but model queries are evaluated in batches of
    /// up to [`BatchExec::batch`] blocks via
    /// [`CostModel::predict_batch`], fanned across the executor's
    /// worker pool. The KL-LUCB budget decisions stay sequential at
    /// *round* granularity: every round's draws are planned (and
    /// charged) before dispatch, so statistical validity is unchanged —
    /// the bounds simply observe `batch_size` fresh samples at a time,
    /// exactly as the scalar path's inner sampling loops do.
    ///
    /// # Determinism
    ///
    /// For a deterministic model, the result is bitwise identical for a
    /// fixed `(block, seed, config)` across *every* batch size and pool
    /// size (including `BatchExec::new(1, 1)`): each draw's RNG stream
    /// is derived from a per-mask draw counter, not from a shared
    /// sequential RNG, so neither chunking nor worker scheduling can
    /// reorder randomness. (A *stateful* model — e.g. a seeded fault
    /// injector whose schedule advances per query — observes queries in
    /// nondeterministic order under `workers > 1`, and its faults land
    /// on different draws accordingly.)
    ///
    /// Note the draw streams intentionally differ from the scalar
    /// path's shared-RNG streams, so `explain` and `explain_batched`
    /// agree on the anchor but not bit-for-bit on the estimates; the
    /// reference for golden comparisons is `explain_batched` at
    /// `BatchExec::new(1, 1)`.
    pub fn explain_batched(
        &self,
        block: &BasicBlock,
        seed: u64,
        exec: &BatchExec,
    ) -> Result<Explanation, ExplainError> {
        let start = Instant::now();
        let perturber = Perturber::new(block, self.config.perturb);
        let pool = perturber.pool();
        let resilience_before = self.model.resilience().unwrap_or_default();
        let budget = self.config.max_total_queries;
        let mut queries: u64 = 1;
        let mut faults: u64 = 0;
        let prediction = self.model.try_predict(block).map_err(ExplainError::Model)?;

        let states: Vec<Mutex<WorkerState>> = (0..exec.pool.workers())
            .map(|_| {
                Mutex::new(WorkerState { scratch: perturber.make_scratch(), batch: Vec::new() })
            })
            .collect();
        let empty_mask = pool.empty_mask();

        // Shared coverage pool, built in parallel: entry `i` always
        // uses the stream seeded by `i`, so the pool's contents are
        // independent of worker scheduling.
        let coverage_pool: Vec<FeatureMask> = {
            let n = self.config.coverage_samples;
            let slots: Vec<Mutex<Option<FeatureMask>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            let stream = splitmix64(seed ^ COVERAGE_TAG);
            exec.pool.run(&|w| {
                let mut guard = lock(&states[w]);
                let st = &mut *guard;
                loop {
                    let first = cursor.fetch_add(COVERAGE_CHUNK, Ordering::Relaxed);
                    if first >= n {
                        break;
                    }
                    for (i, slot) in
                        slots.iter().enumerate().take((first + COVERAGE_CHUNK).min(n)).skip(first)
                    {
                        let mut rng = StdRng::seed_from_u64(splitmix64(stream ^ i as u64));
                        perturber.perturb_into(&empty_mask, &mut rng, &mut st.scratch);
                        *lock(slot) = Some(st.scratch.surviving().clone());
                    }
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    lock(&slot)
                        .take()
                        .expect("every coverage slot is filled before the pool returns")
                })
                .collect()
        };
        let coverage_of = |features: &FeatureMask| -> f64 {
            let hits = coverage_pool.iter().filter(|s| features.is_subset(s)).count();
            hits as f64 / coverage_pool.len().max(1) as f64
        };

        let n_features = pool.len();
        if n_features == 0 {
            return Err(ExplainError::NoFeatures);
        }

        // Dispatch one planned round through whichever path the
        // executor's adaptive controller picks:
        //
        // * *batched* — workers claim chunks of up to `exec.batch`
        //   draws from a shared cursor, perturb each draw with its own
        //   counter-derived RNG into a per-worker batch buffer (rebuilt
        //   in place — no steady-state allocation beyond the model's
        //   result vector), and issue ONE `predict_batch` per chunk;
        // * *inline* — the calling thread walks the round's draws one
        //   by one through `try_predict`, with no batch staging, chunk
        //   planning, or pool hand-off at all — the degraded mode for
        //   workloads where those constant costs outweigh any lane win.
        //
        // Outcomes land in a per-draw byte array; because each draw's
        // result depends only on its seed and mask, the filled array is
        // identical whatever the chunking — and whichever path ran it.
        let model = &self.model;
        let epsilon = self.config.epsilon;
        let dispatch = |round: &Round, outcomes: &mut Vec<AtomicU8>| {
            let jobs = &round.jobs;
            let masks = &round.masks;
            outcomes.clear();
            outcomes.resize_with(jobs.len(), || AtomicU8::new(DRAW_FAULT));
            if jobs.is_empty() {
                return;
            }
            let batched = exec.choose_batched();
            let round_start = Instant::now();
            if batched {
                let cursor = AtomicUsize::new(0);
                exec.pool.run(&|w| {
                    let mut guard = lock(&states[w]);
                    let st = &mut *guard;
                    loop {
                        let first = cursor.fetch_add(exec.batch, Ordering::Relaxed);
                        if first >= jobs.len() {
                            break;
                        }
                        let chunk = &jobs[first..(first + exec.batch).min(jobs.len())];
                        for (j, &(slot, draw_seed)) in chunk.iter().enumerate() {
                            let mut rng = StdRng::seed_from_u64(draw_seed);
                            perturber.perturb_into(&masks[slot], &mut rng, &mut st.scratch);
                            if st.batch.len() <= j {
                                st.batch.push(st.scratch.block().clone());
                            } else {
                                st.batch[j]
                                    .rebuild_from(st.scratch.block().iter())
                                    .expect("perturbed blocks are never empty");
                            }
                        }
                        let results = model.predict_batch(&st.batch[..chunk.len()]);
                        for (j, result) in results.into_iter().enumerate() {
                            let code = match result {
                                // Open ε-ball, as in the scalar path.
                                Ok(cost) => u8::from((cost - prediction).abs() < epsilon),
                                Err(_) => DRAW_FAULT,
                            };
                            outcomes[first + j].store(code, Ordering::Relaxed);
                        }
                        exec.batched_queries.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        exec.batch_chunks.fetch_add(1, Ordering::Relaxed);
                    }
                });
            } else {
                let mut guard = lock(&states[0]);
                let st = &mut *guard;
                for (i, &(slot, draw_seed)) in jobs.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(draw_seed);
                    perturber.perturb_into(&masks[slot], &mut rng, &mut st.scratch);
                    let code = match model.try_predict(st.scratch.block()) {
                        Ok(cost) => u8::from((cost - prediction).abs() < epsilon),
                        Err(_) => DRAW_FAULT,
                    };
                    outcomes[i].store(code, Ordering::Relaxed);
                }
                exec.inline_queries.fetch_add(jobs.len() as u64, Ordering::Relaxed);
            }
            let ns_per_draw = round_start.elapsed().as_nanos() as f64 / jobs.len() as f64;
            exec.observe(batched, ns_per_draw);
        };

        // Lifetime draw counters per mask: the backbone of the
        // determinism argument. A mask's draws are numbered 0, 1, 2, …
        // across the entire explanation, whichever phase requests them.
        let mut drawn: HashMap<FeatureMask, u64> = HashMap::new();
        // Round-dispatch buffers, reused across every round of the
        // whole search so the steady state plans and settles rounds
        // without touching the heap.
        let mut round = Round::default();
        let mut outcomes: Vec<AtomicU8> = Vec::new();
        let mut ranges: Vec<Range<usize>> = Vec::new();
        // Scratch for `lucb_select`, reused across rounds and levels.
        let mut order_buf: Vec<usize> = Vec::new();
        let mut bounds_buf: Vec<f64> = Vec::new();
        let threshold = self.config.threshold();
        let max_samples = self.config.max_samples as u64;
        let init_samples = self.config.init_samples as u64;
        // Draws per refinement round — a *config* parameter, never the
        // executor's batch size, or results would vary with `exec`.
        let round_draws = self.config.batch_size as u64;
        let mut beam: Vec<Candidate> = Vec::new();
        let mut best_overall: Option<(FeatureMask, f64)> = None;
        let mut outcome: Option<(FeatureMask, f64, bool)> = None;

        'levels: for level in 1..=self.config.max_features {
            // Candidate generation is identical to the scalar path.
            let mut seen: HashSet<FeatureMask> = HashSet::new();
            let mut candidates: Vec<Candidate> = Vec::new();
            if level == 1 {
                for f in 0..n_features {
                    let mut set = empty_mask.clone();
                    set.insert(f);
                    if seen.insert(set.clone()) {
                        candidates.push(Candidate { features: set, est: Default::default() });
                    }
                }
            } else {
                for parent in &beam {
                    for f in 0..n_features {
                        if parent.features.contains(f) {
                            continue;
                        }
                        let mut set = parent.features.clone();
                        set.insert(f);
                        if seen.insert(set.clone()) {
                            candidates.push(Candidate { features: set, est: Default::default() });
                        }
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }

            // Initial sampling: every candidate's first `init_samples`
            // draws fused into one big round — the widest batches of
            // the whole search.
            round.clear();
            ranges.clear();
            ranges.extend(candidates.iter().map(|c| {
                round.plan(&c.features, init_samples, seed, &mut drawn, &mut queries, budget)
            }));
            dispatch(&round, &mut outcomes);
            for (candidate, range) in candidates.iter_mut().zip(ranges.drain(..)) {
                settle(&mut candidate.est, &outcomes, range, &mut faults);
            }
            if queries >= budget {
                for candidate in &candidates {
                    let mean = candidate.est.mean();
                    if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                        best_overall = Some((candidate.features.clone(), mean));
                    }
                }
                break 'levels;
            }

            // KL-LUCB refinement: bound computation and the
            // stop/continue decision are sequential per round; only the
            // round's planned draws are evaluated in parallel.
            let k = self.config.beam_width.min(candidates.len());
            let mut lucb_round: u64 = 1;
            loop {
                let beta = exploration_beta(lucb_round, candidates.len(), self.config.confidence);
                let (weakest_in, strongest_out, gap) =
                    lucb_select(&candidates, k, beta, &mut order_buf, &mut bounds_buf);
                let samples_left = candidates[weakest_in].est.samples < max_samples
                    || strongest_out.is_some_and(|v| candidates[v].est.samples < max_samples);
                if gap <= self.config.tolerance || !samples_left || queries >= budget {
                    break;
                }
                round.clear();
                let mut pending: [Option<(usize, Range<usize>)>; 2] = [None, None];
                for (idx, slot) in
                    [Some(weakest_in), strongest_out].into_iter().flatten().zip(&mut pending)
                {
                    let have = candidates[idx].est.samples;
                    if have < max_samples {
                        let range = round.plan(
                            &candidates[idx].features,
                            round_draws.min(max_samples - have),
                            seed,
                            &mut drawn,
                            &mut queries,
                            budget,
                        );
                        *slot = Some((idx, range));
                    }
                }
                dispatch(&round, &mut outcomes);
                for (idx, range) in pending.into_iter().flatten() {
                    settle(&mut candidates[idx].est, &outcomes, range, &mut faults);
                }
                lucb_round += 1;
            }

            // Track the best-precision candidate seen anywhere.
            for candidate in &candidates {
                let mean = candidate.est.mean();
                if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                    best_overall = Some((candidate.features.clone(), mean));
                }
            }

            // Confirmation pass, in rounds of `round_draws` per
            // candidate (per-candidate adaptive stopping keeps these
            // rounds narrow; the bulk of the queries are behind us).
            for candidate in &mut candidates {
                loop {
                    let beta = exploration_beta(
                        lucb_round,
                        self.config.beam_width.max(1),
                        self.config.confidence,
                    );
                    let est = &candidate.est;
                    if est.mean() < threshold
                        || est.lcb(beta) >= threshold - self.config.tolerance
                        || est.samples >= max_samples
                        || queries >= budget
                    {
                        break;
                    }
                    round.clear();
                    let range = round.plan(
                        &candidate.features,
                        round_draws,
                        seed,
                        &mut drawn,
                        &mut queries,
                        budget,
                    );
                    if range.is_empty() {
                        break;
                    }
                    dispatch(&round, &mut outcomes);
                    settle(&mut candidate.est, &outcomes, range, &mut faults);
                }
            }

            // Anchors at this level (same acceptance rule as the scalar
            // path).
            let beta =
                exploration_beta(lucb_round, self.config.beam_width.max(1), self.config.confidence);
            let anchors: Vec<&Candidate> = candidates
                .iter()
                .filter(|c| {
                    c.est.mean() >= threshold
                        && c.est.lcb(beta) >= threshold - self.config.tolerance
                })
                .collect();
            if !anchors.is_empty() {
                let best = anchors
                    .into_iter()
                    .map(|c| {
                        let cov = coverage_of(&c.features);
                        (c, cov)
                    })
                    .max_by(|(_, ca), (_, cb)| ca.total_cmp(cb))
                    // Invariant: guarded by `!anchors.is_empty()`.
                    .expect("non-empty anchors");
                // Greedy drop-one minimization, sampling each subset in
                // rounds with a post-round early exit.
                let mut features = best.0.features.clone();
                let mut precision = best.0.est.mean();
                let mut improved = true;
                while improved && features.len() > 1 {
                    improved = false;
                    let snapshot = features.clone();
                    for feature in snapshot.iter() {
                        let mut subset = features.clone();
                        subset.remove(feature);
                        let mut est = BernoulliEstimate::default();
                        let b = exploration_beta(
                            lucb_round,
                            self.config.beam_width.max(1),
                            self.config.confidence,
                        );
                        while est.samples < max_samples && queries < budget {
                            round.clear();
                            let range = round.plan(
                                &subset,
                                round_draws.min(max_samples - est.samples),
                                seed,
                                &mut drawn,
                                &mut queries,
                                budget,
                            );
                            if range.is_empty() {
                                break;
                            }
                            dispatch(&round, &mut outcomes);
                            settle(&mut est, &outcomes, range, &mut faults);
                            if est.samples >= init_samples && est.ucb(b) < threshold {
                                break;
                            }
                        }
                        if est.mean() >= threshold
                            && est.lcb(b) >= threshold - self.config.tolerance
                        {
                            features = subset;
                            precision = est.mean();
                            improved = true;
                            break;
                        }
                    }
                }
                outcome = Some((features, precision, true));
                break 'levels;
            }

            // No anchor yet: carry the beam to the next level.
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| candidates[b].est.mean().total_cmp(&candidates[a].est.mean()));
            order.truncate(self.config.beam_width);
            let mut next_beam = Vec::new();
            let mut taken: HashSet<usize> = order.iter().copied().collect();
            for (i, candidate) in candidates.into_iter().enumerate() {
                if taken.remove(&i) {
                    next_beam.push(candidate);
                }
            }
            beam = next_beam;
        }

        let (features, precision, anchored) = match outcome {
            Some(found) => found,
            // Invariant: level 1 always has candidates (`n_features >
            // 0`), and both exits of the level loop record every level-1
            // candidate into `best_overall` first.
            None => {
                let (features, precision) =
                    best_overall.expect("at least one candidate was evaluated");
                (features, precision, false)
            }
        };
        let coverage = coverage_of(&features);
        let resilience_after = self.model.resilience().unwrap_or_default();
        let retries = resilience_after.retries.saturating_sub(resilience_before.retries);
        let degraded = faults > 0 || resilience_after.degraded;
        Ok(Explanation {
            features: pool.set_of(&features),
            precision,
            coverage,
            prediction,
            anchored,
            queries,
            faults,
            retries,
            degraded,
            duration_secs: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;
    use comet_isa::parse_block;
    use comet_models::{FaultConfig, FaultyModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cost model that only looks at the block length.
    struct LengthModel;

    impl CostModel for LengthModel {
        fn name(&self) -> &str {
            "length"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            block.len() as f64 / 4.0
        }
    }

    /// A cost model that only cares whether a `div` is present.
    struct DivModel;

    impl CostModel for DivModel {
        fn name(&self) -> &str {
            "div"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            let has_div = block
                .iter()
                .any(|i| matches!(i.opcode, comet_isa::Opcode::Div | comet_isa::Opcode::Idiv));
            if has_div {
                25.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn explains_a_length_only_model_with_eta() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(0);
        let explanation = explainer.explain(&block, &mut rng).unwrap();
        assert!(explanation.anchored);
        assert_eq!(
            explanation.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::NumInstructions],
            "{}",
            explanation.display_features()
        );
        assert!(explanation.precision >= 0.7);
        assert!(explanation.coverage > 0.0);
        assert_eq!(explanation.faults, 0);
        assert!(!explanation.degraded);
    }

    #[test]
    fn explains_a_div_model_with_the_div_instruction() {
        let block =
            parse_block("mov ecx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nimul rax, rcx").unwrap();
        let explainer = Explainer::new(DivModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(1);
        let explanation = explainer.explain(&block, &mut rng).unwrap();
        assert!(explanation.anchored);
        assert_eq!(
            explanation.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::Instruction(2)],
            "{}",
            explanation.display_features()
        );
    }

    #[test]
    fn reduced_and_baseline_configs_shrink_every_budget() {
        let base = ExplainConfig::for_crude_model();
        let reduced = base.reduced_budget();
        assert!(reduced.max_total_queries < base.max_total_queries);
        assert!(reduced.max_samples < base.max_samples);
        assert!(reduced.coverage_samples < base.coverage_samples);
        assert!(reduced.beam_width <= base.beam_width);
        assert!(reduced.max_features <= base.max_features);
        assert_eq!(reduced.epsilon, base.epsilon, "ε is a semantic knob, not a budget");
        let probe = base.baseline_probe();
        assert!(probe.max_total_queries <= reduced.max_total_queries);
        assert_eq!(probe.max_features, 1);
        assert_eq!(probe.epsilon, base.epsilon);
    }

    #[test]
    fn reduced_budget_still_explains_and_spends_less() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
        let config = ExplainConfig::for_crude_model();
        let full = Explainer::new(LengthModel, config)
            .explain(&block, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let reduced = Explainer::new(LengthModel, config.reduced_budget())
            .explain(&block, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let probe = Explainer::new(LengthModel, config.baseline_probe())
            .explain(&block, &mut StdRng::seed_from_u64(5))
            .unwrap();
        // The reduced run must respect its own (much smaller) query
        // cap; comparing against the full run directly is unreliable
        // on trivially easy models, where smaller init batches can
        // mean a couple of extra adaptive rounds.
        assert!(full.queries > 0 && reduced.queries > 0);
        assert!(
            reduced.queries <= config.reduced_budget().max_total_queries,
            "reduced spent {} of a {} cap",
            reduced.queries,
            config.reduced_budget().max_total_queries
        );
        assert!(probe.queries <= config.baseline_probe().max_total_queries);
        assert!(!probe.features.is_empty(), "the probe still names a feature");
        assert!(probe.features.len() <= 1);
    }

    #[test]
    fn query_counter_tracks_usage() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(2);
        let explanation = explainer.explain(&block, &mut rng).unwrap();
        assert!(explanation.queries > 10);
    }

    #[test]
    fn explanation_is_reproducible_per_seed() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let a = explainer.explain(&block, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = explainer.explain(&block, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a.features, b.features);
        assert_eq!(a.precision, b.precision);
    }

    #[test]
    fn model_failure_on_the_original_block_is_typed() {
        struct AlwaysNan;
        impl CostModel for AlwaysNan {
            fn name(&self) -> &str {
                "always-nan"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                f64::NAN
            }
        }
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let explainer = Explainer::new(AlwaysNan, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(0);
        match explainer.explain(&block, &mut rng) {
            Err(ExplainError::Model(ModelError::NonFinite { .. })) => {}
            other => panic!("expected a NonFinite model error, got {other:?}"),
        }
    }

    #[test]
    fn faulting_samples_degrade_but_do_not_fail() {
        // The original block predicts fine (seeded schedule: first
        // query healthy with overwhelming probability is not assumed —
        // we retry seeds until the initial prediction succeeds).
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let config = ExplainConfig {
            coverage_samples: 100,
            max_samples: 60,
            max_total_queries: 1_500,
            ..ExplainConfig::for_crude_model()
        };
        let mut explained = false;
        for seed in 0..10u64 {
            let faulty = FaultyModel::new(
                LengthModel,
                FaultConfig { nan_rate: 0.1, transient_rate: 0.1, seed, ..Default::default() },
            );
            let explainer = Explainer::new(faulty, config);
            let mut rng = StdRng::seed_from_u64(seed);
            match explainer.explain(&block, &mut rng) {
                Ok(e) => {
                    assert!(e.queries <= config.max_total_queries);
                    if e.faults > 0 {
                        assert!(e.degraded);
                        explained = true;
                    }
                }
                Err(ExplainError::Model(_)) => {} // initial query faulted
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(explained, "no seed produced a degraded-but-successful explanation");
    }

    #[test]
    fn batched_path_is_invariant_to_batch_and_pool_size() {
        let block =
            parse_block("mov ecx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nimul rax, rcx").unwrap();
        let config = ExplainConfig { coverage_samples: 300, ..ExplainConfig::for_crude_model() };
        let explainer = Explainer::new(DivModel, config);
        let reference = explainer.explain_batched(&block, 11, &BatchExec::new(1, 1)).unwrap();
        assert!(reference.anchored);
        assert_eq!(
            reference.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::Instruction(2)],
            "{}",
            reference.display_features()
        );
        for (batch, workers) in [(4, 1), (8, 2), (17, 4)] {
            let exec = BatchExec::new(batch, workers);
            let explanation = explainer.explain_batched(&block, 11, &exec).unwrap();
            assert_eq!(explanation, reference, "batch={batch} workers={workers}");
            assert!(exec.queries_batched() > 0);
            assert!(exec.chunks() > 0);
            let occupancy = exec.occupancy();
            assert!(occupancy > 0.0 && occupancy <= 1.0, "occupancy {occupancy}");
        }
    }

    #[test]
    fn batched_budget_is_a_hard_cap() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let config = ExplainConfig {
            coverage_samples: 100,
            max_total_queries: 200,
            ..ExplainConfig::for_crude_model()
        };
        let explainer = Explainer::new(LengthModel, config);
        let exec = BatchExec::new(8, 2);
        let explanation = explainer.explain_batched(&block, 5, &exec).unwrap();
        assert!(explanation.queries <= 200, "queries {}", explanation.queries);
        // Budget charged == queries dispatched (through either adaptive
        // path) + the initial prediction.
        assert_eq!(explanation.queries, exec.queries_batched() + exec.queries_inline() + 1);
        // The first round always runs batched (it seeds the adaptive
        // controller), so the batched counters are never zero.
        assert!(exec.queries_batched() > 0);
    }

    #[test]
    fn batched_faults_are_counted_and_degrade() {
        // Single worker keeps the fault injector's schedule
        // deterministic, so the whole explanation is reproducible.
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let config = ExplainConfig {
            coverage_samples: 100,
            max_samples: 60,
            max_total_queries: 1_500,
            ..ExplainConfig::for_crude_model()
        };
        let mut explained = false;
        for seed in 0..10u64 {
            let faulty = FaultyModel::new(
                LengthModel,
                FaultConfig { nan_rate: 0.1, transient_rate: 0.1, seed, ..Default::default() },
            );
            let explainer = Explainer::new(faulty, config);
            let exec = BatchExec::new(4, 1);
            match explainer.explain_batched(&block, seed, &exec) {
                Ok(e) => {
                    assert!(e.queries <= config.max_total_queries);
                    if e.faults > 0 {
                        assert!(e.degraded);
                        explained = true;
                    }
                }
                Err(ExplainError::Model(_)) => {} // initial query faulted
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(explained, "no seed produced a degraded-but-successful explanation");
    }

    #[test]
    fn budget_is_a_hard_cap_even_when_every_sample_faults() {
        struct HealthyOnceThenFail(Cell<bool>);
        impl CostModel for HealthyOnceThenFail {
            fn name(&self) -> &str {
                "healthy-once"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                if self.0.replace(true) {
                    f64::NAN
                } else {
                    1.0
                }
            }
        }
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let config = ExplainConfig {
            coverage_samples: 50,
            max_total_queries: 500,
            ..ExplainConfig::for_crude_model()
        };
        let explainer = Explainer::new(HealthyOnceThenFail(Cell::new(false)), config);
        let mut rng = StdRng::seed_from_u64(4);
        let e = explainer.explain(&block, &mut rng).unwrap();
        assert!(e.queries <= 500);
        assert_eq!(e.faults, e.queries - 1);
        assert!(e.degraded);
        assert!(!e.anchored);
    }
}
