//! COMET's explanation search (paper §5.2): an Anchors-style beam
//! search over feature sets, with precision estimated by KL-LUCB
//! Bernoulli bounds and coverage estimated empirically over a shared
//! pool of unconstrained perturbations.

use std::cell::Cell;
use std::collections::HashSet;

use comet_isa::BasicBlock;
use comet_models::CostModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::feature::{Feature, FeatureSet};
use crate::perturb::{PerturbConfig, Perturber};
use crate::precision::{exploration_beta, BernoulliEstimate};

/// Explanation-search configuration. Defaults follow the paper:
/// precision threshold 0.7 (δ = 0.3), ε = 0.5 cycles, Anchors' default
/// beam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplainConfig {
    /// Radius of the acceptable-cost ball T around M(β). The paper uses
    /// 0.25 for the crude model C and 0.5 cycles for Ithemal/uiCA.
    pub epsilon: f64,
    /// Precision threshold is `1 - delta` (paper: δ = 0.3).
    pub delta: f64,
    /// Beam width (Anchors default: 10).
    pub beam_width: usize,
    /// Initial samples per candidate feature set.
    pub init_samples: usize,
    /// Additional samples drawn per LUCB refinement round.
    pub batch_size: usize,
    /// Total sample budget per candidate.
    pub max_samples: usize,
    /// Samples from Π(∅) used for empirical coverage (paper: 10k).
    pub coverage_samples: usize,
    /// Failure probability for the KL confidence bounds.
    pub confidence: f64,
    /// LUCB stopping tolerance on the top-k boundary gap.
    pub tolerance: f64,
    /// Maximum explanation cardinality (simplicity cap).
    pub max_features: usize,
    /// Global cap on model queries per explanation; when exhausted the
    /// search returns its current best candidate. Bounds worst-case
    /// latency on models where few feature sets anchor.
    pub max_total_queries: u64,
    /// Perturbation-algorithm parameters.
    pub perturb: PerturbConfig,
}

impl Default for ExplainConfig {
    fn default() -> ExplainConfig {
        ExplainConfig {
            epsilon: 0.5,
            delta: 0.3,
            beam_width: 10,
            init_samples: 16,
            batch_size: 8,
            max_samples: 600,
            coverage_samples: 2_000,
            confidence: 0.05,
            tolerance: 0.15,
            max_features: 4,
            max_total_queries: 25_000,
            perturb: PerturbConfig::default(),
        }
    }
}

impl ExplainConfig {
    /// The paper's settings for the crude analytical model C
    /// (ε = 0.25, Appendix E).
    pub fn for_crude_model() -> ExplainConfig {
        ExplainConfig { epsilon: 0.25, ..ExplainConfig::default() }
    }

    /// The paper's settings for practical throughput models
    /// (ε = 0.5 cycles).
    pub fn for_throughput_model() -> ExplainConfig {
        ExplainConfig::default()
    }

    /// The precision threshold `1 - delta`.
    pub fn threshold(&self) -> f64 {
        1.0 - self.delta
    }
}

/// A COMET explanation: the feature set, its estimated quality, and
/// bookkeeping about the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The explanation feature set F̂*.
    pub features: FeatureSet,
    /// Estimated precision (probabilistic faithfulness).
    pub precision: f64,
    /// Estimated coverage (probabilistic generalizability).
    pub coverage: f64,
    /// The model's prediction for the explained block.
    pub prediction: f64,
    /// Whether the precision threshold was actually reached (if false,
    /// this is the best-effort highest-precision candidate).
    pub anchored: bool,
    /// Number of cost-model queries spent.
    pub queries: u64,
}

impl Explanation {
    /// The explanation rendered in the paper's notation.
    pub fn display_features(&self) -> String {
        crate::feature::format_feature_set(&self.features)
    }
}

/// The COMET explainer for a given cost model.
#[derive(Debug)]
pub struct Explainer<M> {
    model: M,
    config: ExplainConfig,
}

struct Candidate {
    features: FeatureSet,
    est: BernoulliEstimate,
}

impl<M: CostModel> Explainer<M> {
    /// Create an explainer. The model is queried, never introspected.
    pub fn new(model: M, config: ExplainConfig) -> Explainer<M> {
        Explainer { model, config }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &ExplainConfig {
        &self.config
    }

    /// Explain the model's prediction for `block` (paper Figure 1).
    ///
    /// # Panics
    ///
    /// Panics if the block has no features (cannot happen for valid
    /// blocks: η always exists).
    pub fn explain<R: Rng>(&self, block: &BasicBlock, rng: &mut R) -> Explanation {
        let perturber = Perturber::new(block, self.config.perturb);
        let queries = Cell::new(0u64);
        let prediction = self.predict_counted(block, &queries);

        // Shared coverage pool: surviving feature sets of unconstrained
        // perturbations (no model queries needed).
        let coverage_pool: Vec<FeatureSet> = (0..self.config.coverage_samples)
            .map(|_| perturber.perturb(&FeatureSet::new(), rng).surviving)
            .collect();
        let coverage_of = |features: &FeatureSet| -> f64 {
            let hits = coverage_pool.iter().filter(|s| features.is_subset(s)).count();
            hits as f64 / coverage_pool.len().max(1) as f64
        };

        let all_features: Vec<Feature> = perturber.features().to_vec();
        assert!(!all_features.is_empty(), "block without features");

        let sample = |candidate: &mut Candidate, rng: &mut R| {
            let perturbed = perturber.perturb(&candidate.features, rng);
            let cost = self.predict_counted(&perturbed.block, &queries);
            // Open ε-ball: with quantized cost models (the crude model
            // moves in exact quarter-cycle steps) an inclusive bound
            // would admit genuinely changed predictions.
            candidate.est.update((cost - prediction).abs() < self.config.epsilon);
        };

        let threshold = self.config.threshold();
        let mut beam: Vec<Candidate> = Vec::new();
        let mut best_overall: Option<(FeatureSet, f64)> = None;
        let budget_left = |queries: &Cell<u64>| queries.get() < self.config.max_total_queries;

        'levels: for level in 1..=self.config.max_features {
            // Build this level's candidates.
            let mut seen: HashSet<FeatureSet> = HashSet::new();
            let mut candidates: Vec<Candidate> = Vec::new();
            if level == 1 {
                for &f in &all_features {
                    let mut set = FeatureSet::new();
                    set.insert(f);
                    if seen.insert(set.clone()) {
                        candidates.push(Candidate { features: set, est: Default::default() });
                    }
                }
            } else {
                for parent in &beam {
                    for &f in &all_features {
                        if parent.features.contains(&f) {
                            continue;
                        }
                        let mut set = parent.features.clone();
                        set.insert(f);
                        if seen.insert(set.clone()) {
                            candidates.push(Candidate { features: set, est: Default::default() });
                        }
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }

            // Initial sampling.
            for candidate in &mut candidates {
                for _ in 0..self.config.init_samples {
                    sample(candidate, rng);
                }
            }
            if !budget_left(&queries) {
                for candidate in &candidates {
                    let mean = candidate.est.mean();
                    if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                        best_overall = Some((candidate.features.clone(), mean));
                    }
                }
                break 'levels;
            }

            // LUCB refinement of the top-k boundary.
            let k = self.config.beam_width.min(candidates.len());
            let mut round: u64 = 1;
            loop {
                let beta = exploration_beta(round, candidates.len(), self.config.confidence);
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.sort_by(|&a, &b| {
                    candidates[b]
                        .est
                        .mean()
                        .partial_cmp(&candidates[a].est.mean())
                        .expect("non-NaN means")
                });
                let in_top = &order[..k];
                let out_top = &order[k..];
                let weakest_in = in_top
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        candidates[a]
                            .est
                            .lcb(beta)
                            .partial_cmp(&candidates[b].est.lcb(beta))
                            .expect("non-NaN bounds")
                    })
                    .expect("non-empty top set");
                let strongest_out = out_top.iter().copied().max_by(|&a, &b| {
                    candidates[a]
                        .est
                        .ucb(beta)
                        .partial_cmp(&candidates[b].est.ucb(beta))
                        .expect("non-NaN bounds")
                });
                let gap = match strongest_out {
                    Some(v) => {
                        candidates[v].est.ucb(beta) - candidates[weakest_in].est.lcb(beta)
                    }
                    None => 0.0,
                };
                let budget_left_global = budget_left(&queries);
                let budget_left = candidates[weakest_in].est.samples
                    < self.config.max_samples as u64
                    || strongest_out.is_some_and(|v| {
                        candidates[v].est.samples < self.config.max_samples as u64
                    });
                if gap <= self.config.tolerance || !budget_left || !budget_left_global {
                    break;
                }
                for _ in 0..self.config.batch_size {
                    if candidates[weakest_in].est.samples < self.config.max_samples as u64 {
                        sample(&mut candidates[weakest_in], rng);
                    }
                    if let Some(v) = strongest_out {
                        if candidates[v].est.samples < self.config.max_samples as u64 {
                            sample(&mut candidates[v], rng);
                        }
                    }
                }
                round += 1;
            }

            // Track the best-precision candidate seen anywhere.
            for candidate in &candidates {
                let mean = candidate.est.mean();
                if best_overall.as_ref().is_none_or(|(_, p)| mean > *p) {
                    best_overall = Some((candidate.features.clone(), mean));
                }
            }

            // Confirmation pass: candidates whose point estimate clears
            // the threshold are sampled until their lower bound either
            // confirms the anchor or the estimate falls below the
            // threshold (Anchors' `lb > τ - tolerance` check needs
            // enough samples to be meaningful).
            for candidate in &mut candidates {
                loop {
                    let beta =
                        exploration_beta(round, self.config.beam_width.max(1), self.config.confidence);
                    if candidate.est.mean() < threshold
                        || candidate.est.lcb(beta) >= threshold - self.config.tolerance
                        || candidate.est.samples >= self.config.max_samples as u64
                        || !budget_left(&queries)
                    {
                        break;
                    }
                    for _ in 0..self.config.batch_size {
                        sample(candidate, rng);
                    }
                }
            }

            // Anchors at this level: precision estimate over threshold
            // with a confident lower bound (same exploration rate as the
            // confirmation pass).
            let beta =
                exploration_beta(round, self.config.beam_width.max(1), self.config.confidence);
            let anchors: Vec<&Candidate> = candidates
                .iter()
                .filter(|c| {
                    c.est.mean() >= threshold
                        && c.est.lcb(beta) >= threshold - self.config.tolerance
                })
                .collect();
            if !anchors.is_empty() {
                // Coverage is monotone decreasing in |F|, so the first
                // level with an anchor holds the max-coverage anchor.
                let best = anchors
                    .into_iter()
                    .map(|c| {
                        let cov = coverage_of(&c.features);
                        (c, cov)
                    })
                    .max_by(|(_, ca), (_, cb)| ca.partial_cmp(cb).expect("non-NaN coverage"))
                    .expect("non-empty anchors");
                // Greedy minimization: borderline singletons can miss
                // their own level by sampling noise, leaving a redundant
                // feature in the anchor. Try dropping each feature and
                // keep any subset that still confirms the threshold
                // (strictly improving coverage).
                let mut features = best.0.features.clone();
                let mut precision = best.0.est.mean();
                let mut improved = true;
                while improved && features.len() > 1 {
                    improved = false;
                    for feature in features.clone() {
                        let mut subset = features.clone();
                        subset.remove(&feature);
                        let mut candidate =
                            Candidate { features: subset.clone(), est: Default::default() };
                        let b = exploration_beta(
                            round,
                            self.config.beam_width.max(1),
                            self.config.confidence,
                        );
                        while candidate.est.samples < self.config.max_samples as u64
                            && budget_left(&queries)
                        {
                            sample(&mut candidate, rng);
                            if candidate.est.samples >= self.config.init_samples as u64
                                && candidate.est.ucb(b) < threshold
                            {
                                break;
                            }
                        }
                        let est = candidate.est;
                        if est.mean() >= threshold
                            && est.lcb(b) >= threshold - self.config.tolerance
                        {
                            features = subset;
                            precision = est.mean();
                            improved = true;
                            break;
                        }
                    }
                }
                let coverage = coverage_of(&features);
                return Explanation {
                    features,
                    precision,
                    coverage,
                    prediction,
                    anchored: true,
                    queries: queries.get(),
                };
            }

            // No anchor yet: carry the beam to the next level.
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| {
                candidates[b]
                    .est
                    .mean()
                    .partial_cmp(&candidates[a].est.mean())
                    .expect("non-NaN means")
            });
            order.truncate(self.config.beam_width);
            let mut next_beam = Vec::new();
            let mut taken: HashSet<usize> = order.iter().copied().collect();
            for (i, candidate) in candidates.into_iter().enumerate() {
                if taken.remove(&i) {
                    next_beam.push(candidate);
                }
            }
            beam = next_beam;
        }

        // Nothing reached the threshold: report the best effort.
        let (features, precision) =
            best_overall.expect("at least one candidate was evaluated");
        let coverage = coverage_of(&features);
        Explanation { features, precision, coverage, prediction, anchored: false, queries: queries.get() }
    }

    fn predict_counted(&self, block: &BasicBlock, queries: &Cell<u64>) -> f64 {
        queries.set(queries.get() + 1);
        self.model.predict(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cost model that only looks at the block length.
    struct LengthModel;

    impl CostModel for LengthModel {
        fn name(&self) -> &str {
            "length"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            block.len() as f64 / 4.0
        }
    }

    /// A cost model that only cares whether a `div` is present.
    struct DivModel;

    impl CostModel for DivModel {
        fn name(&self) -> &str {
            "div"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            let has_div =
                block.iter().any(|i| matches!(i.opcode, comet_isa::Opcode::Div | comet_isa::Opcode::Idiv));
            if has_div {
                25.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn explains_a_length_only_model_with_eta() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(0);
        let explanation = explainer.explain(&block, &mut rng);
        assert!(explanation.anchored);
        assert_eq!(
            explanation.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::NumInstructions],
            "{}",
            explanation.display_features()
        );
        assert!(explanation.precision >= 0.7);
        assert!(explanation.coverage > 0.0);
    }

    #[test]
    fn explains_a_div_model_with_the_div_instruction() {
        let block =
            parse_block("mov ecx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nimul rax, rcx").unwrap();
        let explainer = Explainer::new(DivModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(1);
        let explanation = explainer.explain(&block, &mut rng);
        assert!(explanation.anchored);
        assert_eq!(
            explanation.features.iter().copied().collect::<Vec<_>>(),
            vec![Feature::Instruction(2)],
            "{}",
            explanation.display_features()
        );
    }

    #[test]
    fn query_counter_tracks_usage() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let mut rng = StdRng::seed_from_u64(2);
        let explanation = explainer.explain(&block, &mut rng);
        assert!(explanation.queries > 10);
    }

    #[test]
    fn explanation_is_reproducible_per_seed() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let explainer = Explainer::new(LengthModel, ExplainConfig::for_crude_model());
        let a = explainer.explain(&block, &mut StdRng::seed_from_u64(3));
        let b = explainer.explain(&block, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.features, b.features);
        assert_eq!(a.precision, b.precision);
    }
}
