//! # comet-core
//!
//! COMET — the COst Model ExplanaTion framework (Chaudhary et al.,
//! MLSys 2024) — generates faithful, generalizable, and simple
//! explanations for black-box basic-block cost models with query access
//! only.
//!
//! An explanation is a small set of block [`Feature`]s (instructions,
//! data dependencies, instruction count) whose presence suffices to
//! keep the model's prediction within an ε-ball of its prediction for
//! the original block. The search:
//!
//! 1. decomposes the block into a dependency multigraph and extracts
//!    candidate features P̂ ([`extract_features`]);
//! 2. samples feature-preserving perturbations with the Γ algorithm
//!    ([`Perturber`]);
//! 3. estimates each candidate set's *precision* with KL-LUCB Bernoulli
//!    bounds and its *coverage* empirically;
//! 4. runs an Anchors-style beam search for the max-coverage set whose
//!    precision exceeds `1 - δ` ([`Explainer`]).
//!
//! The model is an untrusted black box: [`Explainer::explain`] queries
//! it only through the fallible [`CostModel::try_predict`] entry point
//! and returns `Result<Explanation, ExplainError>` — failures on
//! individual perturbed samples are tolerated (counted in
//! [`Explanation::faults`] and flagged via [`Explanation::degraded`]),
//! while failures on the explained block itself become
//! [`ExplainError::Model`].
//!
//! [`CostModel::try_predict`]: comet_models::CostModel::try_predict
//!
//! # Examples
//!
//! ```
//! use comet_core::{Explainer, ExplainConfig};
//! use comet_models::CrudeModel;
//! use comet_isa::Microarch;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = comet_isa::parse_block("add rcx, rax\nmov rdx, rcx\npop rbx")?;
//! let model = CrudeModel::new(Microarch::Haswell);
//! let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
//! let explanation = explainer.explain(&block, &mut StdRng::seed_from_u64(0))?;
//! println!("{} explains the prediction", explanation.display_features());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod baselines;
mod bitset;
pub mod cancel;
mod compare;
mod explain;
mod feature;
pub mod par;
mod perturb;
pub mod precision;
pub mod space;
pub mod swap;

pub use baselines::{ground_truth, is_accurate, BaselineContext};
pub use bitset::{FeatureMask, FeaturePool};
pub use cancel::CancelToken;
pub use compare::{compare_models, BlockComparison, ComparisonReport};
pub use explain::{BatchExec, ExplainConfig, ExplainError, Explainer, Explanation};
pub use feature::{extract_features, format_feature_set, Feature, FeatureKind, FeatureSet};
pub use par::{par_map, par_map_cancellable, par_map_strict, ParPanic, WorkerPool};
pub use perturb::{PerturbConfig, PerturbScratch, PerturbedBlock, Perturber, ReplacementScheme};
pub use swap::SwapCell;
