//! Ground-truth explanations for the crude model C (paper eq. 9), the
//! explanation-accuracy metric, and the random/fixed baseline
//! explainers from §6.

use std::collections::HashMap;

use comet_graph::BlockGraph;
use comet_isa::BasicBlock;
use comet_models::{CostModel, CrudeModel};
use rand::Rng;

use crate::feature::{extract_features, Feature, FeatureKind, FeatureSet};

/// GT(β) (paper eq. 9): the features whose cost equals C(β) — the
/// bottleneck features of the block under the crude model.
pub fn ground_truth(model: &CrudeModel, block: &BasicBlock) -> FeatureSet {
    let graph = BlockGraph::build(block);
    let total = model.predict(block);
    let mut gt = FeatureSet::new();
    let close = |cost: f64| (cost - total).abs() < 1e-9;
    if close(model.cost_eta(block.len())) {
        gt.insert(Feature::NumInstructions);
    }
    for i in 0..block.len() {
        if close(model.cost_inst(block, i)) {
            gt.insert(Feature::Instruction(i));
        }
    }
    for edge in graph.edges() {
        if close(model.cost_dep(block, edge)) {
            gt.insert(Feature::Dependency { kind: edge.kind, src: edge.src, dst: edge.dst });
        }
    }
    debug_assert!(!gt.is_empty(), "C(β) must be achieved by some feature");
    gt
}

/// The paper's accuracy criterion: an explanation is accurate iff it
/// identifies at least one ground-truth feature and nothing outside the
/// ground truth.
pub fn is_accurate(explanation: &FeatureSet, ground_truth: &FeatureSet) -> bool {
    !explanation.is_empty() && explanation.is_subset(ground_truth)
}

/// The empirical distribution of feature *types* across a set of
/// ground-truth explanations — shared context for both baselines.
#[derive(Debug, Clone)]
pub struct BaselineContext {
    type_counts: HashMap<FeatureKind, usize>,
    total: usize,
}

impl BaselineContext {
    /// Collect type statistics over the ground-truth explanations of an
    /// explanation test set.
    pub fn from_ground_truths<'a, I>(ground_truths: I) -> BaselineContext
    where
        I: IntoIterator<Item = &'a FeatureSet>,
    {
        let mut type_counts: HashMap<FeatureKind, usize> = HashMap::new();
        let mut total = 0;
        for gt in ground_truths {
            for feature in gt {
                *type_counts.entry(feature.kind()).or_default() += 1;
                total += 1;
            }
        }
        BaselineContext { type_counts, total }
    }

    /// Probability of a feature type among all ground-truth features.
    pub fn type_probability(&self, kind: FeatureKind) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.type_counts.get(&kind).unwrap_or(&0) as f64 / self.total as f64
    }

    /// The most frequent ground-truth feature type.
    pub fn dominant_type(&self) -> FeatureKind {
        FeatureKind::ALL
            .into_iter()
            .max_by(|a, b| self.type_probability(*a).total_cmp(&self.type_probability(*b)))
            // Invariant: `FeatureKind::ALL` is a non-empty const array.
            .expect("at least one feature kind")
    }

    /// The *random* baseline (paper §6): sample a feature type from the
    /// ground-truth type distribution, then a uniform feature of that
    /// type from the block (retrying while the block lacks the type).
    pub fn random_explanation<R: Rng>(&self, block: &BasicBlock, rng: &mut R) -> FeatureSet {
        let graph = BlockGraph::build(block);
        let features = extract_features(block, &graph);
        let mut result = FeatureSet::new();
        for _ in 0..64 {
            let roll: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = FeatureKind::Eta;
            for kind in FeatureKind::ALL {
                acc += self.type_probability(kind);
                if roll < acc {
                    chosen = kind;
                    break;
                }
            }
            let of_kind: Vec<&Feature> = features.iter().filter(|f| f.kind() == chosen).collect();
            if !of_kind.is_empty() {
                result.insert(*of_kind[rng.gen_range(0..of_kind.len())]);
                return result;
            }
        }
        // Degenerate fallback: η always exists.
        result.insert(Feature::NumInstructions);
        result
    }

    /// The *fixed* baseline (paper §6): always the first feature of the
    /// globally most frequent ground-truth type.
    pub fn fixed_explanation(&self, block: &BasicBlock) -> FeatureSet {
        let graph = BlockGraph::build(block);
        let features = extract_features(block, &graph);
        let dominant = self.dominant_type();
        let mut result = FeatureSet::new();
        if let Some(feature) = features.iter().find(|f| f.kind() == dominant) {
            result.insert(*feature);
        } else {
            result.insert(Feature::NumInstructions);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::{parse_block, Microarch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_finds_the_eta_bottleneck() {
        let text = (0..8).map(|i| format!("mov r{}, 1", 8 + i)).collect::<Vec<_>>().join("\n");
        let block = parse_block(&text).unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let gt = ground_truth(&c, &block);
        assert!(gt.contains(&Feature::NumInstructions));
        assert!(gt.iter().all(|f| f.kind() == FeatureKind::Eta));
    }

    #[test]
    fn ground_truth_finds_the_div_bottleneck() {
        let block = parse_block("div rcx\nmov rbx, 1").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let gt = ground_truth(&c, &block);
        assert!(gt.contains(&Feature::Instruction(0)));
        assert!(!gt.contains(&Feature::NumInstructions));
    }

    #[test]
    fn ground_truth_finds_raw_dependency_bottleneck() {
        let block = parse_block("add rcx, rax\nmov qword ptr [rdi], rcx").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let gt = ground_truth(&c, &block);
        assert!(gt.iter().any(|f| f.kind() == FeatureKind::Dep), "{gt:?}");
    }

    #[test]
    fn accuracy_requires_subset_and_overlap() {
        let mut gt = FeatureSet::new();
        gt.insert(Feature::Instruction(0));
        gt.insert(Feature::Instruction(1));
        let mut good = FeatureSet::new();
        good.insert(Feature::Instruction(1));
        assert!(is_accurate(&good, &gt));
        let mut bad = FeatureSet::new();
        bad.insert(Feature::Instruction(1));
        bad.insert(Feature::NumInstructions);
        assert!(!is_accurate(&bad, &gt));
        assert!(!is_accurate(&FeatureSet::new(), &gt));
    }

    #[test]
    fn baselines_produce_singletons() {
        let block = parse_block("div rcx\nmov rbx, 1").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let gts = vec![ground_truth(&c, &block)];
        let ctx = BaselineContext::from_ground_truths(&gts);
        let mut rng = StdRng::seed_from_u64(0);
        let random = ctx.random_explanation(&block, &mut rng);
        assert_eq!(random.len(), 1);
        let fixed = ctx.fixed_explanation(&block);
        assert_eq!(fixed.len(), 1);
        // The only GT type here is Inst, so fixed picks the first inst.
        assert_eq!(fixed.iter().next().unwrap(), &Feature::Instruction(0));
    }

    #[test]
    fn type_distribution_normalizes() {
        let block = parse_block("div rcx\nmov rbx, 1").unwrap();
        let c = CrudeModel::new(Microarch::Haswell);
        let gts = vec![ground_truth(&c, &block)];
        let ctx = BaselineContext::from_ground_truths(&gts);
        let total: f64 = FeatureKind::ALL.iter().map(|k| ctx.type_probability(*k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
