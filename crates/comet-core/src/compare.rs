//! Explanation-based model comparison (paper §7): choose between
//! similarly accurate cost models by comparing *what their predictions
//! depend on*, block by block.

use comet_isa::BasicBlock;
use comet_models::CostModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::explain::{ExplainConfig, ExplainError, Explainer, Explanation};
use crate::feature::{FeatureKind, FeatureSet};

/// The two models' explanations for one block, with agreement metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockComparison {
    /// The block's canonical text.
    pub block: String,
    /// First model's prediction.
    pub prediction_a: f64,
    /// Second model's prediction.
    pub prediction_b: f64,
    /// First model's explanation.
    pub explanation_a: Explanation,
    /// Second model's explanation.
    pub explanation_b: Explanation,
}

impl BlockComparison {
    /// Jaccard similarity of the two explanation feature sets
    /// (1 = identical, 0 = disjoint).
    pub fn agreement(&self) -> f64 {
        let a = &self.explanation_a.features;
        let b = &self.explanation_b.features;
        let union = a.union(b).count();
        if union == 0 {
            return 1.0;
        }
        a.intersection(b).count() as f64 / union as f64
    }

    /// Whether one model leans on coarse features (η) while the other
    /// names fine-grained ones — the paper's diagnostic signature for a
    /// model under-using block structure.
    pub fn granularity_disagreement(&self) -> bool {
        let coarse = |f: &FeatureSet| f.iter().all(|x| x.kind() == FeatureKind::Eta);
        let fine = |f: &FeatureSet| f.iter().any(|x| x.kind() != FeatureKind::Eta);
        (coarse(&self.explanation_a.features) && fine(&self.explanation_b.features))
            || (coarse(&self.explanation_b.features) && fine(&self.explanation_a.features))
    }
}

/// Aggregate comparison of two cost models over a set of blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// First model's name.
    pub model_a: String,
    /// Second model's name.
    pub model_b: String,
    /// Per-block comparisons.
    pub blocks: Vec<BlockComparison>,
}

impl ComparisonReport {
    /// Mean explanation agreement across blocks.
    pub fn mean_agreement(&self) -> f64 {
        if self.blocks.is_empty() {
            return 1.0;
        }
        self.blocks.iter().map(BlockComparison::agreement).sum::<f64>() / self.blocks.len() as f64
    }

    /// Blocks where the models disagree about feature granularity —
    /// the prime candidates for manual case analysis (§6.4).
    pub fn granularity_disagreements(&self) -> impl Iterator<Item = &BlockComparison> {
        self.blocks.iter().filter(|b| b.granularity_disagreement())
    }
}

/// Explain every block under both models and collect the comparison.
///
/// Fails with the first [`ExplainError`] encountered: a comparison with
/// a hole in it would silently bias the aggregate agreement metrics, so
/// callers that want partial results should compare block-by-block and
/// skip failures explicitly.
pub fn compare_models<A, B, R>(
    model_a: &A,
    model_b: &B,
    blocks: &[BasicBlock],
    config: ExplainConfig,
    rng: &mut R,
) -> Result<ComparisonReport, ExplainError>
where
    A: CostModel,
    B: CostModel,
    R: Rng,
{
    let explainer_a = Explainer::new(model_a, config);
    let explainer_b = Explainer::new(model_b, config);
    let mut comparisons = Vec::with_capacity(blocks.len());
    for block in blocks {
        let explanation_a = explainer_a.explain(block, rng)?;
        let explanation_b = explainer_b.explain(block, rng)?;
        comparisons.push(BlockComparison {
            block: block.to_string(),
            prediction_a: explanation_a.prediction,
            prediction_b: explanation_b.prediction,
            explanation_a,
            explanation_b,
        });
    }
    Ok(ComparisonReport {
        model_a: model_a.name().to_string(),
        model_b: model_b.name().to_string(),
        blocks: comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct LengthModel;

    impl CostModel for LengthModel {
        fn name(&self) -> &str {
            "length"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            block.len() as f64 / 4.0
        }
    }

    struct DivModel;

    impl CostModel for DivModel {
        fn name(&self) -> &str {
            "div-aware"
        }

        fn predict(&self, block: &BasicBlock) -> f64 {
            if block.iter().any(|i| i.opcode == comet_isa::Opcode::Div) {
                25.0
            } else {
                block.len() as f64 / 4.0
            }
        }
    }

    fn config() -> ExplainConfig {
        ExplainConfig {
            coverage_samples: 200,
            max_samples: 200,
            ..ExplainConfig::for_crude_model()
        }
    }

    #[test]
    fn detects_granularity_disagreement_on_div_block() {
        let blocks =
            vec![parse_block("mov ecx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nimul rax, rcx")
                .unwrap()];
        let mut rng = StdRng::seed_from_u64(0);
        let report = compare_models(&LengthModel, &DivModel, &blocks, config(), &mut rng).unwrap();
        assert_eq!(report.blocks.len(), 1);
        assert!(report.blocks[0].granularity_disagreement());
        assert_eq!(report.granularity_disagreements().count(), 1);
        assert!(report.mean_agreement() < 1.0);
    }

    #[test]
    fn identical_models_agree() {
        let blocks = vec![parse_block("add rcx, rax\nmov rdx, rcx").unwrap()];
        let mut rng = StdRng::seed_from_u64(1);
        let report =
            compare_models(&LengthModel, &LengthModel, &blocks, config(), &mut rng).unwrap();
        assert_eq!(report.mean_agreement(), 1.0);
        assert_eq!(report.granularity_disagreements().count(), 0);
    }

    #[test]
    fn model_failure_propagates() {
        struct BrokenModel;
        impl CostModel for BrokenModel {
            fn name(&self) -> &str {
                "broken"
            }
            fn predict(&self, _: &BasicBlock) -> f64 {
                f64::NAN
            }
        }
        let blocks = vec![parse_block("add rcx, rax").unwrap()];
        let mut rng = StdRng::seed_from_u64(2);
        let result = compare_models(&LengthModel, &BrokenModel, &blocks, config(), &mut rng);
        assert!(matches!(result, Err(ExplainError::Model(_))));
    }

    #[test]
    fn empty_report_defaults() {
        let report =
            ComparisonReport { model_a: "a".into(), model_b: "b".into(), blocks: Vec::new() };
        assert_eq!(report.mean_agreement(), 1.0);
    }
}
