//! Shared-memory parallel execution primitives.
//!
//! Two tools live here:
//!
//! - [`par_map`] / [`par_map_cancellable`]: a minimal scoped-thread
//!   parallel map for embarrassingly parallel per-item work (hoisted
//!   from `comet-eval` so the explainer, the eval harness, and the
//!   network service share one implementation). Panics in one item are
//!   isolated; cancellation drains in-flight items cleanly.
//! - [`WorkerPool`]: a small *persistent* pool for repeated fine-grained
//!   fan-outs. A scoped spawn costs tens of microseconds per thread —
//!   fatal inside an explanation whose whole budget is a few hundred
//!   microseconds — so the pool keeps its threads alive across calls:
//!   [`WorkerPool::run`] broadcasts a job, the caller participates as
//!   worker 0, and parked workers wake by epoch. A pool of size 1
//!   spawns no threads at all and runs jobs inline.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use comet_models::panic_payload_message;

use crate::cancel::CancelToken;

/// One item's worker panicked; siblings were unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParPanic {
    /// Index of the failing item in the input slice.
    pub index: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for ParPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked on item {}: {}", self.index, self.message)
    }
}

impl std::error::Error for ParPanic {}

/// Map `f` over `items` using all available cores, preserving order.
///
/// `f` receives `(index, item)` so callers can derive deterministic
/// per-item RNG seeds. Each item's call is isolated with
/// `catch_unwind`: a panicking item yields `Err(ParPanic)` in its slot
/// while the remaining items are still processed (no worker dies, no
/// sibling result is lost).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ParPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_cancellable(items, &CancelToken::new(), f)
        .into_iter()
        // Invariant: with a never-cancelled token every slot is filled.
        .map(|slot| slot.expect("uncancelled par_map filled every slot"))
        .collect()
}

/// [`par_map`] with cooperative cancellation: workers poll `cancel`
/// before claiming each item, so after cancellation no *new* item
/// starts while in-flight items drain to completion. Unstarted items
/// yield `None` in their slots (started items yield `Some` as usual).
pub fn par_map_cancellable<T, R, F>(
    items: &[T],
    cancel: &CancelToken,
    f: F,
) -> Vec<Option<Result<R, ParPanic>>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<R, ParPanic>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if cancel.poll() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| {
                    ParPanic { index: i, message: panic_payload_message(&*payload) }
                });
                // Slots are locked only for this store, with `f` run
                // outside and its panics caught above — recover from
                // poisoning anyway rather than compounding a failure.
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
            });
        }
    });
    results.into_iter().map(|slot| slot.into_inner().unwrap_or_else(|p| p.into_inner())).collect()
}

/// `par_map` for infallible workers: unwraps every slot, panicking with
/// the first [`ParPanic`] if a worker died. Use only where a worker
/// panic is itself a bug (e.g. pure arithmetic).
pub fn par_map_strict<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, f)
        .into_iter()
        .map(|slot| match slot {
            Ok(value) => value,
            Err(panic) => panic!("{panic}"),
        })
        .collect()
}

/// How long a worker spins on the epoch counter before parking on the
/// condvar. Spinning covers the common case of back-to-back rounds in
/// a sampling loop (sub-microsecond handoff); parking caps the cost of
/// an idle pool at nothing.
const SPIN_ROUNDS: u32 = 10_000;

/// State shared between a [`WorkerPool`]'s caller and its threads.
struct PoolShared {
    /// Bumped once per published job; workers watch it lock-free.
    epoch: AtomicU64,
    /// Set once on drop; workers exit their loops.
    shutdown: AtomicBool,
    /// The current job, valid for the current epoch. `None` between
    /// rounds. Guarded by `job_lock`; `wake` is its condvar.
    job: Mutex<Option<Job>>,
    wake: Condvar,
    /// Helpers still running the current job.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    /// First panic message out of a helper this round, if any.
    panic: Mutex<Option<String>>,
}

/// A type-erased borrow of the caller's job closure. The raw pointer is
/// only dereferenced between publication and the completion barrier in
/// [`WorkerPool::run`], which outlives the borrow by construction (the
/// completion wait happens even if the caller's own share of the work
/// panics — see `WaitForHelpers`).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (the closure is shared by reference
// across workers) and the pointer never outlives `run`'s borrow.
unsafe impl Send for Job {}

/// A persistent pool of `workers - 1` parked threads plus the caller.
///
/// [`run`](WorkerPool::run) hands every worker (including the caller,
/// as index 0) the same closure; workers split the actual items among
/// themselves, typically via an atomic cursor captured by the closure.
/// Creation is the expensive part (one OS thread per extra worker) —
/// create a pool once per explainer/benchmark/server worker and reuse
/// it across explanations; `run` itself costs at most a few
/// microseconds of handoff.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

impl WorkerPool {
    /// A pool of `workers` total workers (clamped to at least 1). One
    /// is the calling thread itself, so `workers - 1` threads are
    /// spawned; `WorkerPool::new(1)` spawns nothing and
    /// [`run`](WorkerPool::run) executes jobs inline.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            job: Mutex::new(None),
            wake: Condvar::new(),
            remaining: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let handles = (1..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("comet-pool-{index}"))
                    .spawn(move || helper_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles, workers }
    }

    /// Total workers, including the calling thread.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(worker_index)` on every worker concurrently; the caller
    /// executes index 0. Returns once every worker has finished.
    ///
    /// A panic in a helper is caught at the pool boundary (so the pool
    /// survives) and re-raised on the caller after the round completes;
    /// a panic in the caller's own share unwinds normally, after
    /// blocking until the helpers are done (the closure borrows the
    /// caller's stack).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        self.shared.remaining.store(self.handles.len(), Ordering::Release);
        {
            let mut job = lock(&self.shared.job);
            // SAFETY: erases the borrow's lifetime. `WaitForHelpers`
            // below guarantees — even under unwinding — that `run` does
            // not return before every helper has finished with the
            // pointer, and helpers never touch a job from a past epoch.
            *job = Some(Job(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    f as *const _,
                )
            }));
            self.shared.epoch.fetch_add(1, Ordering::Release);
            self.shared.wake.notify_all();
        }
        let barrier = WaitForHelpers(&self.shared);
        f(0);
        drop(barrier);
        if let Some(message) = lock(&self.shared.panic).take() {
            panic!("pool worker panicked: {message}");
        }
    }
}

/// Completion barrier for [`WorkerPool::run`], enforced through `Drop`
/// so it holds even when the caller's share of the job panics.
struct WaitForHelpers<'a>(&'a PoolShared);

impl Drop for WaitForHelpers<'_> {
    fn drop(&mut self) {
        let mut spins = 0u32;
        while self.0.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                let guard = lock(&self.0.done_lock);
                if self.0.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Timed wait: immune to missed wakeups by construction.
                let _ = self.0.done.wait_timeout(guard, Duration::from_millis(1));
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = lock(&self.shared.job);
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn helper_loop(shared: &PoolShared, index: usize) {
    let mut seen = 0u64;
    loop {
        // Spin on the epoch, then park.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if shared.epoch.load(Ordering::Acquire) != seen {
                break;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                let guard = lock(&shared.job);
                if shared.epoch.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    // Timed wait: immune to missed wakeups.
                    let _ = shared.wake.wait_timeout(guard, Duration::from_millis(50));
                }
            }
        }
        seen = shared.epoch.load(Ordering::Acquire);
        let job = lock(&shared.job).expect("epoch advanced without a job");
        // SAFETY: `run` keeps the pointee alive until `remaining` hits
        // zero, which this helper only signals after the call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) }));
        if let Err(payload) = result {
            let mut slot = lock(&shared.panic);
            if slot.is_none() {
                *slot = Some(panic_payload_message(&*payload));
            }
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = lock(&shared.done_lock);
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| (i as u64) * 1000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Ok((i as u64) * 1000 + i as u64));
        }
    }

    #[test]
    fn panicking_item_is_isolated() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |i, &x| {
            if i == 17 {
                panic!("boom on {i}");
            }
            x * 2
        });
        std::panic::set_hook(prev);
        for (i, v) in out.iter().enumerate() {
            if i == 17 {
                let err = v.as_ref().unwrap_err();
                assert_eq!(err.index, 17);
                assert!(err.message.contains("boom on 17"), "{}", err.message);
            } else {
                assert_eq!(*v, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_worker_participates_once_per_run() {
        let pool = WorkerPool::new(4);
        for _ in 0..50 {
            let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|w| {
                seen[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, count) in seen.iter().enumerate() {
                assert_eq!(count.load(Ordering::Relaxed), 1, "worker {w}");
            }
        }
    }

    #[test]
    fn pool_splits_work_via_shared_cursor() {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        let cursor = AtomicUsize::new(0);
        pool.run(&|_| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            total.fetch_add(items[i], Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn helper_panic_is_reraised_and_pool_survives() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("helper exploded");
                }
            });
        }));
        std::panic::set_hook(prev);
        let message = panic_payload_message(&*result.unwrap_err());
        assert!(message.contains("helper exploded"), "{message}");
        // The pool is still usable after the panic round.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
