//! Cooperative cancellation, shared by every long-running COMET
//! process (the `comet-eval` harness and the `comet-serve` network
//! service).
//!
//! [`CancelToken`] is a cloneable atomic flag that workers poll between
//! units of work; [`install_sigint`] wires a token to Ctrl-C with the
//! conventional two-stage semantics (first SIGINT cancels cooperatively
//! so in-flight work drains, a second aborts the process immediately).
//! Both lived in `comet-eval` originally; they moved here so the eval
//! binary and the server share one implementation instead of a copy.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Remaining [`CancelToken::poll`] calls before auto-cancellation;
    /// only consulted when `budgeted` (the deterministic test mode).
    polls_left: AtomicI64,
    budgeted: bool,
}

/// A shared cooperative-cancellation flag. Clones share state; any
/// holder can [`cancel`](CancelToken::cancel) and every worker polling
/// the token observes it. Used by `comet-eval`'s `par_map_cancellable`
/// workers, the `comet-eval` Ctrl-C handler, and the `comet-serve`
/// accept loop / worker pool for graceful drain.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that cancels only when [`cancel`](CancelToken::cancel)
    /// is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                polls_left: AtomicI64::new(i64::MAX),
                budgeted: false,
            }),
        }
    }

    /// A token that additionally self-cancels after `n` worker polls —
    /// a deterministic stand-in for "Ctrl-C partway through a run" in
    /// tests (each worker polls once per item it claims).
    pub fn after_polls(n: u64) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                polls_left: AtomicI64::new(n.min(i64::MAX as u64) as i64),
                budgeted: true,
            }),
        }
    }

    /// Request cancellation. Idempotent; never blocks (safe to call
    /// from a signal handler).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested. Does not consume a
    /// poll-budget slot.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Worker-side check: consumes one slot of an
    /// [`after_polls`](CancelToken::after_polls) budget, then reports
    /// whether the token is cancelled.
    pub fn poll(&self) -> bool {
        if self.inner.budgeted && self.inner.polls_left.fetch_sub(1, Ordering::SeqCst) <= 0 {
            self.cancel();
        }
        self.is_cancelled()
    }
}

/// Install a SIGINT handler that trips `token` on the first Ctrl-C and
/// aborts the process on the second. Uses a raw `signal(2)` binding
/// (the handler only touches atomics, which is async-signal-safe) to
/// stay dependency-free.
///
/// Only the first installed token is honoured: the handler reads a
/// process-wide [`OnceLock`], so call this once, early, from the
/// binary's main thread. On non-Unix targets this is a no-op (graceful
/// interruption is a Unix-only affordance).
pub fn install_sigint(token: CancelToken) {
    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    let _ = TOKEN.set(token);

    extern "C" fn handle(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            if token.is_cancelled() {
                // Second Ctrl-C: the user wants out *now*.
                std::process::abort();
            }
            token.cancel();
        }
    }

    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        signal(SIGINT, handle as extern "C" fn(i32) as usize);
    }
    #[cfg(not(unix))]
    let _ = handle;
}

/// Install a SIGTERM handler that trips `token` (single-stage: an
/// orchestrator's TERM means "drain and exit", and it will escalate to
/// KILL itself if the drain stalls). Same raw-`signal(2)`,
/// first-token-wins mechanics as [`install_sigint`]; a no-op off Unix.
pub fn install_sigterm(token: CancelToken) {
    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    let _ = TOKEN.set(token);

    extern "C" fn handle(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        signal(SIGTERM, handle as extern "C" fn(i32) as usize);
    }
    #[cfg(not(unix))]
    let _ = handle;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(!token.poll());
    }

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert!(a.poll());
        a.cancel(); // idempotent
        assert!(b.is_cancelled());
    }

    #[test]
    fn budgeted_token_self_cancels_after_n_polls() {
        let token = CancelToken::after_polls(3);
        assert!(!token.poll());
        assert!(!token.poll());
        assert!(!token.poll());
        assert!(token.poll(), "fourth poll exhausts a 3-poll budget");
        assert!(token.is_cancelled());
    }

    #[test]
    fn is_cancelled_does_not_consume_budget() {
        let token = CancelToken::after_polls(1);
        for _ in 0..10 {
            assert!(!token.is_cancelled());
        }
        assert!(!token.poll());
        assert!(token.poll());
    }
}
