//! A std-only RCU / arc-swap cell for crash-safe model hot-swapping.
//!
//! [`SwapCell<T>`] holds one `Arc<T>` and supports two operations:
//! [`load`](SwapCell::load), which hands the caller its own `Arc`
//! clone of the current value, and [`swap`](SwapCell::swap), which
//! atomically publishes a replacement. Readers are lock-free — a load
//! is three atomic operations and never blocks, sleeps, or takes a
//! mutex — so the serving hot path can capture the current model on
//! every request without contending with swaps. Writers serialize on
//! an internal mutex (swaps are rare administrative events) and
//! reclaim the previous value once no in-flight load can still be
//! touching it.
//!
//! # Why not just `Mutex<Arc<T>>`?
//!
//! A mutex would make every request serialize on one cache line, and a
//! reader preempted inside the critical section would stall the whole
//! worker pool. The cell's readers never hold a lock, so a swap
//! landing mid-request cannot delay or be delayed by traffic — the
//! request simply keeps the `Arc` it captured, giving every in-flight
//! request one bitwise-consistent view (the serving layer stores the
//! `(version, model)` pair inside a single `T`, so the pair can never
//! tear).
//!
//! # Reclamation
//!
//! The cell owns one strong reference to the current value via a raw
//! pointer. A reader *pins* itself (one counter increment), loads the
//! pointer, bumps the value's strong count, and unpins. A writer that
//! swapped a value out must not drop the cell's reference while some
//! reader is between "loaded the pointer" and "bumped the count", so
//! it retires the old pointer and frees retired pointers only after
//! observing the pin counter at zero — a quiescent point after which
//! no reader can hold a stale pointer (pins and pointer loads are
//! `SeqCst`, so a reader pinned after the quiescent point must observe
//! the new pointer). If readers arrive too densely for the writer to
//! observe zero within a bounded spin, reclamation is deferred to the
//! next swap (or to drop); retired values cost one `Arc` each, bounded
//! by the number of swaps, so a swap storm degrades to a short leak-
//! until-quiescence rather than a stall or a use-after-free.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// How long a writer spins waiting for reader quiescence before
/// deferring reclamation to the next swap. Readers pin for tens of
/// nanoseconds, so this is generous; it exists only to bound writer
/// latency under a pathological read storm.
const RECLAIM_SPINS: u32 = 4096;

/// An atomically swappable `Arc<T>` with lock-free readers (see the
/// module docs for the design).
pub struct SwapCell<T> {
    /// The cell's strong reference to the current value, as
    /// `Arc::into_raw`.
    current: AtomicPtr<T>,
    /// Readers currently between pin and unpin.
    pinned: AtomicU64,
    /// Serializes writers; holds retired pointers (each owning one
    /// strong reference) awaiting reader quiescence.
    retired: Mutex<Vec<*const T>>,
}

// SAFETY: the raw pointers are only ever `Arc::into_raw` results, and
// the cell hands out plain `Arc<T>` clones, so the usual `Arc`
// bounds apply.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> SwapCell<T> {
        SwapCell {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            pinned: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Clone the current value. Lock-free: three atomic operations,
    /// no mutex, no spin. The returned `Arc` stays valid (and
    /// unchanging) for as long as the caller holds it, regardless of
    /// how many swaps land afterwards.
    pub fn load(&self) -> Arc<T> {
        self.pinned.fetch_add(1, SeqCst);
        let raw = self.current.load(SeqCst);
        // SAFETY: `raw` came from `Arc::into_raw` and its strong count
        // is ≥ 1 for the duration of this call: the cell's own
        // reference to it cannot be dropped while we are pinned — a
        // writer frees a retired pointer only after observing
        // `pinned == 0`, and our pin (SeqCst) precedes our pointer
        // load, so any writer that saw zero swapped the pointer before
        // we loaded it, meaning we are holding the *new* value.
        let arc = unsafe {
            Arc::increment_strong_count(raw);
            Arc::from_raw(raw)
        };
        self.pinned.fetch_sub(1, SeqCst);
        arc
    }

    /// Publish `value` and return the previously held value. Readers
    /// that already loaded the old value keep it; readers arriving
    /// after `swap` returns (and, on this thread, after the internal
    /// pointer swap) observe the new one. Writers serialize.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        let new_raw = Arc::into_raw(value) as *mut T;
        let old_raw = self.current.swap(new_raw, SeqCst);
        // SAFETY: the cell still owns a strong reference to `old_raw`
        // (it is retired below, not yet dropped), so the count is ≥ 1
        // and a clone for the caller is safe.
        let previous = unsafe {
            Arc::increment_strong_count(old_raw);
            Arc::from_raw(old_raw)
        };
        retired.push(old_raw as *const T);
        self.reclaim(&mut retired);
        previous
    }

    /// Publish `value`, discarding the previous value.
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }

    /// Drop retired references once no reader can still be touching
    /// them; defer (bounded by swap count) if quiescence is not
    /// observed within the spin budget.
    fn reclaim(&self, retired: &mut Vec<*const T>) {
        for spin in 0..RECLAIM_SPINS {
            if self.pinned.load(SeqCst) == 0 {
                for raw in retired.drain(..) {
                    // SAFETY: each retired pointer owns exactly one
                    // strong reference (the cell's former `current`
                    // reference), and the quiescent point guarantees
                    // no reader holds the raw pointer un-counted.
                    unsafe { drop(Arc::from_raw(raw)) };
                }
                return;
            }
            if spin < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers exist, so every retired reference
        // and the current one can be released unconditionally.
        let retired = self.retired.get_mut().unwrap_or_else(|p| p.into_inner());
        for raw in retired.drain(..) {
            // SAFETY: as in `reclaim`, each owns one strong reference.
            unsafe { drop(Arc::from_raw(raw)) };
        }
        // SAFETY: the cell's reference to the current value.
        unsafe { drop(Arc::from_raw(*self.current.get_mut())) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SwapCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    #[test]
    fn load_and_swap_round_trip() {
        let cell = SwapCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        let previous = cell.swap(Arc::new(2));
        assert_eq!(*previous, 1);
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn captured_values_survive_later_swaps() {
        let cell = SwapCell::new(Arc::new(10u64));
        let captured = cell.load();
        for v in 11..100 {
            cell.store(Arc::new(v));
        }
        assert_eq!(*captured, 10, "a captured Arc must never change underfoot");
        assert_eq!(*cell.load(), 99);
    }

    /// Every value the cell ever held is dropped exactly once — no
    /// leak, no double free — including values parked on the retired
    /// list when the cell itself drops.
    #[test]
    fn drop_accounting_is_exact() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(#[allow(dead_code)] u64);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }

        const SWAPS: u64 = 500;
        DROPS.store(0, Relaxed);
        {
            let cell = SwapCell::new(Arc::new(Tracked(0)));
            let held = cell.load(); // outlives some swaps
            for v in 1..=SWAPS {
                let previous = cell.swap(Arc::new(Tracked(v)));
                drop(previous);
                drop(cell.load());
            }
            drop(held);
        }
        assert_eq!(DROPS.load(Relaxed), SWAPS as usize + 1);
    }

    /// SplitMix64 — fills the payload deterministically from a version
    /// so torn reads are detectable.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Readers hammering `load` while a writer swaps continuously:
    /// every observed value must be internally consistent (payload
    /// derivable from its version) — the torn-read invariant the
    /// serving layer relies on.
    #[test]
    fn concurrent_loads_never_observe_torn_values() {
        struct Payload {
            version: u64,
            words: [u64; 8],
        }
        fn make(version: u64) -> Payload {
            Payload { version, words: std::array::from_fn(|i| mix(version ^ i as u64)) }
        }

        const WRITES: u64 = 2_000;
        let cell = Arc::new(SwapCell::new(Arc::new(make(0))));
        let stop = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_seen = 0u64;
                    while stop.load(Relaxed) == 0 {
                        let snapshot = cell.load();
                        let v = snapshot.version;
                        for (i, &word) in snapshot.words.iter().enumerate() {
                            assert_eq!(word, mix(v ^ i as u64), "torn payload at version {v}");
                        }
                        assert!(v >= last_seen, "versions went backwards: {last_seen} → {v}");
                        last_seen = v;
                    }
                });
            }
            for v in 1..=WRITES {
                cell.store(Arc::new(make(v)));
            }
            stop.store(1, Relaxed);
        });
        assert_eq!(cell.load().version, WRITES);
    }

    /// Writers from multiple threads serialize cleanly and the cell
    /// ends on one of their values.
    #[test]
    fn concurrent_writers_serialize() {
        let cell = Arc::new(SwapCell::new(Arc::new((0u64, 0u64))));
        std::thread::scope(|scope| {
            for t in 1..=4u64 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        cell.store(Arc::new((t, i)));
                    }
                });
            }
        });
        let (t, i) = *cell.load();
        assert!((1..=4).contains(&t));
        assert_eq!(i, 499, "the final write of some thread wins");
    }
}
