//! The basic-block perturbation algorithm Γ (paper §5.2, Algorithm 1,
//! Appendices C–D).
//!
//! Given a set of features to preserve, Γ randomly perturbs every other
//! feature independently:
//!
//! * *vertices* (instructions) are deleted (when η need not be
//!   preserved) or their opcode is replaced with another opcode
//!   accepting the same operands — opcodes with no valid replacement
//!   (`lea`) are retained, the paper's Appendix D case;
//! * *edges* (data dependencies) are broken by renaming the carrying
//!   operand registers to others of the same type and size, or by
//!   displacing the carrying memory address.
//!
//! Operand occurrences that carry a *preserved* dependency are
//! protected from renaming, and a post-check guarantees every preserved
//! feature survives in the emitted block (re-attempting the stochastic
//! choices when a rare interaction — e.g. an opcode replacement turning
//! a read into an interposing write — would violate one).
//!
//! # Hot path
//!
//! Γ runs once per model query — tens of thousands of times per
//! explanation — so the sampler has two entry points. The original
//! [`Perturber::perturb`] allocates a fresh [`PerturbedBlock`] per
//! call; [`Perturber::perturb_into`] instead writes into a caller-held
//! [`PerturbScratch`] (instruction buffers, protection tables, the
//! rebuilt block, and the surviving-feature bitmask), reaching zero
//! steady-state heap allocations. Both paths draw from the RNG in
//! exactly the same order, so seeded explanations are byte-identical
//! whichever entry point the caller uses.

use std::collections::HashSet;

#[cfg(test)]
use comet_graph::DepKind;
use comet_graph::{BlockGraph, DepConfig, DepEdge, EdgeSetScratch};
use comet_isa::{
    opcode_replacements, BasicBlock, Instruction, Opcode, Operand, RegClass, Register, Size,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bitset::{FeatureMask, FeaturePool};
use crate::feature::{extract_features, Feature, FeatureSet};

/// What counts as perturbing "the instruction feature" (paper
/// Appendix E.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementScheme {
    /// Only opcode changes perturb an instruction feature (the paper's
    /// default — higher explanation accuracy).
    OpcodeOnly,
    /// Operand renames (type- and size-preserving) also count as
    /// instruction perturbations.
    WholeInstruction,
}

/// Γ's stochastic parameters (defaults follow the paper's §6 settings
/// and Appendix E ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Probability of retaining a non-preserved instruction
    /// (`p_I,ret`, paper: 0.5).
    pub p_inst_retain: f64,
    /// Probability of *explicitly* retaining a non-preserved data
    /// dependency — the lower bound for `p_D,ret` (paper Appendix E.3:
    /// 0.1).
    pub p_dep_retain: f64,
    /// Probability that a perturbed instruction is deleted rather than
    /// replaced (`p_del`, paper Appendix E.2: 0.33).
    pub p_delete: f64,
    /// Instruction replacement scheme (paper Appendix E.4).
    pub scheme: ReplacementScheme,
}

impl Default for PerturbConfig {
    fn default() -> PerturbConfig {
        PerturbConfig {
            p_inst_retain: 0.5,
            p_dep_retain: 0.1,
            p_delete: 0.33,
            scheme: ReplacementScheme::OpcodeOnly,
        }
    }
}

/// A perturbed block together with the original-block features that
/// survive in it (used for both precision and coverage estimation).
#[derive(Debug, Clone)]
pub struct PerturbedBlock {
    /// The perturbed basic block (always valid).
    pub block: BasicBlock,
    /// Features of the *original* block still present.
    pub surviving: FeatureSet,
}

/// Caller-held scratch for [`Perturber::perturb_into`].
///
/// Holds every buffer one perturbation sample needs — the working
/// instruction slots, protection tables, the rebuilt output block, the
/// dependency-analysis scratch, and the surviving-feature bitmask — so
/// repeated sampling reuses warm allocations instead of rebuilding a
/// fresh block graph per sample. Create one per sampling loop with
/// [`Perturber::make_scratch`]; it is tied to that perturber's block
/// and feature pool.
#[derive(Debug, Clone)]
pub struct PerturbScratch {
    insts: Vec<Instruction>,
    alive: Vec<bool>,
    keep_opcode: Vec<bool>,
    opcode_changed: Vec<bool>,
    operands_changed: Vec<bool>,
    protected_regs: HashSet<(usize, Register)>,
    protected_mem: HashSet<usize>,
    new_index: Vec<usize>,
    block: BasicBlock,
    surviving: FeatureMask,
    edges: EdgeSetScratch,
    reg_candidates: Vec<Register>,
    reg_fresh: Vec<Register>,
    rename_positions: Vec<usize>,
    rename_choices: Vec<Register>,
}

impl PerturbScratch {
    /// The perturbed block produced by the last
    /// [`Perturber::perturb_into`] call.
    pub fn block(&self) -> &BasicBlock {
        &self.block
    }

    /// The surviving-feature mask (over the perturber's
    /// [`FeaturePool`]) of the last [`Perturber::perturb_into`] call.
    pub fn surviving(&self) -> &FeatureMask {
        &self.surviving
    }
}

/// The perturbation sampler for one target block.
#[derive(Debug, Clone)]
pub struct Perturber<'a> {
    block: &'a BasicBlock,
    graph: BlockGraph,
    pool: FeaturePool,
    /// Per-instruction opcode replacement candidates, precomputed once
    /// (they depend only on the original instruction).
    replacements: Vec<Vec<Opcode>>,
    config: PerturbConfig,
}

const MAX_ATTEMPTS: usize = 8;

impl<'a> Perturber<'a> {
    /// Build a perturber (analyzes the block's multigraph once).
    pub fn new(block: &'a BasicBlock, config: PerturbConfig) -> Perturber<'a> {
        let graph = BlockGraph::build(block);
        let pool = FeaturePool::new(extract_features(block, &graph));
        // The pool's index layout is positional: instruction `i` at
        // index `i`, edge `j` (in graph order) at `block.len() + j`, η
        // last. `extract_features` guarantees this; the edge loop and
        // survival check rely on it.
        debug_assert!(graph.edges().iter().enumerate().all(|(j, e)| {
            pool.feature(block.len() + j)
                == Feature::Dependency { kind: e.kind, src: e.src, dst: e.dst }
        }));
        debug_assert_eq!(pool.feature(pool.len() - 1), Feature::NumInstructions);
        let replacements = block.iter().map(opcode_replacements).collect();
        Perturber { block, graph, pool, replacements, config }
    }

    /// The target block.
    pub fn block(&self) -> &BasicBlock {
        self.block
    }

    /// The block's multigraph.
    pub fn graph(&self) -> &BlockGraph {
        &self.graph
    }

    /// The candidate features P̂ of the block.
    pub fn features(&self) -> &[Feature] {
        self.pool.features()
    }

    /// The interned feature pool (P̂ in dense index space).
    pub fn pool(&self) -> &FeaturePool {
        &self.pool
    }

    /// The configuration in use.
    pub fn config(&self) -> &PerturbConfig {
        &self.config
    }

    /// Allocate scratch buffers for [`Perturber::perturb_into`].
    pub fn make_scratch(&self) -> PerturbScratch {
        let n = self.block.len();
        PerturbScratch {
            insts: self.block.instructions().to_vec(),
            alive: vec![true; n],
            keep_opcode: vec![false; n],
            opcode_changed: vec![false; n],
            operands_changed: vec![false; n],
            protected_regs: HashSet::new(),
            protected_mem: HashSet::new(),
            new_index: vec![0; n],
            block: self.block.clone(),
            surviving: self.pool.empty_mask(),
            edges: EdgeSetScratch::new(),
            reg_candidates: Vec::new(),
            reg_fresh: Vec::new(),
            rename_positions: Vec::new(),
            rename_choices: Vec::new(),
        }
    }

    /// Sample one perturbation that preserves `preserve` (β′ ~ D_F).
    ///
    /// Preserved features are guaranteed to be in
    /// [`PerturbedBlock::surviving`]; on the rare stochastic
    /// interactions that would violate one, the draw is retried, and
    /// after [`MAX_ATTEMPTS`] the unperturbed block is returned (the
    /// identity perturbation — β ∈ Π(F) by definition).
    ///
    /// Allocating wrapper around [`Perturber::perturb_into`]; sampling
    /// loops should hold a [`PerturbScratch`] and call that instead.
    pub fn perturb<R: Rng>(&self, preserve: &FeatureSet, rng: &mut R) -> PerturbedBlock {
        debug_assert!(
            preserve.iter().all(|f| self.pool.index_of(f).is_some()),
            "preserve set contains features not in the block"
        );
        let mask = self.pool.mask_of(preserve);
        let mut scratch = self.make_scratch();
        self.perturb_into(&mask, rng, &mut scratch);
        PerturbedBlock {
            block: scratch.block.clone(),
            surviving: self.pool.set_of(&scratch.surviving),
        }
    }

    /// Allocation-free [`Perturber::perturb`]: the perturbed block and
    /// surviving-feature mask are written into `scratch`
    /// ([`PerturbScratch::block`], [`PerturbScratch::surviving`]).
    /// `preserve` is a mask over [`Perturber::pool`]. Draws from the
    /// RNG in exactly the same order as `perturb`, so the two are
    /// interchangeable under a fixed seed.
    pub fn perturb_into<R: Rng>(
        &self,
        preserve: &FeatureMask,
        rng: &mut R,
        scratch: &mut PerturbScratch,
    ) {
        for _ in 0..MAX_ATTEMPTS {
            self.attempt_into(preserve, rng, scratch);
            if preserve.is_subset(&scratch.surviving) {
                return;
            }
        }
        // Identity perturbation: the original block, all features
        // surviving (β ∈ Π(F) by definition).
        scratch.block.rebuild_from(self.block.iter()).expect("original block is non-empty");
        scratch.surviving.fill_to(self.pool.len());
    }

    fn attempt_into<R: Rng>(&self, preserve: &FeatureMask, rng: &mut R, s: &mut PerturbScratch) {
        let n = self.block.len();
        let eta_index = self.pool.len() - 1;
        let preserve_eta = preserve.contains(eta_index);

        // Vertices whose opcode (and, for preserved dependencies, whose
        // carrying operands) must stay intact.
        s.keep_opcode.fill(false);
        s.protected_regs.clear();
        s.protected_mem.clear();
        for index in preserve.iter() {
            match self.pool.feature(index) {
                Feature::Instruction(i) => {
                    s.keep_opcode[i] = true;
                    if self.config.scheme == ReplacementScheme::WholeInstruction {
                        protect_instruction(
                            self.block,
                            i,
                            &mut s.protected_regs,
                            &mut s.protected_mem,
                        );
                    }
                }
                Feature::Dependency { kind, src, dst } => {
                    s.keep_opcode[src] = true;
                    s.keep_opcode[dst] = true;
                    if let Some(edge) = self.graph.find_edge(kind, src, dst) {
                        for reg in edge.cause_registers() {
                            s.protected_regs.insert((src, reg.full()));
                            s.protected_regs.insert((dst, reg.full()));
                        }
                        if edge.has_memory_cause() {
                            s.protected_mem.insert(src);
                            s.protected_mem.insert(dst);
                        }
                    }
                }
                Feature::NumInstructions => {}
            }
        }

        // --- vertex perturbations -----------------------------------
        for (i, original) in self.block.iter().enumerate() {
            s.insts[i].clone_from(original);
            s.alive[i] = true;
            s.opcode_changed[i] = false;
            s.operands_changed[i] = false;
        }
        for i in 0..n {
            if s.keep_opcode[i] || rng.gen::<f64>() < self.config.p_inst_retain {
                continue;
            }
            if !preserve_eta && rng.gen::<f64>() < self.config.p_delete {
                s.alive[i] = false;
                continue;
            }
            if let Some(&new_opcode) = self.replacements[i].choose(rng) {
                s.insts[i].opcode = new_opcode;
                s.opcode_changed[i] = true;
            }
            // Under the whole-instruction scheme, operand renames are
            // part of instruction perturbation as well.
            if self.config.scheme == ReplacementScheme::WholeInstruction && rng.gen_bool(0.5) {
                let renamed = rename_random_operand(
                    &mut s.insts[i],
                    i,
                    &s.protected_regs,
                    rng,
                    &mut s.rename_positions,
                    &mut s.rename_choices,
                );
                if renamed {
                    s.operands_changed[i] = true;
                }
            }
        }

        // --- edge perturbations --------------------------------------
        for (j, edge) in self.graph.edges().iter().enumerate() {
            if preserve.contains(n + j) {
                continue;
            }
            if !s.alive[edge.src] || !s.alive[edge.dst] {
                continue; // already gone with its vertex
            }
            if rng.gen::<f64>() < self.config.p_dep_retain {
                continue; // explicit retention
            }
            break_edge(edge, s, rng);
        }

        // --- rebuild & survival --------------------------------------
        let mut new_len = 0;
        for i in 0..n {
            if s.alive[i] {
                s.new_index[i] = new_len;
                new_len += 1;
            }
        }
        if new_len == 0 {
            // Blocks must be non-empty; retain the first instruction.
            s.insts[0].clone_from(&self.block.instructions()[0]);
            s.alive[0] = true;
            s.opcode_changed[0] = false;
            s.operands_changed[0] = false;
            s.new_index[0] = 0;
            new_len = 1;
        }
        // Invariant: at least one instruction is alive (backfilled
        // above) and every instruction came from a valid block,
        // possibly with operands renamed within their register class —
        // still well-formed.
        let kept = s.insts.iter().zip(&s.alive).filter_map(|(inst, &a)| a.then_some(inst));
        s.block.rebuild_from(kept).expect("perturbation produced an invalid block");
        s.edges.compute(&s.block, DepConfig::default());

        s.surviving.clear();
        for (index, feature) in self.pool.features().iter().enumerate() {
            let present = match *feature {
                Feature::Instruction(i) => {
                    s.alive[i]
                        && !s.opcode_changed[i]
                        && (self.config.scheme == ReplacementScheme::OpcodeOnly
                            || !s.operands_changed[i])
                }
                Feature::Dependency { kind, src, dst } => {
                    s.alive[src]
                        && s.alive[dst]
                        && s.edges.contains(kind, s.new_index[src], s.new_index[dst])
                }
                Feature::NumInstructions => new_len == n,
            };
            if present {
                s.surviving.insert(index);
            }
        }
    }
}

/// Break one dependency edge by perturbing the carrying operands of
/// the consumer instruction. Protected occurrences are skipped, so
/// a break attempt can fail (implicit retention — the paper's
/// block-specific probability effect, Appendix D).
fn break_edge<R: Rng>(edge: &DepEdge, s: &mut PerturbScratch, rng: &mut R) {
    for cause in edge.cause_registers() {
        let full = cause.full();
        if s.protected_regs.contains(&(edge.dst, full)) {
            continue;
        }
        let replacement = pick_replacement_register(
            full,
            &s.insts,
            &s.alive,
            &mut s.reg_candidates,
            &mut s.reg_fresh,
            rng,
        );
        rename_register(&mut s.insts[edge.dst], full, replacement);
    }
    if edge.has_memory_cause() && !s.protected_mem.contains(&edge.dst) {
        displace_memory(&mut s.insts[edge.dst], 64 * (1 + rng.gen_range(0..4)));
    }
}

/// Bit position of an architectural register in the 32-bit used-set
/// bitmap: 16 GPRs then 16 vector registers, by hardware index.
fn reg_bit(full: Register) -> u32 {
    let class_base = match full.class() {
        RegClass::Gpr => 0,
        RegClass::Vec => 16,
    };
    1u32 << (class_base + u32::from(full.index()))
}

/// Choose a register of the same class to substitute for `full`,
/// preferring registers unused anywhere in the current block so no
/// new dependencies form. The used set is a 32-bit bitmap (the two
/// register files have 16 names each), so the block scan is a few OR
/// instructions per operand; `candidates`/`fresh` are scratch buffers,
/// cleared and refilled each call.
fn pick_replacement_register<R: Rng>(
    full: Register,
    insts: &[Instruction],
    alive: &[bool],
    candidates: &mut Vec<Register>,
    fresh: &mut Vec<Register>,
    rng: &mut R,
) -> Register {
    let mut used = 0u32;
    for (inst, &live) in insts.iter().zip(alive) {
        if !live {
            continue;
        }
        for operand in &inst.operands {
            match operand {
                Operand::Reg(r) => used |= reg_bit(r.full()),
                Operand::Mem(m) => {
                    for r in m.address_registers() {
                        used |= reg_bit(r.full());
                    }
                }
                Operand::Imm(_) => {}
            }
        }
    }
    let full_size = match full.class() {
        RegClass::Gpr => Size::B64,
        RegClass::Vec => Size::B256,
    };
    candidates.clear();
    candidates.extend(
        Register::all(full.class(), full_size).filter(|r| *r != full && !r.is_stack_pointer()),
    );
    fresh.clear();
    fresh.extend(candidates.iter().copied().filter(|r| used & reg_bit(*r) == 0));
    // Invariant: both register classes have ≥ 15 members besides
    // `full` and the stack pointer, so `candidates` is never empty.
    *fresh.choose(rng).or_else(|| candidates.choose(rng)).expect("register file exhausted")
}

/// Protect every register and memory operand of an instruction.
fn protect_instruction(
    block: &BasicBlock,
    index: usize,
    protected_regs: &mut HashSet<(usize, Register)>,
    protected_mem: &mut HashSet<usize>,
) {
    for operand in &block.instructions()[index].operands {
        match operand {
            Operand::Reg(r) => {
                protected_regs.insert((index, r.full()));
            }
            Operand::Mem(m) => {
                protected_mem.insert(index);
                for r in m.address_registers() {
                    protected_regs.insert((index, r.full()));
                }
            }
            Operand::Imm(_) => {}
        }
    }
}

/// Substitute every occurrence of the architectural register `full`
/// (at any width) in the instruction by the same-width view of
/// `replacement`.
fn rename_register(inst: &mut Instruction, full: Register, replacement: Register) {
    let swap = |reg: Register| -> Register {
        if reg.full() == full {
            replacement.with_size(reg.size()).unwrap_or(reg)
        } else {
            reg
        }
    };
    for operand in &mut inst.operands {
        match operand {
            Operand::Reg(r) => *r = swap(*r),
            Operand::Mem(m) => {
                m.base = m.base.map(swap);
                m.index = m.index.map(swap);
            }
            Operand::Imm(_) => {}
        }
    }
}

/// Shift the instruction's memory operand by `delta` bytes, breaking
/// address-carried dependencies.
fn displace_memory(inst: &mut Instruction, delta: i64) {
    for operand in &mut inst.operands {
        if let Operand::Mem(m) = operand {
            m.disp += delta;
        }
    }
}

/// Rename one random non-protected register operand to another of the
/// same class and size. Returns whether a rename happened. The
/// `positions`/`choices` buffers are scratch, cleared each call.
fn rename_random_operand<R: Rng>(
    inst: &mut Instruction,
    index: usize,
    protected_regs: &HashSet<(usize, Register)>,
    rng: &mut R,
    positions: &mut Vec<usize>,
    choices: &mut Vec<Register>,
) -> bool {
    positions.clear();
    positions.extend(inst.operands.iter().enumerate().filter_map(|(pos, op)| match op {
        Operand::Reg(r)
            if !protected_regs.contains(&(index, r.full())) && !r.is_stack_pointer() =>
        {
            Some(pos)
        }
        _ => None,
    }));
    let Some(&pos) = positions.choose(rng) else {
        return false;
    };
    let Operand::Reg(old) = inst.operands[pos] else { unreachable!() };
    choices.clear();
    choices.extend(
        Register::all(old.class(), old.size()).filter(|r| *r != old && !r.is_stack_pointer()),
    );
    if let Some(&new) = choices.choose(rng) {
        inst.operands[pos] = Operand::Reg(new);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn feature_dep(kind: DepKind, src: usize, dst: usize) -> Feature {
        Feature::Dependency { kind, src, dst }
    }

    #[test]
    fn preserved_features_always_survive() {
        let block = parse_block(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
        )
        .unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let all_features: Vec<Feature> = perturber.features().to_vec();
        for feature in all_features {
            let mut preserve = FeatureSet::new();
            preserve.insert(feature);
            for _ in 0..50 {
                let result = perturber.perturb(&preserve, &mut rng);
                assert!(
                    preserve.is_subset(&result.surviving),
                    "{feature} lost in:\n{}",
                    result.block
                );
                assert!(result.block.is_valid());
            }
        }
    }

    #[test]
    fn empty_preserve_set_produces_diverse_blocks() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut distinct = HashSet::new();
        for _ in 0..200 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            distinct.insert(result.block.to_string());
        }
        assert!(distinct.len() > 40, "only {} distinct perturbations", distinct.len());
    }

    #[test]
    fn eta_preservation_fixes_length() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut preserve = FeatureSet::new();
        preserve.insert(Feature::NumInstructions);
        for _ in 0..100 {
            let result = perturber.perturb(&preserve, &mut rng);
            assert_eq!(result.block.len(), 4);
        }
        // And without it, deletions happen.
        let mut shrunk = false;
        for _ in 0..100 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            shrunk |= result.block.len() < 4;
        }
        assert!(shrunk, "no deletion in 100 free perturbations");
    }

    #[test]
    fn preserved_dependency_keeps_endpoint_opcodes() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut preserve = FeatureSet::new();
        preserve.insert(feature_dep(DepKind::Raw, 0, 1));
        for _ in 0..100 {
            let result = perturber.perturb(&preserve, &mut rng);
            // Endpoints' opcodes must be intact (positions may shift
            // only if earlier instructions were deleted; here 0 and 1
            // are the first two).
            assert_eq!(result.block.instructions()[0].opcode.name(), "add");
            assert_eq!(result.block.instructions()[1].opcode.name(), "mov");
        }
    }

    #[test]
    fn dependencies_get_broken_when_not_preserved() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let dep = feature_dep(DepKind::Raw, 0, 1);
        let mut broken = 0;
        let trials = 200;
        for _ in 0..trials {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            if !result.surviving.contains(&dep) {
                broken += 1;
            }
        }
        assert!(broken > trials / 3, "dependency broken only {broken}/{trials} times");
    }

    #[test]
    fn lea_is_never_replaced() {
        let block = parse_block("lea rdx, [rax + 1]\nadd rcx, rdx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            for inst in &result.block {
                if inst.mem_operand().is_some() && inst.opcode.name() == "lea" {
                    // fine: lea retained
                }
            }
            // If instruction 0 survived, it must still be a lea.
            if result.block.len() == 2 {
                assert_eq!(result.block.instructions()[0].opcode.name(), "lea");
            }
        }
    }

    #[test]
    fn perturbations_are_reproducible_per_seed() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let a = perturber.perturb(&FeatureSet::new(), &mut StdRng::seed_from_u64(9));
        let b = perturber.perturb(&FeatureSet::new(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.block, b.block);
        assert_eq!(a.surviving, b.surviving);
    }

    /// The scratch entry point and the allocating wrapper must consume
    /// the RNG identically and agree on block + surviving set, for
    /// every preserve set — this is the determinism contract that lets
    /// the explainer use the scratch path without changing seeded
    /// output.
    #[test]
    fn scratch_path_matches_allocating_path() {
        let block = parse_block(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
        )
        .unwrap();
        for scheme in [ReplacementScheme::OpcodeOnly, ReplacementScheme::WholeInstruction] {
            let config = PerturbConfig { scheme, ..PerturbConfig::default() };
            let perturber = Perturber::new(&block, config);
            let mut scratch = perturber.make_scratch();
            let mut preserve_sets: Vec<FeatureSet> = vec![FeatureSet::new()];
            preserve_sets.extend(perturber.features().iter().map(|&f| [f].into_iter().collect()));
            for (i, preserve) in preserve_sets.iter().enumerate() {
                let mask = perturber.pool().mask_of(preserve);
                let mut rng_a = StdRng::seed_from_u64(1000 + i as u64);
                let mut rng_b = StdRng::seed_from_u64(1000 + i as u64);
                for _ in 0..20 {
                    let via_wrapper = perturber.perturb(preserve, &mut rng_a);
                    perturber.perturb_into(&mask, &mut rng_b, &mut scratch);
                    assert_eq!(via_wrapper.block, *scratch.block(), "preserve {preserve:?}");
                    assert_eq!(
                        via_wrapper.surviving,
                        perturber.pool().set_of(scratch.surviving()),
                        "preserve {preserve:?}"
                    );
                    // The streams must stay aligned, not just start so.
                    assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
                }
            }
        }
    }

    #[test]
    fn whole_instruction_scheme_perturbs_operands() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\nsub r9, r10\nxor r11, r12").unwrap();
        let config =
            PerturbConfig { scheme: ReplacementScheme::WholeInstruction, ..Default::default() };
        let perturber = Perturber::new(&block, config);
        let mut rng = StdRng::seed_from_u64(6);
        let mut operand_changes = 0;
        for _ in 0..200 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            // Count perturbed blocks where some surviving-length
            // instruction has different operands but same opcode count.
            if result.block.len() == block.len() {
                for (orig, new) in block.iter().zip(&result.block) {
                    if orig.opcode == new.opcode && orig.operands != new.operands {
                        operand_changes += 1;
                        break;
                    }
                }
            }
        }
        assert!(operand_changes > 5, "got {operand_changes}");
    }
}
