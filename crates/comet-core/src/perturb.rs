//! The basic-block perturbation algorithm Γ (paper §5.2, Algorithm 1,
//! Appendices C–D).
//!
//! Given a set of features to preserve, Γ randomly perturbs every other
//! feature independently:
//!
//! * *vertices* (instructions) are deleted (when η need not be
//!   preserved) or their opcode is replaced with another opcode
//!   accepting the same operands — opcodes with no valid replacement
//!   (`lea`) are retained, the paper's Appendix D case;
//! * *edges* (data dependencies) are broken by renaming the carrying
//!   operand registers to others of the same type and size, or by
//!   displacing the carrying memory address.
//!
//! Operand occurrences that carry a *preserved* dependency are
//! protected from renaming, and a post-check guarantees every preserved
//! feature survives in the emitted block (re-attempting the stochastic
//! choices when a rare interaction — e.g. an opcode replacement turning
//! a read into an interposing write — would violate one).

use std::collections::{HashMap, HashSet};

use comet_graph::{BlockGraph, DepEdge};
#[cfg(test)]
use comet_graph::DepKind;
use comet_isa::{
    opcode_replacements, BasicBlock, Instruction, Operand, RegClass, Register, Size,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::feature::{extract_features, Feature, FeatureSet};

/// What counts as perturbing "the instruction feature" (paper
/// Appendix E.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementScheme {
    /// Only opcode changes perturb an instruction feature (the paper's
    /// default — higher explanation accuracy).
    OpcodeOnly,
    /// Operand renames (type- and size-preserving) also count as
    /// instruction perturbations.
    WholeInstruction,
}

/// Γ's stochastic parameters (defaults follow the paper's §6 settings
/// and Appendix E ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Probability of retaining a non-preserved instruction
    /// (`p_I,ret`, paper: 0.5).
    pub p_inst_retain: f64,
    /// Probability of *explicitly* retaining a non-preserved data
    /// dependency — the lower bound for `p_D,ret` (paper Appendix E.3:
    /// 0.1).
    pub p_dep_retain: f64,
    /// Probability that a perturbed instruction is deleted rather than
    /// replaced (`p_del`, paper Appendix E.2: 0.33).
    pub p_delete: f64,
    /// Instruction replacement scheme (paper Appendix E.4).
    pub scheme: ReplacementScheme,
}

impl Default for PerturbConfig {
    fn default() -> PerturbConfig {
        PerturbConfig {
            p_inst_retain: 0.5,
            p_dep_retain: 0.1,
            p_delete: 0.33,
            scheme: ReplacementScheme::OpcodeOnly,
        }
    }
}

/// A perturbed block together with the original-block features that
/// survive in it (used for both precision and coverage estimation).
#[derive(Debug, Clone)]
pub struct PerturbedBlock {
    /// The perturbed basic block (always valid).
    pub block: BasicBlock,
    /// Features of the *original* block still present.
    pub surviving: FeatureSet,
}

/// The perturbation sampler for one target block.
#[derive(Debug, Clone)]
pub struct Perturber<'a> {
    block: &'a BasicBlock,
    graph: BlockGraph,
    features: Vec<Feature>,
    config: PerturbConfig,
}

const MAX_ATTEMPTS: usize = 8;

impl<'a> Perturber<'a> {
    /// Build a perturber (analyzes the block's multigraph once).
    pub fn new(block: &'a BasicBlock, config: PerturbConfig) -> Perturber<'a> {
        let graph = BlockGraph::build(block);
        let features = extract_features(block, &graph);
        Perturber { block, graph, features, config }
    }

    /// The target block.
    pub fn block(&self) -> &BasicBlock {
        self.block
    }

    /// The block's multigraph.
    pub fn graph(&self) -> &BlockGraph {
        &self.graph
    }

    /// The candidate features P̂ of the block.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The configuration in use.
    pub fn config(&self) -> &PerturbConfig {
        &self.config
    }

    /// Sample one perturbation that preserves `preserve` (β′ ~ D_F).
    ///
    /// Preserved features are guaranteed to be in
    /// [`PerturbedBlock::surviving`]; on the rare stochastic
    /// interactions that would violate one, the draw is retried, and
    /// after [`MAX_ATTEMPTS`] the unperturbed block is returned (the
    /// identity perturbation — β ∈ Π(F) by definition).
    pub fn perturb<R: Rng>(&self, preserve: &FeatureSet, rng: &mut R) -> PerturbedBlock {
        debug_assert!(
            preserve.iter().all(|f| self.features.contains(f)),
            "preserve set contains features not in the block"
        );
        for _ in 0..MAX_ATTEMPTS {
            let candidate = self.attempt(preserve, rng);
            if preserve.is_subset(&candidate.surviving) {
                return candidate;
            }
        }
        PerturbedBlock {
            block: self.block.clone(),
            surviving: self.features.iter().copied().collect(),
        }
    }

    fn attempt<R: Rng>(&self, preserve: &FeatureSet, rng: &mut R) -> PerturbedBlock {
        let n = self.block.len();
        let preserve_eta = preserve.contains(&Feature::NumInstructions);

        // Vertices whose opcode (and, for preserved dependencies, whose
        // carrying operands) must stay intact.
        let mut keep_opcode = vec![false; n];
        let mut protected_regs: HashSet<(usize, Register)> = HashSet::new();
        let mut protected_mem: HashSet<usize> = HashSet::new();
        for feature in preserve {
            match *feature {
                Feature::Instruction(i) => {
                    keep_opcode[i] = true;
                    if self.config.scheme == ReplacementScheme::WholeInstruction {
                        protect_instruction(self.block, i, &mut protected_regs, &mut protected_mem);
                    }
                }
                Feature::Dependency { kind, src, dst } => {
                    keep_opcode[src] = true;
                    keep_opcode[dst] = true;
                    if let Some(edge) = self.graph.find_edge(kind, src, dst) {
                        for reg in edge.cause_registers() {
                            protected_regs.insert((src, reg.full()));
                            protected_regs.insert((dst, reg.full()));
                        }
                        if edge.has_memory_cause() {
                            protected_mem.insert(src);
                            protected_mem.insert(dst);
                        }
                    }
                }
                Feature::NumInstructions => {}
            }
        }

        // --- vertex perturbations -----------------------------------
        let mut insts: Vec<Option<Instruction>> =
            self.block.iter().cloned().map(Some).collect();
        let mut opcode_changed = vec![false; n];
        let mut operands_changed = vec![false; n];
        for i in 0..n {
            if keep_opcode[i] || rng.gen::<f64>() < self.config.p_inst_retain {
                continue;
            }
            if !preserve_eta && rng.gen::<f64>() < self.config.p_delete {
                insts[i] = None;
                continue;
            }
            // Invariant: the delete branch above `continue`s, so slot
            // `i` still holds its instruction here.
            let inst = insts[i].as_mut().expect("vertex not yet deleted");
            let candidates = opcode_replacements(inst);
            if let Some(&new_opcode) = candidates.choose(rng) {
                inst.opcode = new_opcode;
                opcode_changed[i] = true;
            }
            // Under the whole-instruction scheme, operand renames are
            // part of instruction perturbation as well.
            if self.config.scheme == ReplacementScheme::WholeInstruction && rng.gen_bool(0.5) {
                // Invariant: same slot as `inst` above — still occupied.
                if rename_random_operand(insts[i].as_mut().unwrap(), i, &protected_regs, rng) {
                    operands_changed[i] = true;
                }
            }
        }

        // --- edge perturbations --------------------------------------
        for edge in self.graph.edges() {
            let id = Feature::Dependency { kind: edge.kind, src: edge.src, dst: edge.dst };
            if preserve.contains(&id) {
                continue;
            }
            if insts[edge.src].is_none() || insts[edge.dst].is_none() {
                continue; // already gone with its vertex
            }
            if rng.gen::<f64>() < self.config.p_dep_retain {
                continue; // explicit retention
            }
            self.break_edge(edge, &mut insts, &protected_regs, &protected_mem, rng);
        }

        // --- rebuild & survival --------------------------------------
        let mut index_map: HashMap<usize, usize> = HashMap::new();
        let mut kept = Vec::new();
        for (i, inst) in insts.into_iter().enumerate() {
            if let Some(inst) = inst {
                index_map.insert(i, kept.len());
                kept.push(inst);
            }
        }
        if kept.is_empty() {
            // Blocks must be non-empty; retain the first instruction.
            index_map.insert(0, 0);
            kept.push(self.block.instructions()[0].clone());
            opcode_changed[0] = false;
            operands_changed[0] = false;
        }
        let new_len = kept.len();
        // Invariant: `kept` is non-empty (backfilled above) and every
        // instruction came from a valid block, possibly with operands
        // renamed within their register class — still well-formed.
        let block = BasicBlock::new(kept).expect("perturbation produced an invalid block");
        let new_graph = BlockGraph::build(&block);

        let mut surviving = FeatureSet::new();
        for feature in &self.features {
            let present = match *feature {
                Feature::Instruction(i) => match index_map.get(&i) {
                    Some(_) => {
                        !opcode_changed[i]
                            && (self.config.scheme == ReplacementScheme::OpcodeOnly
                                || !operands_changed[i])
                    }
                    None => false,
                },
                Feature::Dependency { kind, src, dst } => {
                    match (index_map.get(&src), index_map.get(&dst)) {
                        (Some(&s), Some(&d)) => new_graph.find_edge(kind, s, d).is_some(),
                        _ => false,
                    }
                }
                Feature::NumInstructions => new_len == n,
            };
            if present {
                surviving.insert(*feature);
            }
        }
        PerturbedBlock { block, surviving }
    }

    /// Break one dependency edge by perturbing the carrying operands of
    /// the consumer instruction. Protected occurrences are skipped, so
    /// a break attempt can fail (implicit retention — the paper's
    /// block-specific probability effect, Appendix D).
    fn break_edge<R: Rng>(
        &self,
        edge: &DepEdge,
        insts: &mut [Option<Instruction>],
        protected_regs: &HashSet<(usize, Register)>,
        protected_mem: &HashSet<usize>,
        rng: &mut R,
    ) {
        for cause in edge.cause_registers() {
            let full = cause.full();
            if protected_regs.contains(&(edge.dst, full)) {
                continue;
            }
            let replacement = self.pick_replacement_register(full, insts, rng);
            if let Some(inst) = insts[edge.dst].as_mut() {
                rename_register(inst, full, replacement);
            }
        }
        if edge.has_memory_cause() && !protected_mem.contains(&edge.dst) {
            if let Some(inst) = insts[edge.dst].as_mut() {
                displace_memory(inst, 64 * (1 + rng.gen_range(0..4)));
            }
        }
    }

    /// Choose a register of the same class to substitute for `full`,
    /// preferring registers unused anywhere in the current block so no
    /// new dependencies form.
    fn pick_replacement_register<R: Rng>(
        &self,
        full: Register,
        insts: &[Option<Instruction>],
        rng: &mut R,
    ) -> Register {
        let mut used: HashSet<Register> = HashSet::new();
        for inst in insts.iter().flatten() {
            for operand in &inst.operands {
                match operand {
                    Operand::Reg(r) => {
                        used.insert(r.full());
                    }
                    Operand::Mem(m) => used.extend(m.address_registers().map(Register::full)),
                    Operand::Imm(_) => {}
                }
            }
        }
        let full_size = match full.class() {
            RegClass::Gpr => Size::B64,
            RegClass::Vec => Size::B256,
        };
        let candidates: Vec<Register> = Register::all(full.class(), full_size)
            .filter(|r| *r != full && !r.is_stack_pointer())
            .collect();
        let fresh: Vec<Register> =
            candidates.iter().copied().filter(|r| !used.contains(r)).collect();
        // Invariant: both register classes have ≥ 15 members besides
        // `full` and the stack pointer, so `candidates` is never empty.
        *fresh
            .choose(rng)
            .or_else(|| candidates.choose(rng))
            .expect("register file exhausted")
    }
}

/// Protect every register and memory operand of an instruction.
fn protect_instruction(
    block: &BasicBlock,
    index: usize,
    protected_regs: &mut HashSet<(usize, Register)>,
    protected_mem: &mut HashSet<usize>,
) {
    for operand in &block.instructions()[index].operands {
        match operand {
            Operand::Reg(r) => {
                protected_regs.insert((index, r.full()));
            }
            Operand::Mem(m) => {
                protected_mem.insert(index);
                for r in m.address_registers() {
                    protected_regs.insert((index, r.full()));
                }
            }
            Operand::Imm(_) => {}
        }
    }
}

/// Substitute every occurrence of the architectural register `full`
/// (at any width) in the instruction by the same-width view of
/// `replacement`.
fn rename_register(inst: &mut Instruction, full: Register, replacement: Register) {
    let swap = |reg: Register| -> Register {
        if reg.full() == full {
            replacement.with_size(reg.size()).unwrap_or(reg)
        } else {
            reg
        }
    };
    for operand in &mut inst.operands {
        match operand {
            Operand::Reg(r) => *r = swap(*r),
            Operand::Mem(m) => {
                m.base = m.base.map(swap);
                m.index = m.index.map(swap);
            }
            Operand::Imm(_) => {}
        }
    }
}

/// Shift the instruction's memory operand by `delta` bytes, breaking
/// address-carried dependencies.
fn displace_memory(inst: &mut Instruction, delta: i64) {
    for operand in &mut inst.operands {
        if let Operand::Mem(m) = operand {
            m.disp += delta;
        }
    }
}

/// Rename one random non-protected register operand to another of the
/// same class and size. Returns whether a rename happened.
fn rename_random_operand<R: Rng>(
    inst: &mut Instruction,
    index: usize,
    protected_regs: &HashSet<(usize, Register)>,
    rng: &mut R,
) -> bool {
    let renameable: Vec<usize> = inst
        .operands
        .iter()
        .enumerate()
        .filter_map(|(pos, op)| match op {
            Operand::Reg(r)
                if !protected_regs.contains(&(index, r.full())) && !r.is_stack_pointer() =>
            {
                Some(pos)
            }
            _ => None,
        })
        .collect();
    let Some(&pos) = renameable.choose(rng) else {
        return false;
    };
    let Operand::Reg(old) = inst.operands[pos] else { unreachable!() };
    let choices: Vec<Register> = Register::all(old.class(), old.size())
        .filter(|r| *r != old && !r.is_stack_pointer())
        .collect();
    if let Some(&new) = choices.choose(rng) {
        inst.operands[pos] = Operand::Reg(new);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn feature_dep(kind: DepKind, src: usize, dst: usize) -> Feature {
        Feature::Dependency { kind, src, dst }
    }

    #[test]
    fn preserved_features_always_survive() {
        let block = parse_block(
            "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
        )
        .unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let all_features: Vec<Feature> = perturber.features().to_vec();
        for feature in all_features {
            let mut preserve = FeatureSet::new();
            preserve.insert(feature);
            for _ in 0..50 {
                let result = perturber.perturb(&preserve, &mut rng);
                assert!(
                    preserve.is_subset(&result.surviving),
                    "{feature} lost in:\n{}",
                    result.block
                );
                assert!(result.block.is_valid());
            }
        }
    }

    #[test]
    fn empty_preserve_set_produces_diverse_blocks() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut distinct = HashSet::new();
        for _ in 0..200 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            distinct.insert(result.block.to_string());
        }
        assert!(distinct.len() > 40, "only {} distinct perturbations", distinct.len());
    }

    #[test]
    fn eta_preservation_fixes_length() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\nimul r9, r10").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut preserve = FeatureSet::new();
        preserve.insert(Feature::NumInstructions);
        for _ in 0..100 {
            let result = perturber.perturb(&preserve, &mut rng);
            assert_eq!(result.block.len(), 4);
        }
        // And without it, deletions happen.
        let mut shrunk = false;
        for _ in 0..100 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            shrunk |= result.block.len() < 4;
        }
        assert!(shrunk, "no deletion in 100 free perturbations");
    }

    #[test]
    fn preserved_dependency_keeps_endpoint_opcodes() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut preserve = FeatureSet::new();
        preserve.insert(feature_dep(DepKind::Raw, 0, 1));
        for _ in 0..100 {
            let result = perturber.perturb(&preserve, &mut rng);
            // Endpoints' opcodes must be intact (positions may shift
            // only if earlier instructions were deleted; here 0 and 1
            // are the first two).
            assert_eq!(result.block.instructions()[0].opcode.name(), "add");
            assert_eq!(result.block.instructions()[1].opcode.name(), "mov");
        }
    }

    #[test]
    fn dependencies_get_broken_when_not_preserved() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let dep = feature_dep(DepKind::Raw, 0, 1);
        let mut broken = 0;
        let trials = 200;
        for _ in 0..trials {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            if !result.surviving.contains(&dep) {
                broken += 1;
            }
        }
        assert!(broken > trials / 3, "dependency broken only {broken}/{trials} times");
    }

    #[test]
    fn lea_is_never_replaced() {
        let block = parse_block("lea rdx, [rax + 1]\nadd rcx, rdx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            for inst in &result.block {
                if inst.mem_operand().is_some() && inst.opcode.name() == "lea" {
                    // fine: lea retained
                }
            }
            // If instruction 0 survived, it must still be a lea.
            if result.block.len() == 2 {
                assert_eq!(result.block.instructions()[0].opcode.name(), "lea");
            }
        }
    }

    #[test]
    fn perturbations_are_reproducible_per_seed() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let a = perturber.perturb(&FeatureSet::new(), &mut StdRng::seed_from_u64(9));
        let b = perturber.perturb(&FeatureSet::new(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.block, b.block);
        assert_eq!(a.surviving, b.surviving);
    }

    #[test]
    fn whole_instruction_scheme_perturbs_operands() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\nsub r9, r10\nxor r11, r12").unwrap();
        let config =
            PerturbConfig { scheme: ReplacementScheme::WholeInstruction, ..Default::default() };
        let perturber = Perturber::new(&block, config);
        let mut rng = StdRng::seed_from_u64(6);
        let mut operand_changes = 0;
        for _ in 0..200 {
            let result = perturber.perturb(&FeatureSet::new(), &mut rng);
            // Count perturbed blocks where some surviving-length
            // instruction has different operands but same opcode count.
            if result.block.len() == block.len() {
                for (orig, new) in block.iter().zip(&result.block) {
                    if orig.opcode == new.opcode && orig.operands != new.operands {
                        operand_changes += 1;
                        break;
                    }
                }
            }
        }
        assert!(operand_changes > 5, "got {operand_changes}");
    }
}
