//! Perturbation-space cardinality estimation (paper Appendix F): how
//! many distinct blocks Π̂(F) contains — evidence that the ideal
//! explanation problem is intractable and sampling is required.
//!
//! Counts are astronomically large, so everything is computed in
//! log10 space.

use comet_isa::{opcode_replacements, BasicBlock, Operand, RegClass, Register, Size};

use crate::feature::{Feature, FeatureSet};
use crate::perturb::Perturber;

/// log10 of the estimated number of perturbed blocks retaining
/// `preserve`.
///
/// The estimate multiplies independent per-feature choice counts, the
/// same independence structure Γ uses (paper §5.2):
///
/// * a perturbable vertex contributes `1 + |replacements| (+1 if
///   deletable)` opcode choices;
/// * every register operand occurrence outside preserved features
///   contributes the number of same-class, same-size registers;
/// * every perturbable memory operand contributes its displacement
///   choices.
pub fn log10_space_size(perturber: &Perturber<'_>, preserve: &FeatureSet) -> f64 {
    let block = perturber.block();
    let preserve_eta = preserve.contains(&Feature::NumInstructions);

    // Vertices whose opcode is pinned by the preserve set.
    let mut keep_opcode = vec![false; block.len()];
    for feature in preserve {
        match *feature {
            Feature::Instruction(i) => keep_opcode[i] = true,
            Feature::Dependency { src, dst, .. } => {
                keep_opcode[src] = true;
                keep_opcode[dst] = true;
            }
            Feature::NumInstructions => {}
        }
    }

    let mut log10 = 0.0;
    for (i, inst) in block.iter().enumerate() {
        // Opcode choices.
        if !keep_opcode[i] {
            let mut choices = 1 + opcode_replacements(inst).len();
            if !preserve_eta {
                choices += 1; // deletion
            }
            log10 += (choices as f64).log10();
        }
        // Operand choices (registers renameable within class+size).
        for operand in &inst.operands {
            match operand {
                Operand::Reg(reg) => log10 += (register_choices(*reg) as f64).log10(),
                Operand::Mem(mem) => {
                    for reg in mem.address_registers() {
                        log10 += (register_choices(reg) as f64).log10();
                    }
                    // Displacement perturbation choices.
                    log10 += 4f64.log10();
                }
                Operand::Imm(_) => {}
            }
        }
    }
    log10
}

fn register_choices(reg: Register) -> usize {
    match reg.class() {
        // Excluding the stack pointer.
        RegClass::Gpr => usize::from(comet_isa::reg::NUM_GPR) - 1,
        RegClass::Vec => usize::from(comet_isa::reg::NUM_VEC),
    }
}

/// Human-readable scientific rendering of a log10 count, e.g.
/// `"1.94e38"`.
pub fn format_log10(log10: f64) -> String {
    let exponent = log10.floor();
    let mantissa = 10f64.powf(log10 - exponent);
    format!("{:.2}e{}", mantissa, exponent as i64)
}

/// Convenience: estimate for a block with default Γ parameters.
pub fn estimate_space(block: &BasicBlock, preserve: &FeatureSet) -> f64 {
    let perturber = Perturber::new(block, crate::perturb::PerturbConfig::default());
    log10_space_size(&perturber, preserve)
}

// Silence an unused-import lint path for Size on some feature sets.
#[allow(unused)]
fn _size_witness(_: Size) {}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    /// Paper Appendix F, listing 4 (β1): seven AVX instructions,
    /// |Π̂(∅)| ≈ 1.94e38 in the authors' counting. Our opcode subset and
    /// counting differ; what must hold is the order of magnitude being
    /// astronomically large (> 1e25).
    #[test]
    fn beta1_space_is_astronomical() {
        let text = "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0\nvxorps xmm0, xmm0, xmm5\n\
                    vaddss xmm7, xmm7, xmm3\nvmulss xmm6, xmm6, xmm7\nvdivss xmm6, xmm3, xmm6\n\
                    vmulss xmm0, xmm6, xmm0";
        let block = parse_block(text).unwrap();
        let log10 = estimate_space(&block, &FeatureSet::new());
        assert!(log10 > 25.0, "log10 = {log10}");
    }

    #[test]
    fn preserving_features_shrinks_the_space() {
        let block = parse_block("vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0").unwrap();
        let empty = estimate_space(&block, &FeatureSet::new());
        let mut preserve = FeatureSet::new();
        preserve.insert(Feature::Instruction(0));
        let pinned = estimate_space(&block, &preserve);
        assert!(pinned < empty, "{pinned} vs {empty}");
        let mut eta = FeatureSet::new();
        eta.insert(Feature::NumInstructions);
        let no_delete = estimate_space(&block, &eta);
        assert!(no_delete < empty);
    }

    #[test]
    fn formatting_matches_scientific_notation() {
        assert_eq!(format_log10(38.2878), "1.94e38");
        assert_eq!(format_log10(2.0), "1.00e2");
    }
}
