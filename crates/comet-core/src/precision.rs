//! KL-divergence-based confidence bounds for Bernoulli precision
//! estimation (Kaufmann & Kalyanakrishnan, 2013), as used by the
//! Anchors/COMET candidate-selection loop.

/// Bernoulli KL divergence `kl(p, q)`.
///
/// Conventions: `0 log 0 = 0`; divergence is `+inf` when `q` touches a
/// boundary `p` does not.
pub fn kl_bernoulli(p: f64, q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&q));
    let q = q.clamp(1e-12, 1.0 - 1e-12);
    let mut kl = 0.0;
    if p > 0.0 {
        kl += p * (p / q).ln();
    }
    if p < 1.0 {
        kl += (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln();
    }
    kl
}

/// Upper confidence bound: the largest `q >= p_hat` with
/// `n * kl(p_hat, q) <= beta`.
///
/// Solved by guarded Newton iteration (see [`newton_kl`]): the KL
/// search runs thousands of bound inversions per explanation, and
/// Newton converges in ~5 iterations where bisection needs 60 — this
/// inversion is the single hottest non-sampling operation in the
/// anchors search.
pub fn kl_ucb(p_hat: f64, n: u64, beta: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let level = beta / n as f64;
    if kl_bernoulli(p_hat, 1.0) <= level {
        return 1.0;
    }
    // Pinsker: kl(p, q) >= 2 (q - p)^2, so the root lies at or below
    // p_hat + sqrt(level / 2) — a start point right of the root, from
    // which Newton on the convex KL descends monotonically.
    let start = (p_hat + (level * 0.5).sqrt()).min(1.0 - 1e-12);
    newton_kl(p_hat, level, start, p_hat, 1.0)
}

/// Lower confidence bound: the smallest `q <= p_hat` with
/// `n * kl(p_hat, q) <= beta`.
pub fn kl_lcb(p_hat: f64, n: u64, beta: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let level = beta / n as f64;
    if kl_bernoulli(p_hat, 0.0) <= level {
        return 0.0;
    }
    // Mirror of the UCB start point: left of the root, from which
    // Newton ascends monotonically.
    let start = (p_hat - (level * 0.5).sqrt()).max(1e-12);
    newton_kl(p_hat, level, start, 0.0, p_hat)
}

/// Newton iteration for the root of `kl(p, q) = level` in `q`, within
/// `[lo, hi]` (one side of `p`). `kl(p, ·)` is convex with derivative
/// `(q - p) / (q (1 - q))`, so from a start point on the far side of
/// the root the iterates approach it monotonically; the clamp to
/// `[lo, hi]` guards the first step when the Pinsker start point
/// overshoots the interval.
fn newton_kl(p: f64, level: f64, start: f64, lo: f64, hi: f64) -> f64 {
    let mut q = start.clamp(lo, hi);
    for _ in 0..25 {
        let qc = q.clamp(1e-12, 1.0 - 1e-12);
        let deriv = (qc - p) / (qc * (1.0 - qc));
        if deriv == 0.0 {
            break;
        }
        let next = (q - (kl_bernoulli(p, q) - level) / deriv).clamp(lo, hi);
        if (next - q).abs() <= 1e-12 {
            return next;
        }
        q = next;
    }
    q
}

/// The exploration rate `beta(n, t)` from the Anchors implementation:
/// grows logarithmically with the round `t` and the number of
/// candidates `k`, at failure probability `delta_conf`.
pub fn exploration_beta(t: u64, k: usize, delta_conf: f64) -> f64 {
    let t = t.max(1) as f64;
    let k = k.max(1) as f64;
    // alpha = 1.1, standard LUCB1 schedule.
    let temp = (1.1 * t.powf(1.1) * k / delta_conf).ln();
    temp.max(0.0)
}

/// A running Bernoulli estimate with KL confidence bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BernoulliEstimate {
    /// Positive outcomes observed.
    pub successes: u64,
    /// Total outcomes observed.
    pub samples: u64,
}

impl BernoulliEstimate {
    /// Record one outcome.
    pub fn update(&mut self, success: bool) {
        self.samples += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Point estimate (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.successes as f64 / self.samples as f64
        }
    }

    /// KL upper confidence bound at exploration rate `beta`.
    pub fn ucb(&self, beta: f64) -> f64 {
        kl_ucb(self.mean(), self.samples, beta)
    }

    /// KL lower confidence bound at exploration rate `beta`.
    pub fn lcb(&self, beta: f64) -> f64 {
        kl_lcb(self.mean(), self.samples, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_on_diagonal_and_positive_off() {
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!(kl_bernoulli(p, p) < 1e-9);
        }
        assert!(kl_bernoulli(0.5, 0.9) > 0.0);
        assert!(kl_bernoulli(0.9, 0.5) > 0.0);
    }

    #[test]
    fn bounds_bracket_the_mean() {
        let mut est = BernoulliEstimate::default();
        for i in 0..100 {
            est.update(i % 4 != 0); // p̂ = 0.75
        }
        let beta = exploration_beta(1, 10, 0.05);
        assert!(est.lcb(beta) <= est.mean());
        assert!(est.ucb(beta) >= est.mean());
        assert!(est.lcb(beta) > 0.5, "lcb {}", est.lcb(beta));
        assert!(est.ucb(beta) < 0.95, "ucb {}", est.ucb(beta));
    }

    #[test]
    fn bounds_tighten_with_samples() {
        let beta = 2.0;
        let few = kl_ucb(0.7, 10, beta) - kl_lcb(0.7, 10, beta);
        let many = kl_ucb(0.7, 1000, beta) - kl_lcb(0.7, 1000, beta);
        assert!(many < few);
        assert!(many < 0.1);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(kl_ucb(0.5, 0, 1.0), 1.0);
        assert_eq!(kl_lcb(0.5, 0, 1.0), 0.0);
        // p̂ = 1 with few samples: UCB stays 1, LCB well below.
        assert!((kl_ucb(1.0, 5, 1.0) - 1.0).abs() < 1e-6);
        assert!(kl_lcb(1.0, 5, 1.0) < 1.0);
        // Extreme certainty.
        assert!(kl_lcb(1.0, 100_000, 1.0) > 0.999);
    }

    #[test]
    fn exploration_beta_grows_with_round() {
        let b1 = exploration_beta(1, 10, 0.05);
        let b100 = exploration_beta(100, 10, 0.05);
        assert!(b100 > b1);
    }
}
