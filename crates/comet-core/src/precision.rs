//! KL-divergence-based confidence bounds for Bernoulli precision
//! estimation (Kaufmann & Kalyanakrishnan, 2013), as used by the
//! Anchors/COMET candidate-selection loop.

/// Bernoulli KL divergence `kl(p, q)`.
///
/// Conventions: `0 log 0 = 0`; divergence is `+inf` when `q` touches a
/// boundary `p` does not.
pub fn kl_bernoulli(p: f64, q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&q));
    let q = q.clamp(1e-12, 1.0 - 1e-12);
    let mut kl = 0.0;
    if p > 0.0 {
        kl += p * (p / q).ln();
    }
    if p < 1.0 {
        kl += (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln();
    }
    kl
}

/// Upper confidence bound: the largest `q >= p_hat` with
/// `n * kl(p_hat, q) <= beta`.
pub fn kl_ucb(p_hat: f64, n: u64, beta: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let level = beta / n as f64;
    bisect(|q| kl_bernoulli(p_hat, q), p_hat, 1.0, level)
}

/// Lower confidence bound: the smallest `q <= p_hat` with
/// `n * kl(p_hat, q) <= beta`.
pub fn kl_lcb(p_hat: f64, n: u64, beta: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let level = beta / n as f64;
    // kl(p_hat, q) is decreasing in q on [0, p_hat]; search the mirror.
    let f = |q: f64| kl_bernoulli(p_hat, q);
    // Bisect on [0, p_hat] for the smallest q with f(q) <= level.
    let (mut lo, mut hi) = (0.0f64, p_hat);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > level {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Bisect on `[lo0, hi0]` (with `f` increasing away from `lo0`) for the
/// largest `x` with `f(x) <= level`.
fn bisect(f: impl Fn(f64) -> f64, lo0: f64, hi0: f64, level: f64) -> f64 {
    let (mut lo, mut hi) = (lo0, hi0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > level {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// The exploration rate `beta(n, t)` from the Anchors implementation:
/// grows logarithmically with the round `t` and the number of
/// candidates `k`, at failure probability `delta_conf`.
pub fn exploration_beta(t: u64, k: usize, delta_conf: f64) -> f64 {
    let t = t.max(1) as f64;
    let k = k.max(1) as f64;
    // alpha = 1.1, standard LUCB1 schedule.
    let temp = (1.1 * t.powf(1.1) * k / delta_conf).ln();
    temp.max(0.0)
}

/// A running Bernoulli estimate with KL confidence bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BernoulliEstimate {
    /// Positive outcomes observed.
    pub successes: u64,
    /// Total outcomes observed.
    pub samples: u64,
}

impl BernoulliEstimate {
    /// Record one outcome.
    pub fn update(&mut self, success: bool) {
        self.samples += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Point estimate (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.successes as f64 / self.samples as f64
        }
    }

    /// KL upper confidence bound at exploration rate `beta`.
    pub fn ucb(&self, beta: f64) -> f64 {
        kl_ucb(self.mean(), self.samples, beta)
    }

    /// KL lower confidence bound at exploration rate `beta`.
    pub fn lcb(&self, beta: f64) -> f64 {
        kl_lcb(self.mean(), self.samples, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_on_diagonal_and_positive_off() {
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!(kl_bernoulli(p, p) < 1e-9);
        }
        assert!(kl_bernoulli(0.5, 0.9) > 0.0);
        assert!(kl_bernoulli(0.9, 0.5) > 0.0);
    }

    #[test]
    fn bounds_bracket_the_mean() {
        let mut est = BernoulliEstimate::default();
        for i in 0..100 {
            est.update(i % 4 != 0); // p̂ = 0.75
        }
        let beta = exploration_beta(1, 10, 0.05);
        assert!(est.lcb(beta) <= est.mean());
        assert!(est.ucb(beta) >= est.mean());
        assert!(est.lcb(beta) > 0.5, "lcb {}", est.lcb(beta));
        assert!(est.ucb(beta) < 0.95, "ucb {}", est.ucb(beta));
    }

    #[test]
    fn bounds_tighten_with_samples() {
        let beta = 2.0;
        let few = kl_ucb(0.7, 10, beta) - kl_lcb(0.7, 10, beta);
        let many = kl_ucb(0.7, 1000, beta) - kl_lcb(0.7, 1000, beta);
        assert!(many < few);
        assert!(many < 0.1);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(kl_ucb(0.5, 0, 1.0), 1.0);
        assert_eq!(kl_lcb(0.5, 0, 1.0), 0.0);
        // p̂ = 1 with few samples: UCB stays 1, LCB well below.
        assert!((kl_ucb(1.0, 5, 1.0) - 1.0).abs() < 1e-6);
        assert!(kl_lcb(1.0, 5, 1.0) < 1.0);
        // Extreme certainty.
        assert!(kl_lcb(1.0, 100_000, 1.0) > 0.999);
    }

    #[test]
    fn exploration_beta_grows_with_round() {
        let b1 = exploration_beta(1, 10, 0.05);
        let b100 = exploration_beta(100, 10, 0.05);
        assert!(b100 > b1);
    }
}
