//! Block features P̂ (paper §5.1): instructions, data dependencies, and
//! the instruction count — the primitives COMET composes explanations
//! from.

use std::collections::BTreeSet;
use std::fmt;

use comet_graph::{BlockGraph, DepKind};
use comet_isa::BasicBlock;
use serde::{Deserialize, Serialize};

/// One feature of a basic block.
///
/// Instruction indices are 0-based internally; [`fmt::Display`] prints
/// them 1-based to match the paper's notation (`inst_2`,
/// `δ_RAW,3,6`, `η(num_insts)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Feature {
    /// The instruction at the given position (identified by its opcode
    /// under the default replacement scheme — paper Appendix E.4).
    Instruction(usize),
    /// A data dependency of `kind` from instruction `src` to `dst`.
    Dependency {
        /// Hazard kind.
        kind: DepKind,
        /// Producer index.
        src: usize,
        /// Consumer index.
        dst: usize,
    },
    /// The number of instructions in the block (η).
    NumInstructions,
}

/// The coarse type of a feature — the unit of the paper's Figures 2–4
/// analysis (η vs inst vs δ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A specific instruction.
    Inst,
    /// A specific data dependency.
    Dep,
    /// The instruction count.
    Eta,
}

impl FeatureKind {
    /// All feature kinds.
    pub const ALL: [FeatureKind; 3] = [FeatureKind::Inst, FeatureKind::Dep, FeatureKind::Eta];
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureKind::Inst => write!(f, "inst"),
            FeatureKind::Dep => write!(f, "delta"),
            FeatureKind::Eta => write!(f, "eta"),
        }
    }
}

impl Feature {
    /// The type of this feature (paper eq. 9's `type(f)`).
    pub fn kind(&self) -> FeatureKind {
        match self {
            Feature::Instruction(_) => FeatureKind::Inst,
            Feature::Dependency { .. } => FeatureKind::Dep,
            Feature::NumInstructions => FeatureKind::Eta,
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feature::Instruction(i) => write!(f, "inst_{}", i + 1),
            Feature::Dependency { kind, src, dst } => {
                write!(f, "d_{},{},{}", kind.abbrev(), src + 1, dst + 1)
            }
            Feature::NumInstructions => write!(f, "eta(num_insts)"),
        }
    }
}

/// A set of features, ordered for deterministic iteration.
pub type FeatureSet = BTreeSet<Feature>;

/// Extract the candidate features P̂ of a block: every instruction,
/// every dependency edge, and η (paper §5.1, Figure 1(iii)).
pub fn extract_features(block: &BasicBlock, graph: &BlockGraph) -> Vec<Feature> {
    let mut features = Vec::with_capacity(block.len() + graph.edges().len() + 1);
    for i in 0..block.len() {
        features.push(Feature::Instruction(i));
    }
    for edge in graph.edges() {
        features.push(Feature::Dependency { kind: edge.kind, src: edge.src, dst: edge.dst });
    }
    features.push(Feature::NumInstructions);
    features
}

/// Render a feature set in the paper's brace notation.
pub fn format_feature_set(features: &FeatureSet) -> String {
    let items: Vec<String> = features.iter().map(|f| f.to_string()).collect();
    format!("{{{}}}", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn extracts_all_feature_types() {
        let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
        let graph = BlockGraph::build(&block);
        let features = extract_features(&block, &graph);
        // 3 instructions + 1 RAW edge + eta.
        assert_eq!(features.len(), 5);
        assert!(features.contains(&Feature::NumInstructions));
        assert!(features.contains(&Feature::Instruction(2)));
        assert!(features.contains(&Feature::Dependency { kind: DepKind::Raw, src: 0, dst: 1 }));
    }

    #[test]
    fn display_uses_one_based_paper_notation() {
        assert_eq!(Feature::Instruction(1).to_string(), "inst_2");
        let dep = Feature::Dependency { kind: DepKind::Raw, src: 2, dst: 5 };
        assert_eq!(dep.to_string(), "d_RAW,3,6");
        assert_eq!(Feature::NumInstructions.to_string(), "eta(num_insts)");
    }

    #[test]
    fn kinds_partition_features() {
        assert_eq!(Feature::Instruction(0).kind(), FeatureKind::Inst);
        assert_eq!(Feature::NumInstructions.kind(), FeatureKind::Eta);
        let dep = Feature::Dependency { kind: DepKind::War, src: 0, dst: 1 };
        assert_eq!(dep.kind(), FeatureKind::Dep);
    }

    #[test]
    fn formats_sets() {
        let mut set = FeatureSet::new();
        set.insert(Feature::Instruction(1));
        set.insert(Feature::NumInstructions);
        assert_eq!(format_feature_set(&set), "{inst_2, eta(num_insts)}");
    }
}
