//! Dense bitmask representation of feature sets.
//!
//! The explanation search manipulates feature sets millions of times
//! per explanation: candidate construction, beam deduplication,
//! subset-of-surviving checks, coverage counting. Representing every
//! set as a `BTreeSet<Feature>` allocates per node and compares
//! 24-byte enum values; instead, [`FeaturePool`] interns a block's
//! candidate features P̂ into a dense index space once, and
//! [`FeatureMask`] represents any subset as a bitmask — two inline
//! `u64` words for blocks with up to 128 features (virtually all of
//! them), with a heap spill for larger blocks.
//!
//! The pool's index order is the features' `Ord` order:
//! [`extract_features`] emits instructions in position order, then
//! dependency edges sorted by `(kind, src, dst)` (the `BlockGraph`
//! edge order), then η — exactly the derived `Ord` on [`Feature`].
//! Ascending-bit iteration over a mask therefore visits features in
//! the same order as iterating the equivalent `BTreeSet`, which keeps
//! the search's RNG consumption — and hence every seeded explanation —
//! byte-identical to the set-based implementation.
//!
//! [`extract_features`]: crate::feature::extract_features

use crate::feature::{Feature, FeatureSet};

/// Number of bits held inline before spilling to the heap.
const INLINE_BITS: usize = 128;

/// A block's candidate features P̂, interned into a dense `0..len`
/// index space in `Ord` order.
#[derive(Debug, Clone)]
pub struct FeaturePool {
    features: Vec<Feature>,
}

impl FeaturePool {
    /// Intern a sorted, duplicate-free feature list (the output shape
    /// of [`extract_features`](crate::feature::extract_features)).
    pub fn new(features: Vec<Feature>) -> FeaturePool {
        debug_assert!(
            features.windows(2).all(|w| w[0] < w[1]),
            "feature pool must be strictly sorted"
        );
        FeaturePool { features }
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The interned features in index (= `Ord`) order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The feature at `index`.
    pub fn feature(&self, index: usize) -> Feature {
        self.features[index]
    }

    /// The index of `feature`, if it is in the pool.
    pub fn index_of(&self, feature: &Feature) -> Option<usize> {
        self.features.binary_search(feature).ok()
    }

    /// A mask over this pool with no bits set.
    pub fn empty_mask(&self) -> FeatureMask {
        FeatureMask::with_capacity(self.len())
    }

    /// A mask over this pool with every bit set.
    pub fn full_mask(&self) -> FeatureMask {
        let mut mask = self.empty_mask();
        mask.fill_to(self.len());
        mask
    }

    /// Convert a [`FeatureSet`] into a mask over this pool. Features
    /// absent from the pool are a caller bug (debug-asserted) and are
    /// ignored in release builds.
    pub fn mask_of(&self, set: &FeatureSet) -> FeatureMask {
        let mut mask = self.empty_mask();
        for feature in set {
            match self.index_of(feature) {
                Some(index) => mask.insert(index),
                None => debug_assert!(false, "feature {feature} not in pool"),
            }
        }
        mask
    }

    /// Convert a mask back into the public [`FeatureSet`] form.
    pub fn set_of(&self, mask: &FeatureMask) -> FeatureSet {
        mask.iter().map(|index| self.features[index]).collect()
    }
}

/// A subset of a [`FeaturePool`], as a bitmask.
///
/// Masks are only meaningful relative to the pool that produced them;
/// comparing or combining masks from different pools is a logic error
/// (not detected). All operations are allocation-free for pools of up
/// to [`INLINE_BITS`] features; larger pools allocate once per mask.
///
/// `Eq`/`Hash` are derived, which is sound because all masks of one
/// pool share a representation variant and a word count, and unused
/// high bits are always zero.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeatureMask {
    words: MaskWords,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MaskWords {
    /// Up to 128 features, inline.
    Small([u64; 2]),
    /// Heap spill for larger pools; fixed word count per pool.
    Large(Vec<u64>),
}

impl FeatureMask {
    /// An empty mask able to hold indices `0..nbits`.
    pub fn with_capacity(nbits: usize) -> FeatureMask {
        let words = if nbits <= INLINE_BITS {
            MaskWords::Small([0; 2])
        } else {
            MaskWords::Large(vec![0; nbits.div_ceil(64)])
        };
        FeatureMask { words }
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            MaskWords::Small(w) => w,
            MaskWords::Large(w) => w,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            MaskWords::Small(w) => w,
            MaskWords::Large(w) => w,
        }
    }

    /// Set bit `index`.
    pub fn insert(&mut self, index: usize) {
        self.words_mut()[index / 64] |= 1u64 << (index % 64);
    }

    /// Clear bit `index`.
    pub fn remove(&mut self, index: usize) {
        self.words_mut()[index / 64] &= !(1u64 << (index % 64));
    }

    /// Whether bit `index` is set.
    pub fn contains(&self, index: usize) -> bool {
        self.words().get(index / 64).is_some_and(|word| word & (1u64 << (index % 64)) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Clear every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
    }

    /// Set bits `0..nbits` (and clear the rest).
    pub fn fill_to(&mut self, nbits: usize) {
        self.clear();
        let words = self.words_mut();
        let full = nbits / 64;
        words[..full].fill(u64::MAX);
        let rem = nbits % 64;
        if rem != 0 {
            words[full] = (1u64 << rem) - 1;
        }
    }

    /// Whether every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &FeatureMask) -> bool {
        let (a, b) = (self.words(), other.words());
        debug_assert_eq!(a.len(), b.len(), "masks from different pools");
        a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
    }

    /// Overwrite `self` with `other`'s bits, reusing any heap buffer.
    pub fn copy_from(&mut self, other: &FeatureMask) {
        match (&mut self.words, &other.words) {
            (MaskWords::Small(dst), MaskWords::Small(src)) => *dst = *src,
            (MaskWords::Large(dst), MaskWords::Large(src)) => dst.clone_from(src),
            _ => self.words = other.words.clone(),
        }
    }

    /// A process-stable 64-bit hash of the mask's bits, for deriving
    /// deterministic per-candidate RNG streams. Unlike `Hash` through a
    /// `std` `HashMap` (whose hasher is randomized per process), this
    /// folds the words through SplitMix64 and is identical across runs
    /// and machines. Zero words are included, so masks from pools of
    /// different sizes may hash differently — all masks of one
    /// explanation share a pool, which is the only use we need.
    pub fn stable_hash(&self) -> u64 {
        let mut acc = 0x243F_6A88_85A3_08D3u64; // arbitrary non-zero tag
        for &word in self.words() {
            acc = splitmix64(acc ^ word);
        }
        acc
    }

    /// Iterate the set bit indices in ascending order — the pool's
    /// `Ord` order, matching `BTreeSet` iteration over the equivalent
    /// [`FeatureSet`].
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// SplitMix64 finalizer: a cheap, statistically strong bijective mixer
/// (Steele et al., "Fast splittable pseudorandom number generators").
/// Used to derive independent RNG streams from structured counters.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_graph::DepKind;

    fn pool_of(n: usize) -> FeaturePool {
        // Strictly ascending by Ord: instructions, then deps, then η.
        let mut features: Vec<Feature> =
            (0..n.saturating_sub(2)).map(Feature::Instruction).collect();
        if n >= 2 {
            features.push(Feature::Dependency { kind: DepKind::Raw, src: 0, dst: 1 });
        }
        if n >= 1 {
            features.push(Feature::NumInstructions);
        }
        FeaturePool::new(features)
    }

    #[test]
    fn roundtrips_sets_through_masks() {
        let pool = pool_of(7);
        let mut set = FeatureSet::new();
        set.insert(Feature::Instruction(1));
        set.insert(Feature::NumInstructions);
        let mask = pool.mask_of(&set);
        assert_eq!(mask.len(), 2);
        assert_eq!(pool.set_of(&mask), set);
    }

    #[test]
    fn subset_and_membership() {
        let pool = pool_of(10);
        let mut a = pool.empty_mask();
        a.insert(1);
        a.insert(4);
        let mut b = a.clone();
        b.insert(7);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.contains(7) && !a.contains(7));
        b.remove(7);
        assert_eq!(a, b);
        assert!(b.is_subset(&a));
    }

    #[test]
    fn iteration_is_ascending_and_matches_btreeset_order() {
        let pool = pool_of(9);
        let mask = pool.full_mask();
        let via_mask: Vec<Feature> = mask.iter().map(|i| pool.feature(i)).collect();
        let via_set: Vec<Feature> = pool.set_of(&mask).into_iter().collect();
        assert_eq!(via_mask, via_set);
        assert_eq!(mask.len(), pool.len());
    }

    #[test]
    fn large_pools_spill_to_the_heap_and_still_work() {
        let n = 200;
        let features: Vec<Feature> = (0..n).map(Feature::Instruction).collect();
        let pool = FeaturePool::new(features);
        let mut mask = pool.empty_mask();
        mask.insert(0);
        mask.insert(129);
        mask.insert(199);
        assert_eq!(mask.iter().collect::<Vec<_>>(), vec![0, 129, 199]);
        assert!(mask.is_subset(&pool.full_mask()));
        let mut other = pool.empty_mask();
        other.copy_from(&mask);
        assert_eq!(other, mask);
        mask.fill_to(n);
        assert_eq!(mask.len(), n);
        mask.clear();
        assert!(mask.is_empty());
    }

    #[test]
    fn stable_hash_distinguishes_masks_and_is_reproducible() {
        let pool = pool_of(70);
        let mut a = pool.empty_mask();
        let mut b = pool.empty_mask();
        a.insert(3);
        a.insert(65);
        b.insert(3);
        assert_eq!(a.stable_hash(), a.clone().stable_hash());
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_ne!(b.stable_hash(), pool.empty_mask().stable_hash());
        // Pinned value: this hash seeds RNG streams, so it must never
        // drift across refactors without a deliberate golden refresh.
        let mut acc = 0x243F_6A88_85A3_08D3u64;
        for word in [(1u64 << 3), 1u64 << 1] {
            acc = splitmix64(acc ^ word);
        }
        assert_eq!(a.stable_hash(), acc);
    }
}
