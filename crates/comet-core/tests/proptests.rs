//! Property-based tests for the COMET framework's core invariants.

use comet_bhive::{generate_source_block, GenConfig, Source};
use comet_core::{
    extract_features, ground_truth, is_accurate, precision, ExplainConfig, ExplainError, Explainer,
    Feature, FeatureSet, PerturbConfig, Perturber,
};
use comet_graph::BlockGraph;
use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, CrudeModel, FaultConfig, FaultyModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_block() -> impl Strategy<Value = BasicBlock> {
    (any::<u64>(), prop_oneof![Just(Source::Clang), Just(Source::OpenBlas)]).prop_map(
        |(seed, source)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_source_block(source, GenConfig::default(), &mut rng)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Γ's central guarantee: preserved features always survive, and
    /// the emitted block is always valid.
    #[test]
    fn perturbation_preserves_requested_features(
        block in arb_block(),
        seed in any::<u64>(),
        pick in any::<prop::sample::Index>(),
    ) {
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let features = perturber.features().to_vec();
        let feature = features[pick.index(features.len())];
        let mut preserve = FeatureSet::new();
        preserve.insert(feature);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let out = perturber.perturb(&preserve, &mut rng);
            prop_assert!(out.block.is_valid());
            prop_assert!(
                preserve.is_subset(&out.surviving),
                "{feature} lost in\n{}",
                out.block
            );
        }
    }

    /// Surviving feature sets are sound: every reported surviving
    /// feature is actually a feature of the perturbed block.
    #[test]
    fn surviving_features_exist_in_perturbed_block(
        block in arb_block(),
        seed in any::<u64>(),
    ) {
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let out = perturber.perturb(&FeatureSet::new(), &mut rng);
        // η survival must match length equality.
        prop_assert_eq!(
            out.surviving.contains(&Feature::NumInstructions),
            out.block.len() == block.len()
        );
        // Dependency survival is checked against a fresh analysis when
        // lengths match (positions are then stable for undeleted
        // prefixes only; full re-mapping is internal, so restrict to
        // the no-deletion case).
        if out.block.len() == block.len() {
            let new_graph = BlockGraph::build(&out.block);
            for feature in &out.surviving {
                if let Feature::Dependency { kind, src, dst } = *feature {
                    prop_assert!(
                        new_graph.find_edge(kind, src, dst).is_some(),
                        "reported surviving {feature} missing in\n{}",
                        out.block
                    );
                }
            }
        }
    }

    /// GT(β) is never empty, contains only block features, and is
    /// self-accurate.
    #[test]
    fn ground_truth_well_formed(block in arb_block()) {
        for march in Microarch::ALL {
            let crude = CrudeModel::new(march);
            let gt = ground_truth(&crude, &block);
            prop_assert!(!gt.is_empty());
            let graph = BlockGraph::build(&block);
            let all: FeatureSet = extract_features(&block, &graph).into_iter().collect();
            prop_assert!(gt.is_subset(&all));
            prop_assert!(is_accurate(&gt, &gt));
        }
    }

    /// The crude model's prediction equals the max of its component
    /// costs and is achieved by every ground-truth feature.
    #[test]
    fn crude_prediction_is_the_feature_max(block in arb_block()) {
        let crude = CrudeModel::new(Microarch::Haswell);
        let total = crude.predict(&block);
        let graph = BlockGraph::build(&block);
        let mut max_cost = crude.cost_eta(block.len());
        for i in 0..block.len() {
            max_cost = max_cost.max(crude.cost_inst(&block, i));
        }
        for edge in graph.edges() {
            max_cost = max_cost.max(crude.cost_dep(&block, edge));
        }
        prop_assert!((total - max_cost).abs() < 1e-12);
    }

    /// KL bounds always bracket the empirical mean and lie in [0, 1].
    #[test]
    fn kl_bounds_bracket_mean(successes in 0u64..200, extra in 0u64..200, beta in 0.01f64..20.0) {
        let n = successes + extra;
        prop_assume!(n > 0);
        let p_hat = successes as f64 / n as f64;
        let lcb = precision::kl_lcb(p_hat, n, beta);
        let ucb = precision::kl_ucb(p_hat, n, beta);
        prop_assert!((0.0..=1.0).contains(&lcb));
        prop_assert!((0.0..=1.0).contains(&ucb));
        prop_assert!(lcb <= p_hat + 1e-9, "lcb {lcb} > mean {p_hat}");
        prop_assert!(ucb >= p_hat - 1e-9, "ucb {ucb} < mean {p_hat}");
    }

    /// Perturbation-space estimates shrink monotonically as features
    /// are pinned.
    #[test]
    fn space_estimates_monotone(block in arb_block(), pick in any::<prop::sample::Index>()) {
        let empty = comet_core::space::estimate_space(&block, &FeatureSet::new());
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let features = perturber.features().to_vec();
        let feature = features[pick.index(features.len())];
        let mut preserve = FeatureSet::new();
        preserve.insert(feature);
        let pinned = comet_core::space::estimate_space(&block, &preserve);
        prop_assert!(pinned <= empty + 1e-9, "{feature}: {pinned} > {empty}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bitmask feature-set representation is observationally
    /// equivalent to `BTreeSet<Feature>` under any interleaving of
    /// inserts and removes: same membership, same cardinality, same
    /// iteration order (the seeded-RNG determinism contract), and
    /// lossless conversion both ways.
    #[test]
    fn bitmask_matches_btreeset_semantics(
        block in arb_block(),
        ops in prop::collection::vec((any::<prop::sample::Index>(), any::<bool>()), 0..64),
    ) {
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let pool = perturber.pool();
        let n = pool.len();
        let mut mask = pool.empty_mask();
        let mut set = FeatureSet::new();
        for (pick, insert) in ops {
            let index = pick.index(n);
            let feature = pool.feature(index);
            if insert {
                mask.insert(index);
                set.insert(feature);
            } else {
                mask.remove(index);
                set.remove(&feature);
            }
            prop_assert_eq!(mask.len(), set.len());
            prop_assert_eq!(mask.is_empty(), set.is_empty());
        }
        for index in 0..n {
            prop_assert_eq!(mask.contains(index), set.contains(&pool.feature(index)));
        }
        let via_mask: Vec<Feature> = mask.iter().map(|i| pool.feature(i)).collect();
        let via_set: Vec<Feature> = set.iter().copied().collect();
        prop_assert_eq!(via_mask, via_set, "mask iteration must follow Ord order");
        prop_assert_eq!(pool.set_of(&mask), set.clone());
        prop_assert_eq!(pool.mask_of(&set), mask);
    }

    /// `FeatureMask::is_subset` agrees with `BTreeSet::is_subset` for
    /// arbitrary pairs of subsets of one pool.
    #[test]
    fn bitmask_subset_matches_btreeset(
        block in arb_block(),
        picks_a in prop::collection::vec(any::<prop::sample::Index>(), 0..12),
        picks_b in prop::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let pool = perturber.pool();
        let n = pool.len();
        let build = |picks: &[prop::sample::Index]| {
            let mut mask = pool.empty_mask();
            let mut set = FeatureSet::new();
            for pick in picks {
                let index = pick.index(n);
                mask.insert(index);
                set.insert(pool.feature(index));
            }
            (mask, set)
        };
        let (mask_a, set_a) = build(&picks_a);
        let (mask_b, set_b) = build(&picks_b);
        prop_assert_eq!(mask_a.is_subset(&mask_b), set_a.is_subset(&set_b));
        prop_assert_eq!(mask_b.is_subset(&mask_a), set_b.is_subset(&set_a));
        prop_assert_eq!(mask_a == mask_b, set_a == set_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Robustness contract: explaining through a misbehaving model
    /// never panics, never exceeds the query budget, and either yields
    /// a well-formed (possibly degraded) explanation or a typed model
    /// error from the initial prediction.
    #[test]
    fn explain_tolerates_fault_injection(block in arb_block(), seed in any::<u64>()) {
        let faulty = FaultyModel::new(
            CrudeModel::new(Microarch::Haswell),
            FaultConfig {
                nan_rate: 0.05,
                transient_rate: 0.05,
                panic_rate: 0.05,
                seed,
                ..Default::default()
            },
        );
        let config = ExplainConfig {
            coverage_samples: 50,
            max_samples: 40,
            max_total_queries: 600,
            ..ExplainConfig::for_crude_model()
        };
        let explainer = Explainer::new(faulty, config);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        match explainer.explain(&block, &mut rng) {
            Ok(e) => {
                prop_assert!(e.queries <= config.max_total_queries, "budget blown: {}", e.queries);
                prop_assert!(!e.features.is_empty());
                prop_assert!((0.0..=1.0).contains(&e.precision));
                prop_assert!((0.0..=1.0).contains(&e.coverage));
                prop_assert!(e.faults == 0 || e.degraded, "faults without degraded flag");
                prop_assert_eq!(e.faults, explainer.model().stats().total_faults());
            }
            // The model faulted on the original block itself: a typed
            // error, not a panic, is the contract.
            Err(err) => prop_assert!(matches!(err, ExplainError::Model(_)), "unexpected: {err:?}"),
        }
    }
}
