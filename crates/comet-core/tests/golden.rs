//! Golden seeded-explanation outputs.
//!
//! The expected values below were captured at the commit *before* the
//! bitmask feature-set representation and the allocation-free sampling
//! /inference paths were introduced, when the search manipulated
//! `BTreeSet<Feature>` throughout. The optimized implementation must
//! reproduce them exactly — same features, same precision/coverage,
//! same query count — proving the representation change did not move a
//! single RNG draw. If an intentional algorithm change breaks these,
//! re-capture the values and bump the evaluation journal fingerprint.

use comet_core::{ExplainConfig, Explainer, Feature, FeatureSet};
use comet_graph::DepKind;
use comet_isa::{parse_block, Microarch};
use comet_models::CrudeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SMALL: &str = "add rcx, rax\nmov rdx, rcx\npop rbx";
const CASE2: &str =
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";

struct Golden {
    block: &'static str,
    seed: u64,
    features: &'static [Feature],
    precision: f64,
    coverage: f64,
    prediction: f64,
    anchored: bool,
    queries: u64,
}

const GOLDENS: &[Golden] = &[
    Golden {
        block: SMALL,
        seed: 3,
        features: &[
            Feature::Dependency { kind: DepKind::Raw, src: 0, dst: 1 },
            Feature::NumInstructions,
        ],
        precision: 0.9375,
        coverage: 0.056,
        prediction: 0.75,
        anchored: true,
        queries: 866,
    },
    Golden {
        block: SMALL,
        seed: 7,
        features: &[Feature::Instruction(1), Feature::Instruction(2)],
        precision: 0.9375,
        coverage: 0.248,
        prediction: 0.75,
        anchored: true,
        queries: 327,
    },
    Golden {
        block: CASE2,
        seed: 3,
        features: &[Feature::Dependency { kind: DepKind::Raw, src: 0, dst: 3 }],
        precision: 1.0,
        coverage: 0.074,
        prediction: 25.25,
        anchored: true,
        queries: 881,
    },
    Golden {
        block: CASE2,
        seed: 7,
        features: &[Feature::Dependency { kind: DepKind::Raw, src: 0, dst: 3 }],
        precision: 1.0,
        coverage: 0.062,
        prediction: 25.25,
        anchored: true,
        queries: 1193,
    },
];

#[test]
fn seeded_explanations_match_pre_bitmask_goldens() {
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    for golden in GOLDENS {
        let block = parse_block(golden.block).unwrap();
        let explainer = Explainer::new(CrudeModel::new(Microarch::Haswell), config);
        let mut rng = StdRng::seed_from_u64(golden.seed);
        let e = explainer.explain(&block, &mut rng).unwrap();
        let expected: FeatureSet = golden.features.iter().copied().collect();
        let tag = format!("block {:?} seed {}", golden.block, golden.seed);
        assert_eq!(e.features, expected, "{tag}: features");
        assert_eq!(e.precision, golden.precision, "{tag}: precision");
        assert_eq!(e.coverage, golden.coverage, "{tag}: coverage");
        assert_eq!(e.prediction, golden.prediction, "{tag}: prediction");
        assert_eq!(e.anchored, golden.anchored, "{tag}: anchored");
        assert_eq!(e.queries, golden.queries, "{tag}: queries");
    }
}

/// The small-block golden values come out the same whichever seed runs
/// first — the explainer keeps no cross-call state.
#[test]
fn goldens_are_order_independent() {
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    let block = parse_block(SMALL).unwrap();
    let explainer = Explainer::new(CrudeModel::new(Microarch::Haswell), config);
    let late = explainer.explain(&block, &mut StdRng::seed_from_u64(7)).unwrap();
    let early = explainer.explain(&block, &mut StdRng::seed_from_u64(3)).unwrap();
    assert_eq!(early.queries, 866);
    assert_eq!(late.queries, 327);
}
