//! The batched-search determinism contract, end to end: for a
//! deterministic model, `explain_batched` must produce *bitwise
//! identical* explanations — features, precision, coverage, query and
//! fault counts — for every batch size and pool size, with
//! `BatchExec::new(1, 1)` (single-item batches, calling thread only)
//! as the scalar reference. This is what lets services tune batching
//! knobs freely without changing any result.

use comet_bhive::{generate_source_block, GenConfig, Source};
use comet_core::{BatchExec, ExplainConfig, Explainer};
use comet_isa::{BasicBlock, Microarch};
use comet_models::CrudeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH_SIZES: [usize; 4] = [1, 4, 17, 64];
const POOL_SIZES: [usize; 2] = [1, 4];

fn seeded_blocks(n: usize) -> Vec<BasicBlock> {
    let mut rng = StdRng::seed_from_u64(0xB10C5);
    (0..n)
        .map(|i| {
            let source = if i % 2 == 0 { Source::Clang } else { Source::OpenBlas };
            generate_source_block(source, GenConfig::default(), &mut rng)
        })
        .collect()
}

#[test]
fn explanations_are_bitwise_identical_across_batch_and_pool_sizes() {
    let blocks = seeded_blocks(20);
    let config = ExplainConfig {
        coverage_samples: 400,
        max_total_queries: 4_000,
        ..ExplainConfig::for_crude_model()
    };
    let explainer = Explainer::new(CrudeModel::new(Microarch::Haswell), config);

    // Scalar reference: batch 1, pool 1.
    let reference: Vec<_> = blocks
        .iter()
        .enumerate()
        .map(|(i, block)| {
            explainer.explain_batched(block, i as u64, &BatchExec::new(1, 1)).unwrap()
        })
        .collect();
    assert!(
        reference.iter().any(|e| e.anchored),
        "expected at least one anchored explanation among the seeded blocks"
    );

    for workers in POOL_SIZES {
        for batch in BATCH_SIZES {
            if (batch, workers) == (1, 1) {
                continue;
            }
            let exec = BatchExec::new(batch, workers);
            for (i, (block, want)) in blocks.iter().zip(&reference).enumerate() {
                let got = explainer.explain_batched(block, i as u64, &exec).unwrap();
                // `Explanation`'s `PartialEq` compares every field but
                // wall-clock duration, and the f64 fields are compared
                // exactly: this is a bitwise check.
                assert_eq!(
                    got,
                    *want,
                    "block {i} diverged at batch={batch} workers={workers}: \
                     got {} (precision {}, queries {}), want {} (precision {}, queries {})",
                    got.display_features(),
                    got.precision,
                    got.queries,
                    want.display_features(),
                    want.precision,
                    want.queries,
                );
            }
            assert!(exec.queries_batched() > 0);
        }
    }
}
