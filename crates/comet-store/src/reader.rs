//! The store read path: open-and-validate once, then binary-search
//! lookups straight over the raw file bytes.
//!
//! [`ExplanationStore::open`] reads the file into one contiguous
//! buffer and validates everything up front — magic, format version,
//! section-table bounds, every section checksum, record-count
//! consistency, key ordering, offset monotonicity. After that, a
//! lookup touches only the KEYS section (binary search over
//! little-endian u64s read in place) and, on a candidate hit, the
//! stored canonical text (byte compare, no allocation); the
//! [`Explanation`] is materialized only for the confirmed hit. Nothing
//! in this module panics on hostile bytes: every malformed input maps
//! to a typed [`StoreError`].

use std::fmt;
use std::path::Path;

use comet_bhive::Category;
use comet_core::Explanation;
use comet_eval::journal::fnv1a64;

use crate::analytics::Analytics;
use crate::format::{
    category_from_byte, features_from_indices, store_key, Provenance, FEAT_BYTES, FLAG_ANCHORED,
    FLAG_DEGRADED, FORMAT_VERSION, HEADER_BYTES, LANES, MAGIC, META_BYTES, SECTION_IDS,
    SEC_ANALYTICS, SEC_FEAT_INDEX, SEC_FEAT_OFFSETS, SEC_FEAT_TABLE, SEC_IMPORTANCE, SEC_KEYS,
    SEC_META, SEC_PROVENANCE, SEC_TEXT, SEC_TEXT_OFFSETS, TABLE_ENTRY_BYTES,
};

/// Why a store file could not be opened or decoded. Corruption is a
/// load-time error, never a panic and never a silently wrong record.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file ends before a structure it promised (torn tail).
    Truncated(&'static str),
    /// The file does not start with the COMETS1 magic.
    BadMagic,
    /// The file's format version is not one this reader speaks.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// A section's bytes do not match their table checksum.
    Checksum {
        /// Section id from [`crate::format`].
        section: u32,
    },
    /// Structurally invalid content that passed checksums (written by
    /// a broken or newer writer).
    Malformed(&'static str),
    /// Provenance or analytics JSON failed to parse.
    Json(serde_json::Error),
    /// A value cannot be encoded in the format (builder side).
    Unrepresentable(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o failed: {e}"),
            StoreError::Truncated(what) => {
                write!(f, "store file truncated: {what} extends past end of file")
            }
            StoreError::BadMagic => write!(f, "not a COMETS1 store file (bad magic)"),
            StoreError::Version { found } => write!(
                f,
                "store format version {found} unsupported (this reader speaks {FORMAT_VERSION})"
            ),
            StoreError::Checksum { section } => {
                write!(f, "store section {section} failed its checksum (corrupt bytes)")
            }
            StoreError::Malformed(what) => write!(f, "store file malformed: {what}"),
            StoreError::Json(e) => write!(f, "store metadata JSON invalid: {e}"),
            StoreError::Unrepresentable(what) => {
                write!(f, "value not representable in the store format: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> StoreError {
        StoreError::Json(e)
    }
}

/// Byte range of one section inside the file buffer.
#[derive(Debug, Clone, Copy, Default)]
struct Span {
    start: usize,
    len: usize,
}

impl Span {
    fn slice<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        &data[self.start..self.start + self.len]
    }
}

/// An opened, fully validated explanation store.
#[derive(Debug)]
pub struct ExplanationStore {
    data: Box<[u8]>,
    provenance: Provenance,
    analytics: Analytics,
    keys: Span,
    text_offsets: Span,
    text: Span,
    feat_table: Span,
    feat_offsets: Span,
    feat_index: Span,
    importance: Span,
    meta: Span,
    n: usize,
}

impl ExplanationStore {
    /// Open and validate a store file.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: I/O failures, truncation, bad magic, an
    /// unsupported format version, checksum mismatches, or
    /// structurally inconsistent sections. A failed open leaves
    /// nothing half-initialized.
    pub fn open(path: impl AsRef<Path>) -> Result<ExplanationStore, StoreError> {
        ExplanationStore::from_bytes(std::fs::read(path)?)
    }

    /// Validate a store from an in-memory buffer (the unit the
    /// corruption tests drive directly).
    ///
    /// # Errors
    ///
    /// See [`ExplanationStore::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<ExplanationStore, StoreError> {
        let data = bytes.into_boxed_slice();
        if data.len() < HEADER_BYTES {
            return Err(StoreError::Truncated("file header"));
        }
        if data[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = read_u32(&data, 8)?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Version { found: version });
        }
        let count = read_u32(&data, 12)? as usize;
        if count != SECTION_IDS.len() {
            return Err(StoreError::Malformed("unexpected section count"));
        }
        let table_end = HEADER_BYTES + count * TABLE_ENTRY_BYTES;
        if data.len() < table_end {
            return Err(StoreError::Truncated("section table"));
        }

        let mut spans = [Span::default(); SECTION_IDS.len()];
        for (slot, expected_id) in SECTION_IDS.iter().enumerate() {
            let entry = HEADER_BYTES + slot * TABLE_ENTRY_BYTES;
            let id = read_u32(&data, entry)?;
            if id != *expected_id {
                return Err(StoreError::Malformed("section table out of order"));
            }
            let offset = read_u64(&data, entry + 8)?;
            let len = read_u64(&data, entry + 16)?;
            let checksum = read_u64(&data, entry + 24)?;
            let start = usize::try_from(offset)
                .map_err(|_| StoreError::Malformed("section offset overflows usize"))?;
            let len = usize::try_from(len)
                .map_err(|_| StoreError::Malformed("section length overflows usize"))?;
            let end =
                start.checked_add(len).ok_or(StoreError::Malformed("section range overflows"))?;
            if end > data.len() {
                return Err(StoreError::Truncated("section payload"));
            }
            if fnv1a64(&data[start..end]) != checksum {
                return Err(StoreError::Checksum { section: id });
            }
            spans[slot] = Span { start, len };
        }
        let span_of = |id: u32| -> Span {
            let slot = SECTION_IDS.iter().position(|s| *s == id).expect("id is in SECTION_IDS");
            spans[slot]
        };

        let provenance: Provenance = parse_json(span_of(SEC_PROVENANCE).slice(&data))?;
        if provenance.v != 1 {
            return Err(StoreError::Malformed("unknown provenance schema"));
        }
        let analytics: Analytics = parse_json(span_of(SEC_ANALYTICS).slice(&data))?;

        let keys = span_of(SEC_KEYS);
        let text_offsets = span_of(SEC_TEXT_OFFSETS);
        let text = span_of(SEC_TEXT);
        let feat_table = span_of(SEC_FEAT_TABLE);
        let feat_offsets = span_of(SEC_FEAT_OFFSETS);
        let feat_index = span_of(SEC_FEAT_INDEX);
        let importance = span_of(SEC_IMPORTANCE);
        let meta = span_of(SEC_META);

        if keys.len % 8 != 0 {
            return Err(StoreError::Malformed("keys section not u64-aligned"));
        }
        let n = keys.len / 8;
        if provenance.records != n as u64 {
            return Err(StoreError::Malformed("record count disagrees with keys section"));
        }
        let expect = |ok: bool, what: &'static str| -> Result<(), StoreError> {
            if ok {
                Ok(())
            } else {
                Err(StoreError::Malformed(what))
            }
        };
        expect(text_offsets.len == (n + 1) * 4, "text offsets sized wrong")?;
        expect(feat_offsets.len == (n + 1) * 4, "feature offsets sized wrong")?;
        expect(importance.len == n * LANES * 8, "importance section sized wrong")?;
        expect(meta.len == n * META_BYTES, "meta section sized wrong")?;
        expect(feat_table.len % FEAT_BYTES == 0, "feature table not entry-aligned")?;
        expect(feat_index.len % 4 == 0, "feature index not u32-aligned")?;

        let store = ExplanationStore {
            data,
            provenance,
            analytics,
            keys,
            text_offsets,
            text,
            feat_table,
            feat_offsets,
            feat_index,
            importance,
            meta,
            n,
        };

        // Keys must be sorted (binary-search contract) and offset
        // arrays monotone and in range.
        for i in 1..store.n {
            if store.key_at(i - 1) > store.key_at(i) {
                return Err(StoreError::Malformed("keys section not sorted"));
            }
        }
        let feat_entries = store.feat_index.len / 4;
        let table_entries = store.feat_table.len / FEAT_BYTES;
        let mut prev_text = 0usize;
        let mut prev_feat = 0usize;
        for i in 0..=store.n {
            let t = store.text_offset(i)?;
            let f = store.feat_offset(i)?;
            expect(t >= prev_text && t <= store.text.len, "text offsets not monotone")?;
            expect(f >= prev_feat && f <= feat_entries, "feature offsets not monotone")?;
            prev_text = t;
            prev_feat = f;
        }
        expect(prev_text == store.text.len, "text blob length disagrees with offsets")?;
        expect(prev_feat == feat_entries, "feature index length disagrees with offsets")?;
        for slot in 0..feat_entries {
            let index = read_u32(&store.data, store.feat_index.start + slot * 4)? as usize;
            expect(index < table_entries, "feature index points past the table")?;
        }
        // Texts must be valid UTF-8 once, up front, so lookups can
        // compare bytes without re-checking.
        std::str::from_utf8(store.text.slice(&store.data))
            .map_err(|_| StoreError::Malformed("text blob is not UTF-8"))?;

        Ok(store)
    }

    /// Number of records in the store.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The provenance header the store was built under.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// The build-time analytics rollups.
    pub fn analytics(&self) -> &Analytics {
        &self.analytics
    }

    /// Look up a block by canonical text: binary search over the key
    /// index, then an exact text compare (hash collisions degrade to a
    /// scan of the equal-key run, never a wrong record). Returns the
    /// record index.
    pub fn lookup_index(&self, canonical_text: &str) -> Option<usize> {
        let key = store_key(canonical_text);
        let mut lo = 0usize;
        let mut hi = self.n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut i = lo;
        while i < self.n && self.key_at(i) == key {
            if self.text_bytes(i) == Some(canonical_text.as_bytes()) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Look up a block by canonical text and materialize its
    /// explanation. Returns `None` on a miss.
    pub fn lookup(&self, canonical_text: &str) -> Option<Explanation> {
        let index = self.lookup_index(canonical_text)?;
        self.explanation_at(index).ok()
    }

    /// The canonical text of record `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` (validated offsets make the slicing
    /// itself infallible).
    pub fn text_at(&self, index: usize) -> &str {
        assert!(index < self.n, "record index out of range");
        let bytes = self.text_bytes(index).expect("offsets validated at open");
        // UTF-8 was validated for the whole blob at open.
        std::str::from_utf8(bytes).expect("text validated at open")
    }

    /// The stored importance lanes of record `index`
    /// (see [`crate::format::LANES`]).
    pub fn importance_at(&self, index: usize) -> [f64; LANES] {
        assert!(index < self.n, "record index out of range");
        let base = self.importance.start + index * LANES * 8;
        std::array::from_fn(|lane| {
            let bits = read_u64(&self.data, base + lane * 8).expect("sized at open");
            f64::from_bits(bits)
        })
    }

    /// The BHive category of record `index`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if the category byte is out of range.
    pub fn category_at(&self, index: usize) -> Result<Category, StoreError> {
        assert!(index < self.n, "record index out of range");
        category_from_byte(self.data[self.meta.start + index * META_BYTES + 17])
    }

    /// Materialize the full explanation of record `index`, bitwise
    /// identical to the one the builder journaled.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if a feature entry decodes to an
    /// unknown tag (possible only for files from a newer writer).
    pub fn explanation_at(&self, index: usize) -> Result<Explanation, StoreError> {
        assert!(index < self.n, "record index out of range");
        let feat_start = self.feat_offset(index)?;
        let feat_end = self.feat_offset(index + 1)?;
        let indices = (feat_start..feat_end).map(|slot| {
            read_u32(&self.data, self.feat_index.start + slot * 4).expect("sized at open")
        });
        let features = features_from_indices(self.feat_table.slice(&self.data), indices)?;
        let lanes = self.importance_at(index);
        let meta = self.meta.start + index * META_BYTES;
        let queries = read_u64(&self.data, meta)?;
        let faults = u64::from(read_u32(&self.data, meta + 8)?);
        let retries = u64::from(read_u32(&self.data, meta + 12)?);
        let flags = self.data[meta + 16];
        Ok(Explanation {
            features,
            precision: lanes[0],
            coverage: lanes[1],
            prediction: lanes[2],
            anchored: flags & FLAG_ANCHORED != 0,
            queries,
            faults,
            retries,
            degraded: flags & FLAG_DEGRADED != 0,
            duration_secs: 0.0,
        })
    }

    /// Iterate over all canonical texts in key order (bench and test
    /// drivers pick their probe blocks from here).
    pub fn iter_texts(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.n).map(|i| self.text_at(i))
    }

    fn key_at(&self, index: usize) -> u64 {
        read_u64(&self.data, self.keys.start + index * 8).expect("sized at open")
    }

    fn text_bytes(&self, index: usize) -> Option<&[u8]> {
        let start = self.text_offset(index).ok()?;
        let end = self.text_offset(index + 1).ok()?;
        self.text.slice(&self.data).get(start..end)
    }

    fn text_offset(&self, index: usize) -> Result<usize, StoreError> {
        Ok(read_u32(&self.data, self.text_offsets.start + index * 4)? as usize)
    }

    fn feat_offset(&self, index: usize) -> Result<usize, StoreError> {
        Ok(read_u32(&self.data, self.feat_offsets.start + index * 4)? as usize)
    }
}

/// Parse just the provenance header out of a store file without full
/// validation — what `readyz` reporting uses when a store fails to
/// open but its header survived. Returns `None` if even that much is
/// unreadable.
pub fn peek_provenance(bytes: &[u8]) -> Option<Provenance> {
    if bytes.len() < HEADER_BYTES || bytes[..8] != MAGIC {
        return None;
    }
    let count = read_u32(bytes, 12).ok()? as usize;
    let table_end = HEADER_BYTES.checked_add(count.checked_mul(TABLE_ENTRY_BYTES)?)?;
    if bytes.len() < table_end {
        return None;
    }
    for slot in 0..count {
        let entry = HEADER_BYTES + slot * TABLE_ENTRY_BYTES;
        if read_u32(bytes, entry).ok()? != SEC_PROVENANCE {
            continue;
        }
        let start = usize::try_from(read_u64(bytes, entry + 8).ok()?).ok()?;
        let len = usize::try_from(read_u64(bytes, entry + 16).ok()?).ok()?;
        let payload = bytes.get(start..start.checked_add(len)?)?;
        return parse_json::<Provenance>(payload).ok();
    }
    None
}

/// The vendored serde_json exposes only `from_str`; store JSON is
/// written by `to_vec` and therefore valid UTF-8.
fn parse_json<T: serde::Deserialize>(payload: &[u8]) -> Result<T, StoreError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| StoreError::Malformed("JSON section is not UTF-8"))?;
    Ok(serde_json::from_str(text)?)
}

fn read_u32(data: &[u8], offset: usize) -> Result<u32, StoreError> {
    data.get(offset..offset + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(StoreError::Truncated("u32 field"))
}

fn read_u64(data: &[u8], offset: usize) -> Result<u64, StoreError> {
    data.get(offset..offset + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(StoreError::Truncated("u64 field"))
}
