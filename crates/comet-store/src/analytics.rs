//! Build-time aggregation analytics: the paper's Figure 3/4
//! per-category feature-importance breakdowns (and a per-opcode
//! variant) computed once over the whole corpus and stored in the
//! file's ANALYTICS section, so serving them is a JSON copy, not a
//! corpus scan.
//!
//! The percentage definition is deliberately identical to
//! `comet_eval::figures::feature_mix` — the share of explanations
//! containing at least one feature of the kind, in percent — so the
//! `/analytics/categories` ranking reproduces the eval path's
//! Figure 3/4 numbers exactly.

use std::collections::BTreeMap;

use comet_bhive::Category;
use comet_core::{Feature, FeatureKind};
use serde::{Deserialize, Serialize};

use crate::format::StoreRecord;

/// Analytics schema version inside the ANALYTICS section.
pub const ANALYTICS_V: u32 = 1;

/// Feature-importance rollup for one BHive category (one Figure 4
/// bar group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryRollup {
    /// Category display label (`Load`, `Load/Store`, …).
    pub category: String,
    /// Blocks of this category in the store.
    pub blocks: u64,
    /// Mean explanation precision over those blocks.
    pub mean_precision: f64,
    /// Mean explanation coverage.
    pub mean_coverage: f64,
    /// % of explanations containing ≥1 η feature (feature_mix-compatible).
    pub pct_eta: f64,
    /// % of explanations containing ≥1 instruction feature.
    pub pct_inst: f64,
    /// % of explanations containing ≥1 dependency feature.
    pub pct_dep: f64,
    /// Mean fraction of explanation features that are instructions.
    pub mean_inst_frac: f64,
    /// Mean fraction that are dependencies.
    pub mean_dep_frac: f64,
    /// Mean fraction that are η.
    pub mean_eta_frac: f64,
}

/// Feature-importance rollup for one opcode: of the blocks containing
/// the opcode, how often does an instruction feature single it out?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpcodeRollup {
    /// Opcode mnemonic.
    pub opcode: String,
    /// Blocks in the store containing ≥1 instance of the opcode.
    pub blocks: u64,
    /// Of those, blocks whose explanation includes an `inst_i` feature
    /// pointing at an instance of this opcode.
    pub important: u64,
    /// `important / blocks` (0 when the opcode never appears).
    pub importance_rate: f64,
}

/// The full rollup set stored in (and served from) a store file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analytics {
    /// Analytics schema version.
    pub v: u32,
    /// One rollup per category, in [`Category::ALL`] (Figure 4) order —
    /// zero-block categories included so the shape is stable.
    pub categories: Vec<CategoryRollup>,
    /// Opcode rollups, sorted by importance rate (desc), then block
    /// count (desc), then mnemonic.
    pub opcodes: Vec<OpcodeRollup>,
}

/// Compute the full analytics rollup from finished store records.
pub fn compute_analytics(records: &[StoreRecord]) -> Analytics {
    let categories = Category::ALL
        .iter()
        .map(|&category| {
            let members: Vec<&StoreRecord> =
                records.iter().filter(|r| r.category == category).collect();
            category_rollup(category, &members)
        })
        .collect();

    // opcode -> (blocks containing it, blocks where it is important)
    let mut per_opcode: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for record in records {
        let instructions = record.block.instructions();
        let mut present: BTreeMap<&'static str, bool> = BTreeMap::new();
        for inst in instructions {
            present.entry(inst.opcode.name()).or_insert(false);
        }
        for feature in &record.explanation.features {
            if let Feature::Instruction(i) = feature {
                if let Some(inst) = instructions.get(*i) {
                    present.insert(inst.opcode.name(), true);
                }
            }
        }
        for (name, important) in present {
            let entry = per_opcode.entry(name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += u64::from(important);
        }
    }
    let mut opcodes: Vec<OpcodeRollup> = per_opcode
        .into_iter()
        .map(|(opcode, (blocks, important))| OpcodeRollup {
            opcode: opcode.to_string(),
            blocks,
            important,
            importance_rate: if blocks == 0 { 0.0 } else { important as f64 / blocks as f64 },
        })
        .collect();
    opcodes.sort_by(|a, b| {
        b.importance_rate
            .total_cmp(&a.importance_rate)
            .then(b.blocks.cmp(&a.blocks))
            .then(a.opcode.cmp(&b.opcode))
    });

    Analytics { v: ANALYTICS_V, categories, opcodes }
}

fn category_rollup(category: Category, members: &[&StoreRecord]) -> CategoryRollup {
    let n = members.len();
    let denom = n.max(1) as f64;
    // Same definition as comet_eval::figures::feature_mix: percent of
    // explanations containing at least one feature of the kind.
    let pct = |kind: FeatureKind| {
        let hits = members
            .iter()
            .filter(|r| r.explanation.features.iter().any(|f| f.kind() == kind))
            .count();
        100.0 * hits as f64 / denom
    };
    let mean = |f: &dyn Fn(&StoreRecord) -> f64| members.iter().map(|r| f(r)).sum::<f64>() / denom;
    CategoryRollup {
        category: category.to_string(),
        blocks: n as u64,
        mean_precision: mean(&|r| r.explanation.precision),
        mean_coverage: mean(&|r| r.explanation.coverage),
        pct_eta: pct(FeatureKind::Eta),
        pct_inst: pct(FeatureKind::Inst),
        pct_dep: pct(FeatureKind::Dep),
        mean_inst_frac: mean(&|r| r.explanation.kind_fractions()[0]),
        mean_dep_frac: mean(&|r| r.explanation.kind_fractions()[1]),
        mean_eta_frac: mean(&|r| r.explanation.kind_fractions()[2]),
    }
}
