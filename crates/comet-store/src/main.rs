//! `comet-store`: build and inspect precomputed explanation stores.
//!
//! ```text
//! comet-store build --out PATH [--model crude-haswell|crude-skylake|uica]
//!                   [--blocks N] [--corpus-seed S] [--seed S]
//!                   [--epsilon E] [--journal DIR] [--batch N]
//!                   [--search-pool N] [--model-version V] [--force-scalar]
//! comet-store info PATH [--sample]
//! ```
//!
//! `build` is resumable: re-run with the same `--journal DIR` after an
//! interruption and completed blocks are skipped. `info` prints the
//! provenance header and analytics summary as JSON; `--sample` appends
//! the first stored block's canonical text (handy for crafting a
//! guaranteed-hit request against a serving instance).

use std::path::PathBuf;
use std::process::ExitCode;

use comet_store::{build_store, BuildConfig, BuildModel, ExplanationStore};

fn usage() -> &'static str {
    "usage:\n  comet-store build --out PATH [--model crude-haswell|crude-skylake|uica]\n                    [--blocks N] [--corpus-seed S] [--seed S] [--epsilon E]\n                    [--journal DIR] [--batch N] [--search-pool N]\n                    [--model-version V] [--force-scalar]\n  comet-store info PATH [--sample]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => run_build(&args[1..]),
        Some("info") => run_info(&args[1..]),
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_build(args: &[String]) -> ExitCode {
    let mut cfg = BuildConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Option<String> {
            i += 1;
            let v = args.get(i).cloned();
            if v.is_none() {
                eprintln!("missing value for {name}");
            }
            v
        };
        match flag {
            "--out" => match value("--out") {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return ExitCode::from(2),
            },
            "--model" => match value("--model").as_deref().and_then(BuildModel::parse) {
                Some(m) => cfg.model = m,
                None => {
                    eprintln!("unknown model (expected crude-haswell, crude-skylake, or uica)");
                    return ExitCode::from(2);
                }
            },
            "--blocks" => match value("--blocks").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.blocks = n,
                None => return ExitCode::from(2),
            },
            "--corpus-seed" => match value("--corpus-seed").and_then(|v| v.parse().ok()) {
                Some(s) => cfg.corpus_seed = s,
                None => return ExitCode::from(2),
            },
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => return ExitCode::from(2),
            },
            "--epsilon" => match value("--epsilon").and_then(|v| v.parse().ok()) {
                Some(e) => cfg.epsilon = Some(e),
                None => return ExitCode::from(2),
            },
            "--journal" => match value("--journal") {
                Some(v) => cfg.journal_dir = Some(PathBuf::from(v)),
                None => return ExitCode::from(2),
            },
            "--batch" => match value("--batch").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.batch = n,
                None => return ExitCode::from(2),
            },
            "--search-pool" => match value("--search-pool").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.search_pool = n,
                None => return ExitCode::from(2),
            },
            "--model-version" => match value("--model-version").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.model_version = v,
                None => return ExitCode::from(2),
            },
            "--force-scalar" => {
                let _ = comet_nn::kernel::force_scalar();
            }
            _ => {
                eprintln!("unknown flag {flag}\n{}", usage());
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(out) = out else {
        eprintln!("--out is required\n{}", usage());
        return ExitCode::from(2);
    };
    match build_store(&out, &cfg) {
        Ok(report) => {
            println!(
                "{}",
                serde_json::json!({
                    "v": 1,
                    "out": report.out.display().to_string(),
                    "records": report.records,
                    "resumed": report.resumed,
                    "explained": report.explained,
                    "fingerprint": report.fingerprint,
                })
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("comet-store build failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let sample = args.iter().any(|a| a == "--sample");
    match ExplanationStore::open(path) {
        Ok(store) => {
            let p = store.provenance();
            let top_opcodes: Vec<&str> =
                store.analytics().opcodes.iter().take(5).map(|o| o.opcode.as_str()).collect();
            println!(
                "{}",
                serde_json::json!({
                    "v": 1,
                    "records": store.len(),
                    "model_kind": p.model_kind.clone(),
                    "model_version": p.model_version,
                    "epsilon": p.epsilon(),
                    "seed": p.seed,
                    "kernel": p.kernel.clone(),
                    "search": p.search.clone(),
                    "config_fingerprint": p.config_fingerprint.clone(),
                    "categories": store.analytics().categories.len(),
                    "top_opcodes": top_opcodes,
                })
            );
            if sample {
                if let Some(text) = store.iter_texts().next() {
                    println!("{text}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("comet-store info failed: {e}");
            ExitCode::FAILURE
        }
    }
}
