//! The offline bulk builder: batch-explain a BHive corpus through the
//! batched anchors search, journal every completed block write-ahead,
//! and publish the columnar store atomically.
//!
//! Determinism contract: every block is explained with **one constant,
//! request-visible seed** (default 0) and the exact `ExplainConfig`
//! the serving path would use for the same model and ε. That is what
//! makes a store hit *bitwise* substitutable for a live explain — a
//! request for `(block, store-ε, store-seed)` against the same model
//! version and kernel would have produced these exact bytes.
//!
//! Resumability reuses the comet-eval write-ahead journal unchanged:
//! each completed block is appended and fsynced before the next
//! starts, the journal fingerprint binds (model, config, seed, search
//! generation, kernel, block set), and a re-run skips everything the
//! journal already holds. The store file itself is only written at the
//! end, via the journal's atomic tmp+fsync+rename discipline, so a
//! crash mid-build never leaves a torn store — just a journal to
//! resume from.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use comet_bhive::{classify, Corpus, GenConfig};
use comet_core::{BatchExec, ExplainConfig, ExplainError, Explainer, Explanation};
use comet_eval::journal::{atomic_write, fingerprint, Journal, JournalError, JournalRecord};
use comet_isa::Microarch;
use comet_models::{CostModel, CrudeModel, UicaSurrogate};

use crate::analytics::compute_analytics;
use crate::format::{write_store, Provenance, StoreRecord};
use crate::reader::StoreError;

/// Which cost model to explain the corpus under. Labels match
/// comet-serve's `ModelKind` labels exactly — the serving read path
/// compares them when deciding whether a store is usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildModel {
    /// Crude analytical model, Haswell port model (ε 0.25).
    CrudeHaswell,
    /// Crude analytical model, Skylake port model (ε 0.25).
    CrudeSkylake,
    /// uiCA-style pipeline-simulator surrogate (ε 0.5).
    Uica,
}

impl BuildModel {
    /// Parse a CLI label (same grammar as `comet-serve --model`).
    pub fn parse(s: &str) -> Option<BuildModel> {
        match s {
            "crude" | "crude-haswell" => Some(BuildModel::CrudeHaswell),
            "crude-skylake" => Some(BuildModel::CrudeSkylake),
            "uica" => Some(BuildModel::Uica),
            _ => None,
        }
    }

    /// Canonical label (matches `ModelKind::label` in comet-serve).
    pub fn label(self) -> &'static str {
        match self {
            BuildModel::CrudeHaswell => "crude-haswell",
            BuildModel::CrudeSkylake => "crude-skylake",
            BuildModel::Uica => "uica",
        }
    }

    /// Instantiate the model and its paper-default ε.
    pub fn build(self) -> (Box<dyn CostModel + Send + Sync>, f64) {
        match self {
            BuildModel::CrudeHaswell => (Box::new(CrudeModel::new(Microarch::Haswell)), 0.25),
            BuildModel::CrudeSkylake => (Box::new(CrudeModel::new(Microarch::Skylake)), 0.25),
            BuildModel::Uica => (Box::new(UicaSurrogate::new(Microarch::Haswell)), 0.5),
        }
    }
}

/// Everything a build run is parameterized by.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Model to explain under.
    pub model: BuildModel,
    /// Corpus size (blocks to generate and explain).
    pub blocks: usize,
    /// Corpus generation seed (default mirrors comet-eval's corpus).
    pub corpus_seed: u64,
    /// The request-visible explanation seed every block uses.
    pub seed: u64,
    /// ε override; `None` takes the model's paper default.
    pub epsilon: Option<f64>,
    /// Model-call batch size for the batched search (results are
    /// invariant to it).
    pub batch: usize,
    /// Intra-explanation worker-pool size (results invariant).
    pub search_pool: usize,
    /// Journal directory for resumable builds; `None` disables
    /// durability (the store is still written atomically).
    pub journal_dir: Option<PathBuf>,
    /// Model version stamped into provenance. Serving refuses hits
    /// when its live epoch version differs.
    pub model_version: u64,
}

impl Default for BuildConfig {
    fn default() -> BuildConfig {
        BuildConfig {
            model: BuildModel::CrudeHaswell,
            blocks: 64,
            // Same corpus seed comet-eval uses, so store-built and
            // eval-run corpora line up block for block.
            corpus_seed: 0xB10C5,
            seed: 0,
            epsilon: None,
            batch: 16,
            search_pool: 1,
            journal_dir: None,
            model_version: 1,
        }
    }
}

/// What a completed build did.
#[derive(Debug)]
pub struct BuildReport {
    /// Records written to the store.
    pub records: usize,
    /// Blocks recovered from the journal instead of re-explained.
    pub resumed: usize,
    /// Blocks explained fresh this run.
    pub explained: usize,
    /// The run fingerprint (also in provenance).
    pub fingerprint: String,
    /// Where the store landed.
    pub out: PathBuf,
}

/// Why a build failed.
#[derive(Debug)]
pub enum BuildError {
    /// Store serialization or publication failed.
    Store(StoreError),
    /// The write-ahead journal refused (fingerprint mismatch, I/O).
    Journal(JournalError),
    /// The explanation search failed on a block.
    Explain {
        /// Index of the failing block in the corpus.
        index: usize,
        /// The underlying search error.
        source: ExplainError,
    },
    /// Filesystem failure outside the journal.
    Io(std::io::Error),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Store(e) => write!(f, "store build failed: {e}"),
            BuildError::Journal(e) => write!(f, "store build journal failed: {e}"),
            BuildError::Explain { index, source } => {
                write!(f, "explanation failed on corpus block {index}: {source}")
            }
            BuildError::Io(e) => write!(f, "store build i/o failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Store(e) => Some(e),
            BuildError::Journal(e) => Some(e),
            BuildError::Explain { source, .. } => Some(source),
            BuildError::Io(e) => Some(e),
        }
    }
}

impl From<StoreError> for BuildError {
    fn from(e: StoreError) -> BuildError {
        BuildError::Store(e)
    }
}

impl From<JournalError> for BuildError {
    fn from(e: JournalError) -> BuildError {
        BuildError::Journal(e)
    }
}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> BuildError {
        BuildError::Io(e)
    }
}

/// The `ExplainConfig` a build (and the matching serve path) runs
/// with: paper defaults with ε substituted — exactly how comet-serve
/// derives its per-request config.
pub fn effective_config(model: BuildModel, epsilon: Option<f64>) -> ExplainConfig {
    let (_, default_epsilon) = model.build();
    ExplainConfig { epsilon: epsilon.unwrap_or(default_epsilon), ..ExplainConfig::default() }
}

/// Build a store at `out` per `cfg`: generate the corpus, explain
/// every block (resuming from the journal when one is configured),
/// compute analytics, and publish atomically.
///
/// # Errors
///
/// Any [`BuildError`]; on error nothing is published at `out` (an
/// existing file there is left untouched) and the journal retains all
/// completed blocks for resumption.
pub fn build_store(out: &Path, cfg: &BuildConfig) -> Result<BuildReport, BuildError> {
    let (model, default_epsilon) = cfg.model.build();
    let epsilon = cfg.epsilon.unwrap_or(default_epsilon);
    let config = ExplainConfig { epsilon, ..ExplainConfig::default() };
    let corpus = Corpus::generate(cfg.blocks, GenConfig::default(), cfg.corpus_seed);
    let blocks: Vec<_> = corpus.iter().map(|b| b.block.clone()).collect();
    let texts: Vec<String> = blocks.iter().map(|b| b.to_string()).collect();

    // Fingerprint mirrors comet-eval's run fingerprint (model, config,
    // seed, search generation, kernel, block set) plus a store tag so
    // store journals never cross-resume with eval journals.
    let config_json = serde_json::to_string(&config).unwrap_or_default();
    let mut parts: Vec<String> = vec![
        "comet-store/v1".to_string(),
        cfg.model.label().to_string(),
        config_json,
        cfg.seed.to_string(),
        "search=batched-v2".to_string(),
        format!("kernel={}", comet_nn::kernel::active().name),
    ];
    parts.extend(texts.iter().cloned());
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    let run_fingerprint = fingerprint(&refs);

    let mut done: HashMap<usize, Explanation> = HashMap::new();
    let journal = match &cfg.journal_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let path = dir.join("comet-store.jsonl");
            let (journal, recovery) = Journal::open_or_create(&path, &run_fingerprint)?;
            for record in recovery.records {
                // The fingerprint already binds the block set; the
                // text cross-check guards against hand-edited files.
                if texts.get(record.index).map(String::as_str) == Some(record.block.as_str())
                    && record.seed == cfg.seed
                {
                    done.insert(record.index, record.explanation);
                }
            }
            Some(journal)
        }
        None => None,
    };
    let resumed = done.len();

    let explainer = Explainer::new(model, config);
    let exec = BatchExec::new(cfg.batch, cfg.search_pool);
    let mut explained = 0usize;
    for (index, block) in blocks.iter().enumerate() {
        if done.contains_key(&index) {
            continue;
        }
        let explanation = explainer
            .explain_batched(block, cfg.seed, &exec)
            .map_err(|source| BuildError::Explain { index, source })?;
        if let Some(journal) = &journal {
            let record = JournalRecord {
                index,
                block: texts[index].clone(),
                seed: cfg.seed,
                explanation: explanation.clone(),
            };
            if let Err(e) = journal.append(&record) {
                // Durability degrades, the build does not.
                eprintln!("warning: journal append failed for block {index}: {e}");
            }
        }
        done.insert(index, explanation);
        explained += 1;
    }

    let records: Vec<StoreRecord> = blocks
        .iter()
        .enumerate()
        .map(|(index, block)| StoreRecord {
            block: block.clone(),
            category: classify(block),
            explanation: done.remove(&index).expect("every index explained or resumed"),
        })
        .collect();

    let analytics = compute_analytics(&records);
    let provenance = Provenance {
        v: 1,
        model_kind: cfg.model.label().to_string(),
        model_version: cfg.model_version,
        epsilon_bits: epsilon.to_bits(),
        seed: cfg.seed,
        kernel: comet_nn::kernel::active().name.to_string(),
        search: "search=batched-v2".to_string(),
        records: records.len() as u64,
        config_fingerprint: run_fingerprint.clone(),
    };
    let bytes = write_store(&records, &provenance, &analytics)?;
    atomic_write(out, &bytes)?;
    Ok(BuildReport {
        records: records.len(),
        resumed,
        explained,
        fingerprint: run_fingerprint,
        out: out.to_path_buf(),
    })
}
