//! Precomputed explanation store (ROADMAP item 4, Thermostat-style):
//! explanations are deterministic given (model version, seed, config,
//! kernel), so this crate computes them *once* over a whole corpus and
//! ships them as a dataset instead of a per-request search.
//!
//! Three pieces:
//!
//! * **Builder** ([`build_store`], `comet-store build`): batch-explains
//!   a BHive corpus through the batched anchors search, write-ahead
//!   journaling every completed block (resumable, crash-safe), then
//!   publishes one columnar file atomically.
//! * **Format** ([`format`], COMETS1): checksummed sections — sorted
//!   FNV-1a key index, canonical block texts, interned feature tables,
//!   bit-exact importance lanes, provenance (model kind/version, ε
//!   bits, seed, kernel) — laid out for binary-search lookup straight
//!   over the file bytes.
//! * **Reader + analytics** ([`ExplanationStore`], [`Analytics`]):
//!   validated zero-copy lookups that reconstruct explanations bitwise,
//!   plus build-time per-category and per-opcode importance rollups
//!   (the paper's Figure 3/4 breakdowns) that comet-serve exposes at
//!   `GET /analytics/categories` and `/analytics/opcodes`.
//!
//! Staleness is handled structurally, not by freshness heuristics: the
//! provenance header pins the model version, and the serving read path
//! refuses hits the moment a hot-swap changes the live version.

pub mod analytics;
pub mod builder;
pub mod format;
pub mod reader;

pub use analytics::{compute_analytics, Analytics, CategoryRollup, OpcodeRollup};
pub use builder::{build_store, BuildConfig, BuildError, BuildModel, BuildReport};
pub use format::{store_key, write_store, Provenance, StoreRecord};
pub use reader::{peek_provenance, ExplanationStore, StoreError};
