//! The COMETS1 columnar on-disk format.
//!
//! A store file is one self-describing blob, little-endian throughout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "COMETS1\0" (8) │ format version u32 │ section count u32│
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table: count × { id u32, pad u32, offset u64,        │
//! │                          len u64, fnv1a64 checksum u64 }     │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section payloads (order matches the table)                   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Sections (all offsets are absolute file offsets):
//!
//! | id | name         | layout                                         |
//! |----|--------------|------------------------------------------------|
//! | 1  | PROVENANCE   | JSON [`Provenance`]                            |
//! | 2  | KEYS         | n × u64, sorted — FNV-1a of canonical text     |
//! | 3  | TEXT_OFFSETS | (n+1) × u32 into TEXT                          |
//! | 4  | TEXT         | concatenated UTF-8 canonical block texts       |
//! | 5  | FEAT_TABLE   | m × 6 bytes, interned unique features          |
//! | 6  | FEAT_OFFSETS | (n+1) × u32 into FEAT_INDEX (in entries)       |
//! | 7  | FEAT_INDEX   | Σ × u32 indices into FEAT_TABLE                |
//! | 8  | IMPORTANCE   | n × 6 × f64 bits (see [`LANES`])               |
//! | 9  | META         | n × 24 bytes (queries, faults, retries, flags) |
//! | 10 | ANALYTICS    | JSON [`Analytics`](crate::analytics::Analytics)|
//!
//! Records are stored in ascending key order so lookups binary-search
//! the KEYS section directly over the raw bytes — no deserialization
//! of anything but the hit. Equal keys (FNV collisions between
//! distinct texts) sit adjacent; the reader scans the run and compares
//! canonical text bytes, so a collision degrades to a short linear
//! scan, never a wrong answer. Floats travel as IEEE-754 bit patterns
//! (`to_bits`/`from_bits`), which is what makes store-served
//! explanations *bitwise* identical to the live search's output.
//!
//! Every section is FNV-1a-checksummed independently, so a flipped
//! byte anywhere — header, keys, payload — fails `open` with a typed
//! [`StoreError`](crate::reader::StoreError) instead of serving
//! corrupt explanations or panicking.

use comet_bhive::Category;
use comet_core::{Explanation, Feature, FeatureSet};
use comet_eval::journal::fnv1a64;
use comet_graph::DepKind;
use comet_isa::BasicBlock;
use serde::{Deserialize, Serialize};

use crate::analytics::Analytics;
use crate::reader::StoreError;

/// File magic: format name + version generation, NUL-padded to 8.
pub const MAGIC: [u8; 8] = *b"COMETS1\0";

/// Format version. Bump on any layout change; readers refuse newer
/// versions rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Importance lanes stored per record, in order:
/// `[precision, coverage, prediction, inst_frac, dep_frac, eta_frac]`.
/// The first three reconstruct the explanation bitwise; the fraction
/// lanes are [`Explanation::kind_fractions`] in `FeatureKind::ALL`
/// order, precomputed so corpus-wide scans never re-walk feature sets.
pub const LANES: usize = 6;

/// Bytes per interned feature in FEAT_TABLE:
/// `[tag, 0, a_lo, a_hi, b_lo, b_hi]`.
pub const FEAT_BYTES: usize = 6;

/// Bytes per META record:
/// `queries u64 | faults u32 | retries u32 | flags u8 | category u8 | pad [u8; 6]`.
pub const META_BYTES: usize = 24;

/// META flags bit: the precision threshold was reached.
pub const FLAG_ANCHORED: u8 = 1 << 0;
/// META flags bit: the explanation was produced under degraded
/// conditions (faulted queries or a degraded model).
pub const FLAG_DEGRADED: u8 = 1 << 1;

pub(crate) const SEC_PROVENANCE: u32 = 1;
pub(crate) const SEC_KEYS: u32 = 2;
pub(crate) const SEC_TEXT_OFFSETS: u32 = 3;
pub(crate) const SEC_TEXT: u32 = 4;
pub(crate) const SEC_FEAT_TABLE: u32 = 5;
pub(crate) const SEC_FEAT_OFFSETS: u32 = 6;
pub(crate) const SEC_FEAT_INDEX: u32 = 7;
pub(crate) const SEC_IMPORTANCE: u32 = 8;
pub(crate) const SEC_META: u32 = 9;
pub(crate) const SEC_ANALYTICS: u32 = 10;

/// All section ids a v1 file must carry, in file order.
pub(crate) const SECTION_IDS: [u32; 10] = [
    SEC_PROVENANCE,
    SEC_KEYS,
    SEC_TEXT_OFFSETS,
    SEC_TEXT,
    SEC_FEAT_TABLE,
    SEC_FEAT_OFFSETS,
    SEC_FEAT_INDEX,
    SEC_IMPORTANCE,
    SEC_META,
    SEC_ANALYTICS,
];

/// Bytes per section-table entry: id u32, pad u32, offset u64, len
/// u64, checksum u64.
pub(crate) const TABLE_ENTRY_BYTES: usize = 32;

/// Fixed header before the section table: magic + version + count.
pub(crate) const HEADER_BYTES: usize = 8 + 4 + 4;

/// The store's lookup key: FNV-1a over the canonical block text. The
/// same hash family as the serving cache and journal checksums —
/// collisions are tolerated (the reader compares texts), not assumed
/// away.
pub fn store_key(canonical_text: &str) -> u64 {
    fnv1a64(canonical_text.as_bytes())
}

/// Provenance header binding a store to the exact serving
/// configuration that can reuse it. The serve read path refuses hits
/// unless model kind, model version, ε bits, and seed all match the
/// live request — a hot-swap bumps the version and structurally
/// invalidates every record without touching the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Provenance schema version (independent of the file format).
    pub v: u32,
    /// Model kind label (`crude-haswell` / `crude-skylake` / `uica`),
    /// matching comet-serve's `ModelKind` labels.
    pub model_kind: String,
    /// Registry model version the explanations were computed under.
    pub model_version: u64,
    /// IEEE-754 bits of the ε the search ran with (bits, not decimal,
    /// so the match against a request ε is exact).
    pub epsilon_bits: u64,
    /// The request-visible RNG seed every block was explained with.
    pub seed: u64,
    /// Inference kernel variant (`scalar-v1` / `avx2-v1`); kernels
    /// agree only to a ULP bound, so a store is kernel-specific.
    pub kernel: String,
    /// Search-path generation tag (`search=batched-v2`).
    pub search: String,
    /// Record count (cross-checked against every per-record section).
    pub records: u64,
    /// Fingerprint of (model, config, seed, block set) — the same
    /// binding the build journal uses, for operator forensics.
    pub config_fingerprint: String,
}

impl Provenance {
    /// The ε as a float (display only; matching uses the bits).
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.epsilon_bits)
    }
}

/// One record heading into a store: the block, its taxonomy category,
/// and the completed explanation.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// The explained block (canonical text = `block.to_string()`).
    pub block: BasicBlock,
    /// BHive category (from [`comet_bhive::classify`]).
    pub category: Category,
    /// The explanation, diagnostics included.
    pub explanation: Explanation,
}

/// Encode one feature into its fixed 6-byte interned form.
///
/// # Errors
///
/// [`StoreError::Unrepresentable`] when an instruction index exceeds
/// `u16::MAX` — far beyond any basic block this pipeline produces, but
/// refused explicitly rather than truncated silently.
pub fn encode_feature(feature: &Feature) -> Result<[u8; FEAT_BYTES], StoreError> {
    let narrow = |i: usize| -> Result<u16, StoreError> {
        u16::try_from(i).map_err(|_| StoreError::Unrepresentable("instruction index > u16::MAX"))
    };
    let (tag, a, b) = match feature {
        Feature::NumInstructions => (0u8, 0u16, 0u16),
        Feature::Instruction(i) => (1, narrow(*i)?, 0),
        Feature::Dependency { kind, src, dst } => {
            let tag = match kind {
                DepKind::Raw => 2,
                DepKind::War => 3,
                DepKind::Waw => 4,
            };
            (tag, narrow(*src)?, narrow(*dst)?)
        }
    };
    let [a_lo, a_hi] = a.to_le_bytes();
    let [b_lo, b_hi] = b.to_le_bytes();
    Ok([tag, 0, a_lo, a_hi, b_lo, b_hi])
}

/// Decode a 6-byte interned feature.
///
/// # Errors
///
/// [`StoreError::Malformed`] on an unknown tag (which means the table
/// bytes passed their checksum but were written by something newer —
/// refuse rather than misread).
pub fn decode_feature(bytes: [u8; FEAT_BYTES]) -> Result<Feature, StoreError> {
    let a = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
    let b = u16::from_le_bytes([bytes[4], bytes[5]]) as usize;
    match bytes[0] {
        0 => Ok(Feature::NumInstructions),
        1 => Ok(Feature::Instruction(a)),
        2 => Ok(Feature::Dependency { kind: DepKind::Raw, src: a, dst: b }),
        3 => Ok(Feature::Dependency { kind: DepKind::War, src: a, dst: b }),
        4 => Ok(Feature::Dependency { kind: DepKind::Waw, src: a, dst: b }),
        _ => Err(StoreError::Malformed("unknown feature tag")),
    }
}

/// Category ↔ byte for the META section, indexed into
/// [`Category::ALL`] (stable: the array order is the paper's Figure 4
/// order and part of the format).
pub(crate) fn category_byte(category: Category) -> u8 {
    Category::ALL.iter().position(|c| *c == category).expect("Category::ALL covers every category")
        as u8
}

pub(crate) fn category_from_byte(byte: u8) -> Result<Category, StoreError> {
    Category::ALL
        .get(byte as usize)
        .copied()
        .ok_or(StoreError::Malformed("category byte out of range"))
}

/// Serialize a complete store to bytes: records are sorted by
/// `(key, text)`, exact-duplicate texts are dropped (keeping the
/// first), features are interned, and every section is checksummed.
///
/// The writer is pure (bytes in, bytes out); callers publish the blob
/// with [`comet_eval::journal::atomic_write`] so a crash mid-build
/// never leaves a torn store on disk.
///
/// # Errors
///
/// [`StoreError::Unrepresentable`] for features outside the encoding's
/// range, [`StoreError::Json`] if provenance or analytics fail to
/// serialize, [`StoreError::Unrepresentable`] when text or feature
/// payloads overflow the u32 offset space (≈4 GiB of block text).
pub fn write_store(
    records: &[StoreRecord],
    provenance: &Provenance,
    analytics: &Analytics,
) -> Result<Vec<u8>, StoreError> {
    // Sort once by (key, text); dedup exact texts.
    let mut ordered: Vec<(u64, String, &StoreRecord)> = records
        .iter()
        .map(|r| {
            let text = r.block.to_string();
            (store_key(&text), text, r)
        })
        .collect();
    ordered.sort_by(|x, y| (x.0, x.1.as_str()).cmp(&(y.0, y.1.as_str())));
    ordered.dedup_by(|x, y| x.0 == y.0 && x.1 == y.1);
    let n = ordered.len();

    let mut provenance = provenance.clone();
    provenance.records = n as u64;

    // Intern features across all records, table in first-seen order.
    let mut table: Vec<[u8; FEAT_BYTES]> = Vec::new();
    let mut table_index: std::collections::HashMap<[u8; FEAT_BYTES], u32> =
        std::collections::HashMap::new();
    let mut feat_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut feat_index: Vec<u32> = Vec::new();
    feat_offsets.push(0);
    for (_, _, record) in &ordered {
        for feature in &record.explanation.features {
            let encoded = encode_feature(feature)?;
            let slot = *table_index.entry(encoded).or_insert_with(|| {
                table.push(encoded);
                (table.len() - 1) as u32
            });
            feat_index.push(slot);
        }
        let len = u32::try_from(feat_index.len())
            .map_err(|_| StoreError::Unrepresentable("feature index overflows u32"))?;
        feat_offsets.push(len);
    }

    // Text blob + offsets.
    let mut text_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut text_blob: Vec<u8> = Vec::new();
    text_offsets.push(0);
    for (_, text, _) in &ordered {
        text_blob.extend_from_slice(text.as_bytes());
        let len = u32::try_from(text_blob.len())
            .map_err(|_| StoreError::Unrepresentable("text blob overflows u32"))?;
        text_offsets.push(len);
    }

    // Per-record numeric lanes and metadata.
    let mut keys: Vec<u8> = Vec::with_capacity(n * 8);
    let mut importance: Vec<u8> = Vec::with_capacity(n * LANES * 8);
    let mut meta: Vec<u8> = Vec::with_capacity(n * META_BYTES);
    for (key, _, record) in &ordered {
        keys.extend_from_slice(&key.to_le_bytes());
        let e = &record.explanation;
        let fractions = e.kind_fractions();
        for lane in
            [e.precision, e.coverage, e.prediction, fractions[0], fractions[1], fractions[2]]
        {
            importance.extend_from_slice(&lane.to_bits().to_le_bytes());
        }
        meta.extend_from_slice(&e.queries.to_le_bytes());
        let faults = u32::try_from(e.faults).unwrap_or(u32::MAX);
        let retries = u32::try_from(e.retries).unwrap_or(u32::MAX);
        meta.extend_from_slice(&faults.to_le_bytes());
        meta.extend_from_slice(&retries.to_le_bytes());
        let mut flags = 0u8;
        if e.anchored {
            flags |= FLAG_ANCHORED;
        }
        if e.degraded {
            flags |= FLAG_DEGRADED;
        }
        meta.push(flags);
        meta.push(category_byte(record.category));
        meta.extend_from_slice(&[0u8; 6]);
    }

    let provenance_json = serde_json::to_vec(&provenance)?;
    let analytics_json = serde_json::to_vec(analytics)?;
    let sections: [(u32, Vec<u8>); 10] = [
        (SEC_PROVENANCE, provenance_json),
        (SEC_KEYS, keys),
        (SEC_TEXT_OFFSETS, u32s_to_bytes(&text_offsets)),
        (SEC_TEXT, text_blob),
        (SEC_FEAT_TABLE, table.concat()),
        (SEC_FEAT_OFFSETS, u32s_to_bytes(&feat_offsets)),
        (SEC_FEAT_INDEX, u32s_to_bytes(&feat_index)),
        (SEC_IMPORTANCE, importance),
        (SEC_META, meta),
        (SEC_ANALYTICS, analytics_json),
    ];

    let table_bytes = sections.len() * TABLE_ENTRY_BYTES;
    let mut offset = (HEADER_BYTES + table_bytes) as u64;
    let mut out = Vec::with_capacity(
        HEADER_BYTES + table_bytes + sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (id, payload) in &sections {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    Ok(out)
}

fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Rebuild a [`FeatureSet`] from interned indices (used by the reader;
/// public so tests can decode independently).
pub(crate) fn features_from_indices(
    table: &[u8],
    indices: impl Iterator<Item = u32>,
) -> Result<FeatureSet, StoreError> {
    let mut set = FeatureSet::new();
    for index in indices {
        let start = index as usize * FEAT_BYTES;
        let bytes: [u8; FEAT_BYTES] = table
            .get(start..start + FEAT_BYTES)
            .and_then(|s| s.try_into().ok())
            .ok_or(StoreError::Malformed("feature index out of table range"))?;
        set.insert(decode_feature(bytes)?);
    }
    Ok(set)
}
