//! The store's reason to exist, as a test: a built store must be a
//! *bitwise* stand-in for the live batched search. For every block in
//! a freshly built corpus store, re-running the live path with the
//! same (model, config, seed) must produce an `Explanation` equal to
//! the stored one — and the stored float lanes must match to the bit,
//! not just to `==`. The analytics rollups must likewise agree with
//! the eval path's `feature_mix` definition, so the
//! `/analytics/categories` ranking reproduces Figure 3/4.

use comet_bhive::{classify, Category, Corpus, GenConfig};
use comet_core::{BatchExec, ExplainConfig, Explainer};
use comet_eval::figures::feature_mix;
use comet_store::{build_store, BuildConfig, BuildModel, ExplanationStore};

const BLOCKS: usize = 12;
const CORPUS_SEED: u64 = 0xB10C5;
const SEED: u64 = 0;

fn built_store(dir: &std::path::Path) -> ExplanationStore {
    let out = dir.join("golden.comets");
    let cfg = BuildConfig {
        model: BuildModel::CrudeHaswell,
        blocks: BLOCKS,
        corpus_seed: CORPUS_SEED,
        seed: SEED,
        // Exercise the batched search the same way serving does.
        batch: 16,
        search_pool: 2,
        ..BuildConfig::default()
    };
    let report = build_store(&out, &cfg).expect("golden build succeeds");
    assert_eq!(report.records, BLOCKS);
    ExplanationStore::open(&out).expect("golden store opens")
}

#[test]
fn store_matches_live_search_bitwise() {
    let dir = std::env::temp_dir().join(format!("comet-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = built_store(&dir);

    // The live reference: same model kind, same effective config, same
    // seed, scalar-reference batch geometry (results are invariant to
    // batch/pool, which this also re-checks against the built store).
    let (model, default_epsilon) = BuildModel::CrudeHaswell.build();
    let config = ExplainConfig { epsilon: default_epsilon, ..ExplainConfig::default() };
    assert_eq!(config.epsilon.to_bits(), store.provenance().epsilon_bits);
    let explainer = Explainer::new(model, config);
    let exec = BatchExec::new(1, 1);

    let corpus = Corpus::generate(BLOCKS, GenConfig::default(), CORPUS_SEED);
    assert_eq!(store.len(), BLOCKS);
    for entry in corpus.iter() {
        let text = entry.block.to_string();
        let live = explainer
            .explain_batched(&entry.block, SEED, &exec)
            .expect("live explanation succeeds");
        let stored = store.lookup(&text).expect("every corpus block is in the store");
        assert_eq!(stored, live, "store/live mismatch on block:\n{text}");
        // Beyond PartialEq: the lanes are bit-identical.
        let index = store.lookup_index(&text).unwrap();
        let lanes = store.importance_at(index);
        assert_eq!(lanes[0].to_bits(), live.precision.to_bits());
        assert_eq!(lanes[1].to_bits(), live.coverage.to_bits());
        assert_eq!(lanes[2].to_bits(), live.prediction.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analytics_reproduce_eval_feature_mix() {
    let dir = std::env::temp_dir().join(format!("comet-golden-mix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = built_store(&dir);

    // Reconstruct per-category explanation lists from the store itself
    // and compare the stored rollups against the eval path's
    // feature_mix over the same explanations.
    for (slot, &category) in Category::ALL.iter().enumerate() {
        let explanations: Vec<_> = (0..store.len())
            .filter(|&i| store.category_at(i).unwrap() == category)
            .map(|i| store.explanation_at(i).unwrap())
            .collect();
        let rollup = &store.analytics().categories[slot];
        assert_eq!(rollup.category, category.to_string());
        assert_eq!(rollup.blocks, explanations.len() as u64);
        if explanations.is_empty() {
            continue;
        }
        let mix = feature_mix(&explanations);
        assert_eq!(rollup.pct_eta, mix.eta, "eta% diverges from eval path for {category}");
        assert_eq!(rollup.pct_inst, mix.inst, "inst% diverges from eval path for {category}");
        assert_eq!(rollup.pct_dep, mix.dep, "dep% diverges from eval path for {category}");
    }

    // Categories must also be classify-consistent with the corpus.
    let corpus = Corpus::generate(BLOCKS, GenConfig::default(), CORPUS_SEED);
    for entry in corpus.iter() {
        let index = store.lookup_index(&entry.block.to_string()).unwrap();
        assert_eq!(store.category_at(index).unwrap(), classify(&entry.block));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
