//! COMETS1 format unit coverage: round-trips are bitwise, corruption
//! is a typed load error (never a panic, never a wrong record), and a
//! randomized round-trip proptest pins the bit-exactness claim across
//! arbitrary IEEE-754 payloads and feature sets.

use comet_bhive::classify;
use comet_core::{Explanation, Feature, FeatureSet};
use comet_graph::DepKind;
use comet_isa::parse_block;
use comet_store::{
    compute_analytics, write_store, ExplanationStore, Provenance, StoreError, StoreRecord,
};
use proptest::prelude::*;

/// Distinct single-purpose test blocks (texts must differ so keys do).
const BLOCK_TEXTS: [&str; 5] = [
    "add rax, rbx",
    "add rax, rbx\nsub rcx, rdx",
    "mov rax, qword ptr [rbx]\nadd rax, rcx",
    "mov qword ptr [rbx], rax",
    "vaddps xmm0, xmm1, xmm2\nvmulps xmm3, xmm0, xmm1",
];

fn provenance(records: u64) -> Provenance {
    Provenance {
        v: 1,
        model_kind: "crude-haswell".to_string(),
        model_version: 1,
        epsilon_bits: 0.25f64.to_bits(),
        seed: 0,
        kernel: "scalar-v1".to_string(),
        search: "search=batched-v2".to_string(),
        records,
        config_fingerprint: "deadbeefdeadbeef".to_string(),
    }
}

fn record(text: &str, precision: f64, features: FeatureSet) -> StoreRecord {
    let block = parse_block(text).expect("test block parses");
    let category = classify(&block);
    StoreRecord {
        block,
        category,
        explanation: Explanation {
            features,
            precision,
            coverage: 0.5 + precision / 2.0,
            prediction: 3.25,
            anchored: precision >= 0.7,
            queries: 1234,
            faults: 1,
            retries: 2,
            degraded: true,
            duration_secs: 9.0, // must NOT round-trip (excluded from equality)
        },
    }
}

fn sample_records() -> Vec<StoreRecord> {
    BLOCK_TEXTS
        .iter()
        .enumerate()
        .map(|(i, text)| {
            let mut features = FeatureSet::new();
            features.insert(Feature::NumInstructions);
            features.insert(Feature::Instruction(i % 2));
            if i % 2 == 1 {
                features.insert(Feature::Dependency { kind: DepKind::Raw, src: 0, dst: 1 });
            }
            record(text, 0.6 + 0.1 * i as f64 / 10.0, features)
        })
        .collect()
}

fn build_bytes(records: &[StoreRecord]) -> Vec<u8> {
    let analytics = compute_analytics(records);
    write_store(records, &provenance(records.len() as u64), &analytics)
        .expect("writing sample records succeeds")
}

#[test]
fn round_trip_is_bitwise() {
    let records = sample_records();
    let bytes = build_bytes(&records);
    let store = ExplanationStore::from_bytes(bytes).expect("clean store opens");
    assert_eq!(store.len(), records.len());
    for original in &records {
        let text = original.block.to_string();
        let looked_up = store.lookup(&text).expect("every written block is found");
        // PartialEq covers everything but duration_secs, which is
        // deliberately not stored.
        assert_eq!(looked_up, original.explanation);
        assert_eq!(looked_up.duration_secs, 0.0);
        // The float lanes must be bit-identical, not just ==.
        let index = store.lookup_index(&text).expect("index resolves");
        let lanes = store.importance_at(index);
        assert_eq!(lanes[0].to_bits(), original.explanation.precision.to_bits());
        assert_eq!(lanes[1].to_bits(), original.explanation.coverage.to_bits());
        assert_eq!(lanes[2].to_bits(), original.explanation.prediction.to_bits());
        let fractions = original.explanation.kind_fractions();
        for lane in 0..3 {
            assert_eq!(lanes[3 + lane].to_bits(), fractions[lane].to_bits());
        }
        assert_eq!(store.category_at(index).unwrap(), original.category);
    }
    assert_eq!(store.provenance().records, records.len() as u64);
    assert_eq!(store.analytics(), &compute_analytics(&records));
}

#[test]
fn lookup_misses_cleanly() {
    let store = ExplanationStore::from_bytes(build_bytes(&sample_records())).unwrap();
    assert!(store.lookup("xor rax, rax").is_none());
    assert!(store.lookup("").is_none());
}

#[test]
fn truncated_tail_is_a_clean_error() {
    let bytes = build_bytes(&sample_records());
    // Every strict prefix must fail with a typed error, never panic
    // and never produce a store.
    for cut in [bytes.len() - 1, bytes.len() / 2, 64, 16, 8, 1, 0] {
        let result = ExplanationStore::from_bytes(bytes[..cut].to_vec());
        assert!(result.is_err(), "truncation at {cut} bytes must not open");
    }
}

#[test]
fn flipped_byte_fails_checksum() {
    let bytes = build_bytes(&sample_records());
    // Flip one byte in several regions of the payload. Positions stay
    // past the 336-byte header + section table (table pad bytes are
    // the one unprotected region), inside checksummed section bytes.
    let payload_start = (bytes.len() / 4).max(400);
    assert!(payload_start < bytes.len(), "sample store too small for corruption probe");
    for position in [payload_start, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[position] ^= 0x40;
        match ExplanationStore::from_bytes(corrupt) {
            Err(_) => {}
            Ok(_) => panic!("flipped byte at {position} must not open"),
        }
    }
}

#[test]
fn version_mismatch_is_refused() {
    let mut bytes = build_bytes(&sample_records());
    // Format version lives at offset 8..12; bump it.
    bytes[8] = 0xFF;
    match ExplanationStore::from_bytes(bytes) {
        Err(StoreError::Version { found }) => assert_eq!(found, 0xFF),
        other => panic!("expected Version error, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_refused() {
    let mut bytes = build_bytes(&sample_records());
    bytes[0] = b'X';
    assert!(matches!(ExplanationStore::from_bytes(bytes), Err(StoreError::BadMagic)));
}

#[test]
fn peek_provenance_survives_payload_corruption() {
    let bytes = build_bytes(&sample_records());
    let mut corrupt = bytes.clone();
    // Corrupt the last byte (importance/meta/analytics payload): full
    // open fails, but the provenance header is still readable for
    // readyz-style reporting.
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    assert!(ExplanationStore::from_bytes(corrupt.clone()).is_err());
    let peeked = comet_store::peek_provenance(&corrupt).expect("provenance still readable");
    assert_eq!(peeked.model_kind, "crude-haswell");
    assert_eq!(peeked.records, BLOCK_TEXTS.len() as u64);
}

#[test]
fn empty_store_round_trips() {
    let store = ExplanationStore::from_bytes(build_bytes(&[])).expect("empty store is valid");
    assert!(store.is_empty());
    assert!(store.lookup("add rax, rbx").is_none());
}

/// Map arbitrary proptest inputs onto a valid feature for a 2-insn block.
fn feature_from(tag: u8, a: u16, b: u16) -> Feature {
    match tag % 5 {
        0 => Feature::NumInstructions,
        1 => Feature::Instruction(a as usize),
        2 => Feature::Dependency { kind: DepKind::Raw, src: a as usize, dst: b as usize },
        3 => Feature::Dependency { kind: DepKind::War, src: a as usize, dst: b as usize },
        _ => Feature::Dependency { kind: DepKind::Waw, src: a as usize, dst: b as usize },
    }
}

proptest! {
    /// build → open → lookup returns bitwise-identical importance
    /// vectors and identical feature sets for arbitrary (including
    /// non-finite) float payloads and arbitrary feature mixtures.
    #[test]
    fn round_trip_proptest(
        precision_bits in any::<u64>(),
        coverage_bits in any::<u64>(),
        prediction_bits in any::<u64>(),
        raw_features in prop::collection::vec(
            (any::<u8>(), 0u16..64, 0u16..64), 0..8),
        queries in any::<u64>(),
        anchored in any::<bool>(),
        degraded in any::<bool>(),
    ) {
        let mut features = FeatureSet::new();
        for (tag, a, b) in raw_features {
            features.insert(feature_from(tag, a, b));
        }
        let block = parse_block("add rax, rbx\nsub rcx, rdx").unwrap();
        let category = classify(&block);
        let records = vec![StoreRecord {
            block,
            category,
            explanation: Explanation {
                features: features.clone(),
                precision: f64::from_bits(precision_bits),
                coverage: f64::from_bits(coverage_bits),
                prediction: f64::from_bits(prediction_bits),
                anchored,
                queries,
                faults: 3,
                retries: 1,
                degraded,
                duration_secs: 1.0,
            },
        }];
        let analytics = compute_analytics(&records);
        let bytes = write_store(&records, &provenance(1), &analytics).unwrap();
        let store = ExplanationStore::from_bytes(bytes).unwrap();
        let text = records[0].block.to_string();
        let index = store.lookup_index(&text).expect("written block is found");
        let lanes = store.importance_at(index);
        // Bitwise, so NaN payloads and signed zeros survive exactly.
        prop_assert_eq!(lanes[0].to_bits(), precision_bits);
        prop_assert_eq!(lanes[1].to_bits(), coverage_bits);
        prop_assert_eq!(lanes[2].to_bits(), prediction_bits);
        let explanation = store.explanation_at(index).unwrap();
        prop_assert_eq!(explanation.features, features);
        prop_assert_eq!(explanation.queries, queries);
        prop_assert_eq!(explanation.anchored, anchored);
        prop_assert_eq!(explanation.degraded, degraded);
        prop_assert_eq!(explanation.faults, 3);
        prop_assert_eq!(explanation.retries, 1);
    }
}
