//! # COMET — Neural Cost Model Explanation Framework
//!
//! A from-scratch Rust reproduction of *"COMET: Neural Cost Model
//! Explanation Framework"* (Chaudhary, Renda, Mendis, Singh — MLSys
//! 2024): faithful, generalizable, and simple explanations for
//! black-box basic-block cost models, with query access only.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`isa`] — x86-64 subset: parsing, printing, signatures, timing
//!   tables (Haswell/Skylake);
//! * [`graph`] — dependency multigraphs (RAW/WAR/WAW);
//! * [`nn`] — minimal LSTM deep-learning stack;
//! * [`sim`] — port-based pipeline throughput simulator;
//! * [`models`] — the [`models::CostModel`] trait, the crude
//!   interpretable model C, and the Ithemal/uiCA surrogates;
//! * [`bhive`] — synthetic BHive-style corpora;
//! * [`core`] — the explanation framework itself ([`Explainer`]);
//! * [`eval`] — the harness regenerating the paper's tables/figures.
//!
//! # Quickstart
//!
//! ```
//! use comet::{ExplainConfig, Explainer};
//! use comet::models::CrudeModel;
//! use comet::isa::Microarch;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = comet::isa::parse_block("add rcx, rax\nmov rdx, rcx\npop rbx")?;
//! let model = CrudeModel::new(Microarch::Haswell);
//! let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
//! let explanation = explainer.explain(&block, &mut StdRng::seed_from_u64(0))?;
//! println!("{}", explanation.display_features());
//! # Ok(())
//! # }
//! ```
//!
//! Cost models are untrusted black boxes: predictions flow through the
//! fallible [`models::CostModel::try_predict`], `explain` returns
//! `Result<Explanation, ExplainError>`, and the [`models`] crate ships
//! a resilience decorator ([`models::ResilientModel`]) plus a seeded
//! fault injector ([`models::FaultyModel`]) for robustness testing.

#![warn(missing_docs)]

pub use comet_bhive as bhive;
pub use comet_core as core;
pub use comet_eval as eval;
pub use comet_graph as graph;
pub use comet_isa as isa;
pub use comet_models as models;
pub use comet_nn as nn;
pub use comet_sim as sim;

pub use comet_core::{
    ExplainConfig, ExplainError, Explainer, Explanation, Feature, FeatureKind, FeatureSet,
    PerturbConfig, Perturber,
};
pub use comet_models::ModelError;
