//! Machine configurations: the detailed ("hardware") model and the
//! deliberately mis-calibrated variant backing the uiCA surrogate.

use comet_isa::{InstProfile, Instruction, Microarch, Opcode};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated out-of-order machine.
///
/// The *detailed* configuration plays the role of real hardware in this
/// reproduction (it labels the synthetic BHive corpus). The *uiCA-like*
/// configuration is the same pipeline driven by per-opcode timing tables
/// deterministically deviated by a few percent — modelling a
/// hand-engineered simulator that is a near-perfect but not exact model
/// of the machine, which is precisely uiCA's situation in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Target microarchitecture (selects timing tables).
    pub march: Microarch,
    /// Front-end issue width in µops per cycle.
    pub issue_width: f64,
    /// Seed for deterministic per-opcode table deviations (ignored when
    /// `deviation` is 0).
    pub deviation_seed: u64,
    /// Maximum relative deviation applied to latencies and reciprocal
    /// throughputs, e.g. `0.06` for ±6%.
    pub deviation: f64,
    /// Model the dependency-breaking zero idiom (`xor r, r`).
    pub zero_idioms: bool,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: f64,
}

impl MachineConfig {
    /// The detailed configuration standing in for real hardware.
    pub fn detailed(march: Microarch) -> MachineConfig {
        MachineConfig {
            march,
            issue_width: comet_isa::tables::ISSUE_WIDTH,
            deviation_seed: 0,
            deviation: 0.0,
            zero_idioms: true,
            forward_latency: 5.0,
        }
    }

    /// The uiCA-surrogate configuration: same pipeline, slightly
    /// deviated tables.
    pub fn uica_like(march: Microarch) -> MachineConfig {
        MachineConfig {
            deviation_seed: 0xC0FFEE ^ march as u64,
            deviation: 0.06,
            ..MachineConfig::detailed(march)
        }
    }

    /// The timing profile of an instruction under this configuration,
    /// with table deviations applied.
    pub fn profile(&self, inst: &Instruction) -> InstProfile {
        let mut p = comet_isa::profile(inst, self.march);
        if self.deviation > 0.0 {
            let f_lat = self.deviation_factor(inst.opcode, 0);
            let f_rtp = self.deviation_factor(inst.opcode, 1);
            p.latency = (p.latency * f_lat).max(0.0);
            p.rtp = (p.rtp * f_rtp).max(0.05);
        }
        p
    }

    /// Deterministic multiplicative deviation in
    /// `[1 - deviation, 1 + deviation]` for an opcode.
    fn deviation_factor(&self, opcode: Opcode, salt: u64) -> f64 {
        let mut h = self
            .deviation_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(opcode as u64)
            .wrapping_add(salt.wrapping_mul(0x1234_5678_9ABC_DEF1));
        // SplitMix64 finalizer for good bit diffusion.
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.deviation * (2.0 * unit - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_instruction;

    #[test]
    fn detailed_config_is_exact() {
        let config = MachineConfig::detailed(Microarch::Haswell);
        let inst = parse_instruction("add rcx, rax").unwrap();
        let base = comet_isa::profile(&inst, Microarch::Haswell);
        assert_eq!(config.profile(&inst), base);
    }

    #[test]
    fn uica_config_deviates_but_stays_close() {
        let config = MachineConfig::uica_like(Microarch::Haswell);
        let inst = parse_instruction("div rcx").unwrap();
        let base = comet_isa::profile(&inst, Microarch::Haswell);
        let dev = config.profile(&inst);
        assert_ne!(dev.latency, base.latency);
        assert!((dev.latency - base.latency).abs() / base.latency <= 0.061);
        assert!((dev.rtp - base.rtp).abs() / base.rtp <= 0.061);
    }

    #[test]
    fn deviations_are_deterministic_and_opcode_specific() {
        let config = MachineConfig::uica_like(Microarch::Skylake);
        let div = parse_instruction("div rcx").unwrap();
        let add = parse_instruction("add rcx, rax").unwrap();
        assert_eq!(config.profile(&div), config.profile(&div));
        let f_div = config.profile(&div).latency / comet_isa::profile(&div, config.march).latency;
        let f_add = config.profile(&add).latency / comet_isa::profile(&add, config.march).latency;
        assert_ne!(f_div, f_add);
    }
}
