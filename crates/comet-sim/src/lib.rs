//! # comet-sim
//!
//! A port-based, steady-state basic-block throughput simulator in the
//! spirit of uiCA (Abel & Reineke, ICS '22): width-limited in-order
//! issue, out-of-order execution with register renaming, per-port
//! contention, unpipelined dividers, zero-idiom elimination, and
//! store-to-load forwarding.
//!
//! Two machine configurations matter to the reproduction (see
//! DESIGN.md): [`MachineConfig::detailed`] stands in for real hardware
//! (it labels the synthetic BHive corpus), and
//! [`MachineConfig::uica_like`] drives the uiCA-surrogate cost model —
//! the same pipeline with slightly mis-calibrated timing tables.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), comet_isa::IsaError> {
//! use comet_sim::{MachineConfig, Simulator};
//! use comet_isa::Microarch;
//!
//! let block = comet_isa::parse_block("add rax, 1\nadd rax, 1")?;
//! let sim = Simulator::new(MachineConfig::detailed(Microarch::Haswell));
//! let cycles = sim.throughput(&block);
//! assert!(cycles >= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod sim;

pub use config::MachineConfig;
pub use sim::Simulator;
