//! Steady-state basic-block throughput simulation.
//!
//! A greedy out-of-order model in the spirit of uiCA's pipeline
//! simulation: instructions from repeated loop iterations are issued
//! in order by a width-limited front end, µops wait for their register
//! and memory inputs (with register renaming, so only RAW dependencies
//! stall), execute on the earliest available port from their port set
//! (unpipelined µops occupy the port for their reciprocal throughput),
//! and loads check for store-to-load forwarding. Throughput is the
//! steady-state cycles per iteration, measured after warmup.

use std::collections::HashMap;

use comet_isa::{BasicBlock, Instruction, MemOperand, Opcode, Register};

use crate::config::MachineConfig;

/// Iterations simulated before measurement starts.
const WARMUP_ITERS: usize = 8;
/// Iterations measured for the steady-state estimate.
const MEASURE_ITERS: usize = 24;

/// The port-based throughput simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
}

/// A memory cell key: syntactic address expression, with registers
/// collapsed to their full names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemKey {
    base: Option<Register>,
    index: Option<Register>,
    scale: u8,
    disp: i64,
}

impl MemKey {
    fn of(mem: &MemOperand) -> MemKey {
        MemKey {
            base: mem.base.map(Register::full),
            index: mem.index.map(Register::full),
            scale: if mem.index.is_some() { mem.scale } else { 1 },
            disp: mem.disp,
        }
    }
}

impl Simulator {
    /// A simulator for the given machine configuration.
    pub fn new(config: MachineConfig) -> Simulator {
        Simulator { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Steady-state throughput of the block in cycles per iteration
    /// (the quantity BHive reports and the paper's cost models predict).
    pub fn throughput(&self, block: &BasicBlock) -> f64 {
        let mut state = PipelineState::new(self.config);
        Simulator::measure(&mut state, block)
    }

    /// Throughputs of a batch of independent blocks, reusing one
    /// pipeline-state allocation (the register/store readiness maps)
    /// across the whole batch. Per block, the result is identical to
    /// [`Simulator::throughput`]: the state is reset to its
    /// freshly-constructed contents between items.
    pub fn throughput_batch(&self, blocks: &[BasicBlock]) -> Vec<f64> {
        let mut state = PipelineState::new(self.config);
        blocks
            .iter()
            .map(|block| {
                state.reset();
                Simulator::measure(&mut state, block)
            })
            .collect()
    }

    /// Warmup + measurement over an already-initialized state.
    fn measure(state: &mut PipelineState, block: &BasicBlock) -> f64 {
        for _ in 0..WARMUP_ITERS {
            state.run_iteration(block);
        }
        let start = state.horizon();
        for _ in 0..MEASURE_ITERS {
            state.run_iteration(block);
        }
        let cycles = (state.horizon() - start) / MEASURE_ITERS as f64;
        // Quantize to quarter cycles like published measurements.
        (cycles * 4.0).round() / 4.0
    }
}

/// Mutable pipeline state threaded across loop iterations.
struct PipelineState {
    config: MachineConfig,
    /// Cycle at which each full register's value becomes available.
    reg_ready: HashMap<Register, f64>,
    /// Cycle at which the most recent store to each cell commits.
    store_ready: HashMap<MemKey, f64>,
    /// Total µops issued so far (drives the width-limited front end).
    issued_uops: f64,
    /// Per-port cycle at which the port is next free.
    port_free: [f64; 8],
    /// Latest completion time seen.
    horizon: f64,
}

impl PipelineState {
    fn new(config: MachineConfig) -> PipelineState {
        PipelineState {
            config,
            reg_ready: HashMap::new(),
            store_ready: HashMap::new(),
            issued_uops: 0.0,
            port_free: [0.0; 8],
            horizon: 0.0,
        }
    }

    fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Return to the freshly-constructed state (keeping map capacity),
    /// so one allocation can serve a whole batch of blocks.
    fn reset(&mut self) {
        self.reg_ready.clear();
        self.store_ready.clear();
        self.issued_uops = 0.0;
        self.port_free = [0.0; 8];
        self.horizon = 0.0;
    }

    fn reg_ready(&self, reg: Register) -> f64 {
        self.reg_ready.get(&reg.full()).copied().unwrap_or(0.0)
    }

    fn set_reg_ready(&mut self, reg: Register, at: f64) {
        let entry = self.reg_ready.entry(reg.full()).or_insert(0.0);
        *entry = at; // renaming: later writes simply redefine the register
        self.horizon = self.horizon.max(at);
    }

    /// Reserve the earliest port among `ports` at or after `earliest`,
    /// occupying it for `occupancy` cycles. Returns the start cycle.
    fn reserve_port(&mut self, ports: comet_isa::PortSet, earliest: f64, occupancy: f64) -> f64 {
        let mut best_port = None;
        let mut best_start = f64::INFINITY;
        for p in ports.iter() {
            let start = self.port_free[p as usize].max(earliest);
            if start < best_start {
                best_start = start;
                best_port = Some(p);
            }
        }
        let port = best_port.expect("instruction with empty port set") as usize;
        self.port_free[port] = best_start + occupancy.max(1.0);
        best_start
    }

    /// Whether an instruction is a dependency-breaking zero idiom
    /// (`xor r, r` and friends): executed at rename, zero latency, no
    /// input dependency.
    fn is_zero_idiom(&self, inst: &Instruction) -> bool {
        if !self.config.zero_idioms {
            return false;
        }
        let idiom_opcode = matches!(
            inst.opcode,
            Opcode::Xor
                | Opcode::Sub
                | Opcode::Pxor
                | Opcode::Xorps
                | Opcode::Vpxor
                | Opcode::Vxorps
        );
        idiom_opcode
            && inst.operands.len() >= 2
            && inst.operands.windows(2).all(|w| w[0] == w[1])
            && inst.operands[0].as_reg().is_some()
    }

    fn run_iteration(&mut self, block: &BasicBlock) {
        for inst in block {
            self.run_instruction(inst);
        }
    }

    fn run_instruction(&mut self, inst: &Instruction) {
        let profile = self.config.profile(inst);
        let fx = inst.effects();

        // Front end: width-limited in-order issue.
        let issue_at = self.issued_uops / self.config.issue_width;
        self.issued_uops += f64::from(profile.total_uops());

        if self.is_zero_idiom(inst) {
            // Handled at rename: result available immediately at issue.
            for reg in &fx.reg_writes {
                self.set_reg_ready(*reg, issue_at);
            }
            self.horizon = self.horizon.max(issue_at);
            return;
        }

        // Loads start once their address registers are ready.
        let mut loaded_at = issue_at;
        for mem in &fx.mem_reads {
            let addr_ready =
                mem.address_registers().map(|r| self.reg_ready(r)).fold(issue_at, f64::max);
            let start = self.reserve_port(comet_isa::PortSet::LOAD, addr_ready, 1.0);
            let mut data_at = start + comet_isa::tables::LOAD_LATENCY;
            // Store-to-load forwarding from an earlier store to the
            // same syntactic cell.
            if let Some(&store_at) = self.store_ready.get(&MemKey::of(mem)) {
                data_at = data_at.max(store_at + self.config.forward_latency);
            }
            loaded_at = loaded_at.max(data_at);
        }
        // `pop` has an implicit stack load not represented by a memory
        // operand; charge the load port and latency.
        if inst.opcode == Opcode::Pop && fx.mem_reads.is_empty() {
            let start = self.reserve_port(comet_isa::PortSet::LOAD, issue_at, 1.0);
            loaded_at = loaded_at.max(start + comet_isa::tables::LOAD_LATENCY);
        }

        // Compute µops wait for register inputs and loaded data.
        let inputs_ready =
            fx.reg_reads.iter().map(|r| self.reg_ready(*r)).fold(loaded_at, f64::max);
        let mut result_at = inputs_ready;
        if profile.compute_uops > 0 {
            // The (possibly unpipelined) primary µop binds a port for
            // its reciprocal throughput; secondary µops each take a slot.
            let occupancy = profile.rtp.max(1.0);
            let start = self.reserve_port(profile.ports, inputs_ready, occupancy);
            for _ in 1..profile.compute_uops {
                self.reserve_port(profile.ports, start, 1.0);
            }
            result_at = start + profile.latency.max(1.0);
        }

        // Stores: address and data µops, then commit.
        let mut stored_at = result_at;
        for mem in &fx.mem_writes {
            let addr_ready =
                mem.address_registers().map(|r| self.reg_ready(r)).fold(issue_at, f64::max);
            let addr_at = self.reserve_port(comet_isa::PortSet::STORE_ADDR, addr_ready, 1.0);
            let data_at = self.reserve_port(comet_isa::PortSet::STORE_DATA, result_at, 1.0);
            let commit = addr_at.max(data_at) + 1.0;
            self.store_ready.insert(MemKey::of(mem), commit);
            stored_at = stored_at.max(commit);
        }
        if inst.opcode == Opcode::Push && fx.mem_writes.is_empty() {
            let data_at = self.reserve_port(comet_isa::PortSet::STORE_DATA, result_at, 1.0);
            stored_at = stored_at.max(data_at + 1.0);
        }

        for reg in &fx.reg_writes {
            self.set_reg_ready(*reg, result_at);
        }
        self.horizon = self.horizon.max(stored_at).max(result_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::{parse_block, Microarch};

    fn tp(text: &str, march: Microarch) -> f64 {
        Simulator::new(MachineConfig::detailed(march)).throughput(&parse_block(text).unwrap())
    }

    #[test]
    fn independent_adds_are_width_bound() {
        // Four independent single-µop adds: limited by the 4-wide front
        // end and four ALU ports -> ~1 cycle per iteration.
        let t = tp("add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rsi, 1", Microarch::Haswell);
        assert!((0.8..=1.5).contains(&t), "got {t}");
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        // add rax <- rax chains across iterations: 1 cycle each, and the
        // three adds form a serial chain -> ~3 cycles per iteration.
        let t = tp("add rax, 1\nadd rax, 1\nadd rax, 1", Microarch::Haswell);
        assert!((2.5..=3.5).contains(&t), "got {t}");
    }

    #[test]
    fn division_dominates() {
        let t = tp("div rcx", Microarch::Haswell);
        assert!(t > 20.0, "got {t}");
        // Skylake's divider is faster.
        let t_skl = tp("div rcx", Microarch::Skylake);
        assert!(t_skl < t, "HSW {t} vs SKL {t_skl}");
    }

    #[test]
    fn stores_bound_by_single_store_port() {
        let t = tp(
            "mov qword ptr [rdi], rax\nmov qword ptr [rdi + 8], rbx\nmov qword ptr [rdi + 16], rcx",
            Microarch::Haswell,
        );
        assert!(t >= 2.5, "three stores need >= 3 store-data slots, got {t}");
    }

    #[test]
    fn zero_idiom_breaks_dependency() {
        // Without the idiom, `xor rax, rax` would chain on rax.
        let with_idiom = tp("xor rax, rax\nadd rax, rbx", Microarch::Haswell);
        assert!(with_idiom <= 1.5, "got {with_idiom}");
    }

    #[test]
    fn case_study_one_close_to_two_cycles() {
        // Paper case study 1: measured hardware throughput 2 cycles.
        let t = tp(
            "lea rdx, [rax + 1]\n\
             mov qword ptr [rdi + 24], rdx\n\
             mov byte ptr [rax], 80\n\
             mov rsi, qword ptr [r14 + 32]\n\
             mov rdi, rbp",
            Microarch::Haswell,
        );
        assert!((1.5..=3.0).contains(&t), "got {t}");
    }

    #[test]
    fn raw_dependency_slows_block() {
        let dependent = tp("add rcx, rax\nmov rdx, rcx", Microarch::Haswell);
        let independent = tp("add rcx, rax\nmov rdx, rbx", Microarch::Haswell);
        assert!(dependent >= independent, "{dependent} vs {independent}");
    }

    #[test]
    fn throughput_is_deterministic() {
        let block = "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0";
        assert_eq!(tp(block, Microarch::Haswell), tp(block, Microarch::Haswell));
    }

    #[test]
    fn uica_like_close_to_detailed() {
        let text = "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";
        let block = parse_block(text).unwrap();
        let detailed = Simulator::new(MachineConfig::detailed(Microarch::Haswell));
        let surrogate = Simulator::new(MachineConfig::uica_like(Microarch::Haswell));
        let a = detailed.throughput(&block);
        let b = surrogate.throughput(&block);
        assert!((a - b).abs() / a < 0.15, "detailed {a} vs surrogate {b}");
    }

    #[test]
    fn store_load_forwarding_serializes() {
        let forwarded = tp(
            "mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi]\nadd rax, rbx",
            Microarch::Haswell,
        );
        let independent = tp(
            "mov qword ptr [rdi], rax\nmov rbx, qword ptr [rsi]\nadd rax, rbx",
            Microarch::Haswell,
        );
        assert!(forwarded > independent, "{forwarded} vs {independent}");
    }
}
