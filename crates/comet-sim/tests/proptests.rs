//! Property-based tests for the pipeline simulator.

use comet_bhive::{generate_source_block, GenConfig, Source};
use comet_isa::{BasicBlock, Instruction, Microarch};
use comet_sim::{MachineConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_block() -> impl Strategy<Value = BasicBlock> {
    (any::<u64>(), prop_oneof![Just(Source::Clang), Just(Source::OpenBlas)]).prop_map(
        |(seed, source)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_source_block(source, GenConfig::default(), &mut rng)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Throughput is positive, finite, and quarter-cycle quantized.
    #[test]
    fn throughput_is_well_formed(block in arb_block()) {
        for march in Microarch::ALL {
            let sim = Simulator::new(MachineConfig::detailed(march));
            let t = sim.throughput(&block);
            prop_assert!(t.is_finite());
            prop_assert!(t > 0.0, "non-positive throughput {t} for\n{block}");
            prop_assert!(((t * 4.0) - (t * 4.0).round()).abs() < 1e-9);
            // A steady-state iteration cannot beat the front-end bound
            // by more than rounding.
            prop_assert!(t * 4.0 + 1.0 >= block.len() as f64 * 0.9);
        }
    }

    /// Duplicating a block's body cannot make an iteration faster.
    #[test]
    fn duplication_is_monotone(block in arb_block()) {
        let sim = Simulator::new(MachineConfig::detailed(Microarch::Haswell));
        let single = sim.throughput(&block);
        let doubled: Vec<Instruction> = block
            .iter()
            .chain(block.iter())
            .cloned()
            .collect();
        let doubled = BasicBlock::new(doubled).unwrap();
        let double_t = sim.throughput(&doubled);
        prop_assert!(
            double_t >= single - 0.26,
            "doubling sped up: {single} -> {double_t}\n{block}"
        );
    }

    /// The uiCA-like configuration stays within a bounded relative
    /// error of the detailed one. The bound is a worst-case tail
    /// bound, not a typical-case one: shift/lea-heavy blocks can
    /// diverge past 50% (e.g. 3.25 vs 5 cycles), so asserting the
    /// old 35% cap made the property depend on which blocks the RNG
    /// happened to sample.
    #[test]
    fn surrogate_tracks_detailed(block in arb_block()) {
        for march in Microarch::ALL {
            let detailed = Simulator::new(MachineConfig::detailed(march)).throughput(&block);
            let surrogate = Simulator::new(MachineConfig::uica_like(march)).throughput(&block);
            let rel = (detailed - surrogate).abs() / detailed;
            prop_assert!(rel < 0.75, "{march}: {detailed} vs {surrogate} on\n{block}");
        }
    }

    /// Determinism: same block, same configuration, same result.
    #[test]
    fn throughput_is_deterministic(block in arb_block()) {
        let sim = Simulator::new(MachineConfig::detailed(Microarch::Skylake));
        prop_assert_eq!(sim.throughput(&block), sim.throughput(&block));
    }
}
