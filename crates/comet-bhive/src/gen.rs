//! Random basic-block generation in the style of BHive's sources and
//! categories.
//!
//! The generator draws instruction *shapes* from weighted pools (one
//! pool per source style or target category), keeps a recency pool of
//! written registers so realistic dependency chains form, and validates
//! every emitted instruction against the ISA signatures.

use comet_isa::{BasicBlock, Instruction, MemOperand, Opcode, Operand, RegClass, Register, Size};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::category::{classify, Category, Source};

/// Block-length bounds (the paper's explanation test set uses 4–10
/// instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Minimum instructions per block.
    pub min_insts: usize,
    /// Maximum instructions per block.
    pub max_insts: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { min_insts: 4, max_insts: 10 }
    }
}

/// Instruction shapes the generator can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    AluRR,
    AluRI,
    MovRR,
    MovRI,
    Lea,
    Load,
    Store,
    LoadVec,
    StoreVec,
    Imul,
    Div,
    Shift,
    Movzx,
    Cmov,
    Push,
    Pop,
    VecAvx3,
    VecSse2,
    VecDiv,
    VecMov,
    BitCount,
}

/// A weighted pool of shapes.
type Pool = &'static [(Shape, u32)];

static CLANG_POOL: Pool = &[
    (Shape::AluRR, 14),
    (Shape::AluRI, 10),
    (Shape::MovRR, 9),
    (Shape::MovRI, 4),
    (Shape::Lea, 10),
    (Shape::Load, 15),
    (Shape::Store, 9),
    (Shape::Shift, 5),
    (Shape::Movzx, 3),
    (Shape::Imul, 4),
    (Shape::Cmov, 4),
    (Shape::Push, 2),
    (Shape::Pop, 2),
    (Shape::Div, 2),
    (Shape::BitCount, 2),
];

static OPENBLAS_POOL: Pool = &[
    (Shape::VecAvx3, 24),
    (Shape::VecSse2, 8),
    (Shape::LoadVec, 18),
    (Shape::StoreVec, 8),
    (Shape::Lea, 8),
    (Shape::AluRI, 8),
    (Shape::Load, 5),
    (Shape::VecDiv, 4),
    (Shape::VecMov, 4),
    (Shape::MovRR, 3),
];

static LOAD_POOL: Pool = &[
    (Shape::Load, 35),
    (Shape::LoadVec, 8),
    (Shape::AluRR, 18),
    (Shape::Lea, 10),
    (Shape::AluRI, 10),
    (Shape::Imul, 5),
    (Shape::Pop, 4),
];

static STORE_POOL: Pool = &[
    (Shape::Store, 35),
    (Shape::StoreVec, 8),
    (Shape::AluRR, 16),
    (Shape::Lea, 10),
    (Shape::MovRI, 8),
    (Shape::AluRI, 8),
    (Shape::Push, 4),
];

static LOAD_STORE_POOL: Pool = &[
    (Shape::Load, 22),
    (Shape::Store, 20),
    (Shape::AluRR, 15),
    (Shape::Lea, 10),
    (Shape::AluRI, 8),
    (Shape::Imul, 4),
];

static SCALAR_POOL: Pool = &[
    (Shape::AluRR, 28),
    (Shape::AluRI, 16),
    (Shape::MovRR, 10),
    (Shape::Lea, 12),
    (Shape::Shift, 8),
    (Shape::Imul, 8),
    (Shape::Movzx, 4),
    (Shape::Cmov, 5),
    (Shape::Div, 4),
    (Shape::BitCount, 4),
];

static VECTOR_POOL: Pool =
    &[(Shape::VecAvx3, 40), (Shape::VecSse2, 20), (Shape::VecDiv, 8), (Shape::VecMov, 10)];

static SCALAR_VECTOR_POOL: Pool = &[
    (Shape::VecAvx3, 20),
    (Shape::VecSse2, 10),
    (Shape::AluRR, 20),
    (Shape::AluRI, 10),
    (Shape::Lea, 8),
    (Shape::Imul, 6),
    (Shape::VecDiv, 4),
    (Shape::Shift, 5),
];

fn pool_for_source(source: Source) -> Pool {
    match source {
        Source::Clang => CLANG_POOL,
        Source::OpenBlas => OPENBLAS_POOL,
    }
}

fn pool_for_category(category: Category) -> Pool {
    match category {
        Category::Load => LOAD_POOL,
        Category::Store => STORE_POOL,
        Category::LoadStore => LOAD_STORE_POOL,
        Category::Scalar => SCALAR_POOL,
        Category::Vector => VECTOR_POOL,
        Category::ScalarVector => SCALAR_VECTOR_POOL,
    }
}

/// Register recency pool biasing operand choice toward recently written
/// registers, so blocks develop RAW chains like real code.
struct RegPool {
    recent_gpr: Vec<u8>,
    recent_vec: Vec<u8>,
}

/// Pointer-ish registers used as address bases, mirroring compiler
/// conventions (`rdi`, `rsi`, `rbp`, `rbx`, `r14`, `r15`).
const PTR_REGS: [u8; 6] = [7, 6, 5, 3, 14, 15];

impl RegPool {
    fn new() -> RegPool {
        RegPool { recent_gpr: Vec::new(), recent_vec: Vec::new() }
    }

    fn random_gpr_index<R: Rng>(&self, rng: &mut R) -> u8 {
        loop {
            let i = rng.gen_range(0..16u8);
            if i != comet_isa::reg::RSP_INDEX {
                return i;
            }
        }
    }

    fn src_gpr<R: Rng>(&self, rng: &mut R, size: Size) -> Register {
        let index = if !self.recent_gpr.is_empty() && rng.gen_bool(0.6) {
            *self.recent_gpr.choose(rng).unwrap()
        } else {
            self.random_gpr_index(rng)
        };
        Register::new(RegClass::Gpr, index, size)
    }

    fn dst_gpr<R: Rng>(&mut self, rng: &mut R, size: Size) -> Register {
        // Half the time overwrite a live register (WAW/WAR pressure),
        // otherwise define a fresh one.
        let index = if !self.recent_gpr.is_empty() && rng.gen_bool(0.35) {
            *self.recent_gpr.choose(rng).unwrap()
        } else {
            self.random_gpr_index(rng)
        };
        self.mark_gpr(index);
        Register::new(RegClass::Gpr, index, size)
    }

    fn mark_gpr(&mut self, index: u8) {
        self.recent_gpr.retain(|&i| i != index);
        self.recent_gpr.push(index);
        if self.recent_gpr.len() > 5 {
            self.recent_gpr.remove(0);
        }
    }

    fn src_vec<R: Rng>(&self, rng: &mut R) -> Register {
        let index = if !self.recent_vec.is_empty() && rng.gen_bool(0.6) {
            *self.recent_vec.choose(rng).unwrap()
        } else {
            rng.gen_range(0..16u8)
        };
        Register::xmm(index)
    }

    fn dst_vec<R: Rng>(&mut self, rng: &mut R) -> Register {
        let index = if !self.recent_vec.is_empty() && rng.gen_bool(0.35) {
            *self.recent_vec.choose(rng).unwrap()
        } else {
            rng.gen_range(0..16u8)
        };
        self.recent_vec.retain(|&i| i != index);
        self.recent_vec.push(index);
        if self.recent_vec.len() > 5 {
            self.recent_vec.remove(0);
        }
        Register::xmm(index)
    }

    fn addr<R: Rng>(&self, rng: &mut R, size: Size) -> MemOperand {
        let base = Register::gpr64(*PTR_REGS.choose(rng).unwrap());
        let disp = 8 * rng.gen_range(0..12i64);
        if rng.gen_bool(0.25) {
            let index = Register::gpr64(self.random_gpr_index(rng));
            let scale = *[1u8, 2, 4, 8].choose(rng).unwrap();
            MemOperand::base_index(base, index, scale, disp, size)
        } else {
            MemOperand::base_disp(base, disp, size)
        }
    }
}

fn gpr_size<R: Rng>(rng: &mut R) -> Size {
    if rng.gen_bool(0.75) {
        Size::B64
    } else {
        Size::B32
    }
}

fn emit<R: Rng>(shape: Shape, pool: &mut RegPool, rng: &mut R) -> Instruction {
    let inst = match shape {
        Shape::AluRR => {
            let op = *[Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Cmp]
                .choose(rng)
                .unwrap();
            let size = gpr_size(rng);
            let src = pool.src_gpr(rng, size);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(op, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::AluRI => {
            let op = *[Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Cmp, Opcode::Shl]
                .choose(rng)
                .unwrap();
            let size = gpr_size(rng);
            let dst = pool.dst_gpr(rng, size);
            let imm = if op == Opcode::Shl { rng.gen_range(1..8) } else { rng.gen_range(1..64) };
            Instruction::new(op, vec![Operand::reg(dst), Operand::imm(imm)])
        }
        Shape::MovRR => {
            let size = gpr_size(rng);
            let src = pool.src_gpr(rng, size);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(Opcode::Mov, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::MovRI => {
            let size = gpr_size(rng);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(
                Opcode::Mov,
                vec![Operand::reg(dst), Operand::imm(rng.gen_range(0..256))],
            )
        }
        Shape::Lea => {
            let src = pool.src_gpr(rng, Size::B64);
            let dst = pool.dst_gpr(rng, Size::B64);
            let disp = rng.gen_range(-8..32i64);
            let mem = if rng.gen_bool(0.5) {
                MemOperand::base_disp(src, disp.max(1), Size::B64)
            } else {
                let index = pool.src_gpr(rng, Size::B64);
                MemOperand::base_index(src, index, 1, disp, Size::B64)
            };
            Instruction::new(Opcode::Lea, vec![Operand::reg(dst), Operand::Mem(mem)])
        }
        Shape::Load => {
            let size = gpr_size(rng);
            let mem = pool.addr(rng, size);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(Opcode::Mov, vec![Operand::reg(dst), Operand::Mem(mem)])
        }
        Shape::Store => {
            let size = gpr_size(rng);
            let mem = pool.addr(rng, size);
            let src = pool.src_gpr(rng, size);
            Instruction::new(Opcode::Mov, vec![Operand::Mem(mem), Operand::reg(src)])
        }
        Shape::LoadVec => {
            let dst = pool.dst_vec(rng);
            let mem = pool.addr(rng, Size::B32);
            Instruction::new(Opcode::Movss, vec![Operand::reg(dst), Operand::Mem(mem)])
        }
        Shape::StoreVec => {
            let src = pool.src_vec(rng);
            let mem = pool.addr(rng, Size::B32);
            Instruction::new(Opcode::Movss, vec![Operand::Mem(mem), Operand::reg(src)])
        }
        Shape::Imul => {
            let size = if rng.gen_bool(0.75) { Size::B64 } else { Size::B32 };
            let src = pool.src_gpr(rng, size);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(Opcode::Imul, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::Div => {
            let op = if rng.gen_bool(0.5) { Opcode::Div } else { Opcode::Idiv };
            let size = gpr_size(rng);
            let divisor = pool.src_gpr(rng, size);
            Instruction::new(op, vec![Operand::reg(divisor)])
        }
        Shape::Shift => {
            let op = *[Opcode::Shl, Opcode::Shr, Opcode::Sar].choose(rng).unwrap();
            let size = gpr_size(rng);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(op, vec![Operand::reg(dst), Operand::imm(rng.gen_range(1..16))])
        }
        Shape::Movzx => {
            let src_idx = pool.random_gpr_index(rng);
            let src = Register::new(RegClass::Gpr, src_idx, Size::B8);
            let dst_size = if rng.gen_bool(0.5) { Size::B32 } else { Size::B64 };
            let dst = pool.dst_gpr(rng, dst_size);
            Instruction::new(Opcode::Movzx, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::Cmov => {
            let op =
                *[Opcode::Cmove, Opcode::Cmovne, Opcode::Cmovl, Opcode::Cmovg].choose(rng).unwrap();
            let size = if rng.gen_bool(0.75) { Size::B64 } else { Size::B32 };
            let src = pool.src_gpr(rng, size);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(op, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::Push => {
            let src = pool.src_gpr(rng, Size::B64);
            Instruction::new(Opcode::Push, vec![Operand::reg(src)])
        }
        Shape::Pop => {
            let dst = pool.dst_gpr(rng, Size::B64);
            Instruction::new(Opcode::Pop, vec![Operand::reg(dst)])
        }
        Shape::VecAvx3 => {
            let op = *[
                Opcode::Vaddss,
                Opcode::Vsubss,
                Opcode::Vmulss,
                Opcode::Vxorps,
                Opcode::Vminss,
                Opcode::Vmaxss,
            ]
            .choose(rng)
            .unwrap();
            let a = pool.src_vec(rng);
            let b = pool.src_vec(rng);
            let dst = pool.dst_vec(rng);
            Instruction::new(op, vec![Operand::reg(dst), Operand::reg(a), Operand::reg(b)])
        }
        Shape::VecSse2 => {
            let op = *[Opcode::Addss, Opcode::Mulss, Opcode::Subss, Opcode::Pxor, Opcode::Paddd]
                .choose(rng)
                .unwrap();
            let src = pool.src_vec(rng);
            let dst = pool.dst_vec(rng);
            Instruction::new(op, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::VecDiv => {
            let (op, three) = *[
                (Opcode::Vdivss, true),
                (Opcode::Divss, false),
                (Opcode::Vdivsd, true),
                (Opcode::Sqrtss, false),
            ]
            .choose(rng)
            .unwrap();
            if three {
                let a = pool.src_vec(rng);
                let b = pool.src_vec(rng);
                let dst = pool.dst_vec(rng);
                Instruction::new(op, vec![Operand::reg(dst), Operand::reg(a), Operand::reg(b)])
            } else {
                let src = pool.src_vec(rng);
                let dst = pool.dst_vec(rng);
                Instruction::new(op, vec![Operand::reg(dst), Operand::reg(src)])
            }
        }
        Shape::VecMov => {
            let src = pool.src_vec(rng);
            let dst = pool.dst_vec(rng);
            Instruction::new(Opcode::Movaps, vec![Operand::reg(dst), Operand::reg(src)])
        }
        Shape::BitCount => {
            let op = *[Opcode::Popcnt, Opcode::Lzcnt, Opcode::Tzcnt].choose(rng).unwrap();
            let size = if rng.gen_bool(0.75) { Size::B64 } else { Size::B32 };
            let src = pool.src_gpr(rng, size);
            let dst = pool.dst_gpr(rng, size);
            Instruction::new(op, vec![Operand::reg(dst), Operand::reg(src)])
        }
    };
    inst.expect("generator emitted an invalid instruction")
}

fn pick_shape<R: Rng>(pool: Pool, rng: &mut R) -> Shape {
    let total: u32 = pool.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(shape, w) in pool {
        if roll < w {
            return shape;
        }
        roll -= w;
    }
    unreachable!("weights exhausted")
}

fn generate_from_pool<R: Rng>(pool: Pool, config: GenConfig, rng: &mut R) -> BasicBlock {
    let n = rng.gen_range(config.min_insts..=config.max_insts);
    let mut regs = RegPool::new();
    let insts: Vec<Instruction> =
        (0..n).map(|_| emit(pick_shape(pool, rng), &mut regs, rng)).collect();
    BasicBlock::new(insts).expect("generated block failed validation")
}

/// Generate a block in the style of a BHive source.
pub fn generate_source_block<R: Rng>(source: Source, config: GenConfig, rng: &mut R) -> BasicBlock {
    generate_from_pool(pool_for_source(source), config, rng)
}

/// Generate a block that classifies into the requested category
/// (rejection-sampled; pools are tuned so acceptance is high).
pub fn generate_category_block<R: Rng>(
    category: Category,
    config: GenConfig,
    rng: &mut R,
) -> BasicBlock {
    loop {
        let block = generate_from_pool(pool_for_category(category), config, rng);
        if classify(&block) == category {
            return block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn category_generation_matches_classification() {
        let mut rng = StdRng::seed_from_u64(99);
        for category in Category::ALL {
            for _ in 0..20 {
                let block = generate_category_block(category, GenConfig::default(), &mut rng);
                assert_eq!(classify(&block), category, "block:\n{block}");
                assert!((4..=10).contains(&block.len()));
            }
        }
    }

    #[test]
    fn source_styles_differ() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = GenConfig::default();
        let mut clang_vec = 0usize;
        let mut blas_vec = 0usize;
        for _ in 0..50 {
            let c = generate_source_block(Source::Clang, config, &mut rng);
            let b = generate_source_block(Source::OpenBlas, config, &mut rng);
            clang_vec += c.iter().filter(|i| i.opcode.category().is_vector()).count();
            blas_vec += b.iter().filter(|i| i.opcode.category().is_vector()).count();
        }
        assert!(blas_vec > clang_vec * 3, "clang {clang_vec} vs blas {blas_vec}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GenConfig::default();
        let a = generate_source_block(Source::Clang, config, &mut StdRng::seed_from_u64(1));
        let b = generate_source_block(Source::Clang, config, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn blocks_develop_dependencies() {
        // With the recency pool, most blocks should have at least one
        // dependency edge.
        let mut rng = StdRng::seed_from_u64(3);
        let mut with_deps = 0;
        for _ in 0..30 {
            let block = generate_source_block(Source::Clang, GenConfig::default(), &mut rng);
            if !comet_graph::BlockGraph::build(&block).edges().is_empty() {
                with_deps += 1;
            }
        }
        assert!(with_deps >= 24, "only {with_deps}/30 blocks had dependencies");
    }
}
