//! Labelled block corpora: the synthetic stand-in for the BHive
//! dataset.

use std::collections::HashSet;

use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, HardwareOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::category::{classify, Category, Source};
use crate::gen::{generate_category_block, generate_source_block, GenConfig};

/// One corpus entry: a block, its provenance metadata, and measured
/// throughputs (from the detailed simulator standing in for hardware).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BhiveBlock {
    /// The basic block.
    pub block: BasicBlock,
    /// Provenance style the block was generated in.
    pub source: Source,
    /// Content-derived category.
    pub category: Category,
    /// Measured throughput on Haswell (cycles/iteration).
    pub throughput_hsw: f64,
    /// Measured throughput on Skylake (cycles/iteration).
    pub throughput_skl: f64,
}

impl BhiveBlock {
    /// Measured throughput on the given microarchitecture.
    pub fn throughput(&self, march: Microarch) -> f64 {
        match march {
            Microarch::Haswell => self.throughput_hsw,
            Microarch::Skylake => self.throughput_skl,
        }
    }
}

/// A labelled collection of unique basic blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    blocks: Vec<BhiveBlock>,
}

impl Corpus {
    /// Generate `n` unique blocks with the source mix of the full BHive
    /// dataset (an even Clang/OpenBLAS split here), labelled on both
    /// microarchitectures. Deterministic per seed.
    pub fn generate(n: usize, config: GenConfig, seed: u64) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let hsw = HardwareOracle::new(Microarch::Haswell);
        let skl = HardwareOracle::new(Microarch::Skylake);
        let mut seen = HashSet::new();
        let mut blocks = Vec::with_capacity(n);
        while blocks.len() < n {
            let source = if rng.gen_bool(0.5) { Source::Clang } else { Source::OpenBlas };
            let block = generate_source_block(source, config, &mut rng);
            if !seen.insert(block.to_string()) {
                continue;
            }
            blocks.push(label(block, source, &hsw, &skl));
        }
        Corpus { blocks }
    }

    /// Generate `n_per_source` unique blocks for each BHive source
    /// (paper Figure 3 uses 100 per source).
    pub fn generate_by_source(n_per_source: usize, config: GenConfig, seed: u64) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let hsw = HardwareOracle::new(Microarch::Haswell);
        let skl = HardwareOracle::new(Microarch::Skylake);
        let mut seen = HashSet::new();
        let mut blocks = Vec::new();
        for source in Source::ALL {
            let mut count = 0;
            while count < n_per_source {
                let block = generate_source_block(source, config, &mut rng);
                if !seen.insert(block.to_string()) {
                    continue;
                }
                blocks.push(label(block, source, &hsw, &skl));
                count += 1;
            }
        }
        Corpus { blocks }
    }

    /// Generate `n_per_category` unique blocks for each BHive category
    /// (paper Figure 4 uses 50 per category).
    pub fn generate_by_category(n_per_category: usize, config: GenConfig, seed: u64) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let hsw = HardwareOracle::new(Microarch::Haswell);
        let skl = HardwareOracle::new(Microarch::Skylake);
        let mut seen = HashSet::new();
        let mut blocks = Vec::new();
        for category in Category::ALL {
            let mut count = 0;
            while count < n_per_category {
                let block = generate_category_block(category, config, &mut rng);
                if !seen.insert(block.to_string()) {
                    continue;
                }
                // Category pools are not tied to a source; attribute by
                // the dominant style.
                let source = if category == Category::Vector || category == Category::ScalarVector {
                    Source::OpenBlas
                } else {
                    Source::Clang
                };
                blocks.push(label(block, source, &hsw, &skl));
                count += 1;
            }
        }
        Corpus { blocks }
    }

    /// A corpus from pre-labelled blocks (used by the lenient loader,
    /// which validates records individually before assembling them).
    pub fn from_blocks(blocks: Vec<BhiveBlock>) -> Corpus {
        Corpus { blocks }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[BhiveBlock] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterate over the blocks.
    pub fn iter(&self) -> std::slice::Iter<'_, BhiveBlock> {
        self.blocks.iter()
    }

    /// The sub-corpus from one source.
    pub fn by_source(&self, source: Source) -> Vec<&BhiveBlock> {
        self.blocks.iter().filter(|b| b.source == source).collect()
    }

    /// The sub-corpus in one category.
    pub fn by_category(&self, category: Category) -> Vec<&BhiveBlock> {
        self.blocks.iter().filter(|b| b.category == category).collect()
    }

    /// A reproducible random sample of `n` blocks.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<&BhiveBlock> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut refs: Vec<&BhiveBlock> = self.blocks.iter().collect();
        refs.shuffle(&mut rng);
        refs.truncate(n);
        refs
    }

    /// Training pairs `(block, throughput)` for one microarchitecture.
    pub fn training_pairs(&self, march: Microarch) -> Vec<(BasicBlock, f64)> {
        self.blocks.iter().map(|b| (b.block.clone(), b.throughput(march))).collect()
    }
}

fn label(
    block: BasicBlock,
    source: Source,
    hsw: &HardwareOracle,
    skl: &HardwareOracle,
) -> BhiveBlock {
    let category = classify(&block);
    let throughput_hsw = hsw.predict(&block);
    let throughput_skl = skl.predict(&block);
    BhiveBlock { block, source, category, throughput_hsw, throughput_skl }
}

impl<'a> IntoIterator for &'a Corpus {
    type Item = &'a BhiveBlock;
    type IntoIter = std::slice::Iter<'a, BhiveBlock>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_unique_labelled_blocks() {
        let corpus = Corpus::generate(30, GenConfig::default(), 42);
        assert_eq!(corpus.len(), 30);
        let texts: HashSet<String> = corpus.iter().map(|b| b.block.to_string()).collect();
        assert_eq!(texts.len(), 30);
        for entry in &corpus {
            assert!(entry.throughput_hsw > 0.0);
            assert!(entry.throughput_skl > 0.0);
            assert_eq!(classify(&entry.block), entry.category);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(10, GenConfig::default(), 7);
        let b = Corpus::generate(10, GenConfig::default(), 7);
        let at: Vec<String> = a.iter().map(|x| x.block.to_string()).collect();
        let bt: Vec<String> = b.iter().map(|x| x.block.to_string()).collect();
        assert_eq!(at, bt);
    }

    #[test]
    fn by_category_covers_all_six() {
        let corpus = Corpus::generate_by_category(5, GenConfig::default(), 3);
        assert_eq!(corpus.len(), 30);
        for category in Category::ALL {
            assert_eq!(corpus.by_category(category).len(), 5, "{category}");
        }
    }

    #[test]
    fn by_source_covers_both() {
        let corpus = Corpus::generate_by_source(8, GenConfig::default(), 5);
        assert_eq!(corpus.by_source(Source::Clang).len(), 8);
        assert_eq!(corpus.by_source(Source::OpenBlas).len(), 8);
    }

    #[test]
    fn sampling_is_reproducible() {
        let corpus = Corpus::generate(20, GenConfig::default(), 1);
        let s1: Vec<String> = corpus.sample(5, 9).iter().map(|b| b.block.to_string()).collect();
        let s2: Vec<String> = corpus.sample(5, 9).iter().map(|b| b.block.to_string()).collect();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 5);
    }

    #[test]
    fn training_pairs_match_labels() {
        let corpus = Corpus::generate(5, GenConfig::default(), 2);
        let pairs = corpus.training_pairs(Microarch::Haswell);
        for (pair, entry) in pairs.iter().zip(&corpus) {
            assert_eq!(pair.1, entry.throughput_hsw);
        }
    }
}
