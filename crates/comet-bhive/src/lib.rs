//! # comet-bhive
//!
//! A synthetic stand-in for the BHive basic-block benchmark suite
//! (Chen et al., IISWC '19): generators producing x86 blocks in the
//! style of BHive's *sources* (Clang, OpenBLAS) and *categories* (Load,
//! Store, Load/Store, Scalar, Vector, Scalar/Vector), labelled with
//! steady-state throughputs by the detailed pipeline simulator standing
//! in for Haswell/Skylake silicon (see DESIGN.md §1 for the
//! substitution rationale).
//!
//! # Examples
//!
//! ```
//! use comet_bhive::{Corpus, GenConfig};
//!
//! let corpus = Corpus::generate(10, GenConfig::default(), 42);
//! assert_eq!(corpus.len(), 10);
//! for entry in &corpus {
//!     assert!(entry.throughput_hsw > 0.0);
//! }
//! ```

#![warn(missing_docs)]

mod category;
mod corpus;
mod gen;
mod io;

pub use category::{classify, Category, Source};
pub use corpus::{BhiveBlock, Corpus};
pub use gen::{generate_category_block, generate_source_block, GenConfig};
pub use io::{load_corpus, load_corpus_reporting, save_corpus, CorpusIoError, CorpusLoadReport};
