//! Corpus (de)serialization: save generated, labelled corpora to JSON
//! so expensive generation/labelling runs once.
//!
//! Persistence is hardened for exactly that "runs once" property:
//!
//! * **Atomic saves** — [`save_corpus`] writes to a `*.tmp` sibling,
//!   fsyncs, and renames into place, so a crash (or full disk) mid-save
//!   never corrupts a corpus that took hours to label. The previous
//!   file survives intact until the rename commits the new one.
//! * **Record-level quarantine on load** — [`load_corpus`] validates
//!   every record individually. Malformed or implausible entries (bad
//!   JSON shape, non-finite/non-positive throughputs, empty blocks) are
//!   moved to a `<path>.quarantine.jsonl` sidecar with a warning and
//!   the rest of the corpus still loads, instead of one bad entry
//!   poisoning the whole file. Use [`load_corpus_reporting`] to inspect
//!   what was dropped.

use std::fs::{self, File};
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};

use crate::corpus::{BhiveBlock, Corpus};

/// Errors from corpus persistence.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
    /// The file parses as JSON but is not a corpus (e.g. the top-level
    /// `blocks` array is missing).
    Schema {
        /// What was wrong with the document shape.
        message: String,
    },
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus i/o failed: {e}"),
            CorpusIoError::Format(e) => write!(f, "corpus format invalid: {e}"),
            CorpusIoError::Schema { message } => write!(f, "corpus schema invalid: {message}"),
        }
    }
}

impl std::error::Error for CorpusIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusIoError::Io(e) => Some(e),
            CorpusIoError::Format(e) => Some(e),
            CorpusIoError::Schema { .. } => None,
        }
    }
}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> CorpusIoError {
        CorpusIoError::Io(e)
    }
}

impl From<serde_json::Error> for CorpusIoError {
    fn from(e: serde_json::Error) -> CorpusIoError {
        CorpusIoError::Format(e)
    }
}

/// What a lenient corpus load kept and dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusLoadReport {
    /// Records loaded into the corpus.
    pub loaded: usize,
    /// Records quarantined (malformed or failing validation).
    pub quarantined: usize,
    /// Where the quarantined records were written, when any were.
    pub quarantine_path: Option<PathBuf>,
}

/// Write `bytes` to `path` atomically: `*.tmp` sibling + fsync +
/// rename, then a best-effort fsync of the parent directory so the
/// rename itself is durable. On any failure the destination is left
/// untouched (either the old content or absent, never torn).
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the caller's error matters more.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The temporary sibling used by [`atomic_write`] (same directory, so
/// the final rename never crosses a filesystem boundary).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsync the directory containing `path` so a freshly committed rename
/// survives power loss. Best-effort: not every platform/filesystem
/// allows opening a directory, and the data fsync has already happened.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Write a corpus as pretty-printed JSON, atomically (see the
/// [module docs](self)): a crash mid-save cannot corrupt an existing
/// corpus file.
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on filesystem failures.
pub fn save_corpus(corpus: &Corpus, path: impl AsRef<Path>) -> Result<(), CorpusIoError> {
    let json = serde_json::to_vec_pretty(corpus)?;
    atomic_write(path.as_ref(), &json)?;
    Ok(())
}

/// Load a corpus previously written by [`save_corpus`], quarantining
/// bad records instead of failing the load (see the [module
/// docs](self)). Emits a warning on stderr when anything is dropped.
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on filesystem failures,
/// [`CorpusIoError::Format`] when the file is not JSON at all, and
/// [`CorpusIoError::Schema`] when the document is JSON but not a
/// corpus.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<Corpus, CorpusIoError> {
    load_corpus_reporting(path).map(|(corpus, _)| corpus)
}

/// [`load_corpus`] plus a [`CorpusLoadReport`] describing what was
/// kept and what was quarantined.
///
/// # Errors
///
/// See [`load_corpus`].
pub fn load_corpus_reporting(
    path: impl AsRef<Path>,
) -> Result<(Corpus, CorpusLoadReport), CorpusIoError> {
    let path = path.as_ref();
    let file = File::open(path)?;
    let value: serde_json::Value = serde_json::from_reader(BufReader::new(file))?;
    let entries = value.get("blocks").and_then(|b| b.as_array()).ok_or_else(|| {
        CorpusIoError::Schema { message: "top-level `blocks` array missing".to_string() }
    })?;

    let mut blocks = Vec::with_capacity(entries.len());
    let mut quarantine: Vec<String> = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        match serde_json::from_value::<BhiveBlock>(entry.clone()) {
            Ok(block) => match validate(&block) {
                Ok(()) => blocks.push(block),
                Err(reason) => quarantine.push(quarantine_line(i, &reason, entry)),
            },
            Err(e) => quarantine.push(quarantine_line(i, &e.to_string(), entry)),
        }
    }

    let mut report = CorpusLoadReport {
        loaded: blocks.len(),
        quarantined: quarantine.len(),
        quarantine_path: None,
    };
    if !quarantine.is_empty() {
        let sidecar = quarantine_sibling(path);
        let mut body = quarantine.join("\n");
        body.push('\n');
        atomic_write(&sidecar, body.as_bytes())?;
        eprintln!(
            "warning: quarantined {} of {} corpus records from {} into {} (kept {})",
            report.quarantined,
            entries.len(),
            path.display(),
            sidecar.display(),
            report.loaded,
        );
        report.quarantine_path = Some(sidecar);
    }
    Ok((Corpus::from_blocks(blocks), report))
}

/// The quarantine sidecar path for a corpus file:
/// `corpus.json` → `corpus.json.quarantine.jsonl`.
fn quarantine_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".quarantine.jsonl");
    path.with_file_name(name)
}

/// One quarantine sidecar line: the record index, why it was dropped,
/// and the original JSON so nothing is lost.
fn quarantine_line(index: usize, reason: &str, record: &serde_json::Value) -> String {
    serde_json::json!({ "index": index, "reason": reason, "record": record }).to_string()
}

/// Semantic validation beyond JSON shape: labels must be usable by the
/// experiments downstream.
fn validate(block: &BhiveBlock) -> Result<(), String> {
    if block.block.is_empty() {
        return Err("empty basic block".to_string());
    }
    for (march, value) in [("hsw", block.throughput_hsw), ("skl", block.throughput_skl)] {
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("throughput_{march} is not a positive finite number ({value})"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comet-bhive-io-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let corpus = Corpus::generate(6, GenConfig::default(), 31);
        let dir = temp_dir("roundtrip");
        let path = dir.join("corpus.json");
        save_corpus(&corpus, &path).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(corpus.len(), loaded.len());
        for (a, b) in corpus.iter().zip(loaded.iter()) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.category, b.category);
            assert_eq!(a.throughput_hsw, b.throughput_hsw);
        }
        // The atomic-save temporary never survives a successful write.
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let dir = temp_dir("atomic");
        let path = dir.join("corpus.json");
        let old = Corpus::generate(3, GenConfig::default(), 1);
        let new = Corpus::generate(5, GenConfig::default(), 2);
        save_corpus(&old, &path).unwrap();
        save_corpus(&new, &path).unwrap();
        assert_eq!(load_corpus(&path).unwrap().len(), 5);
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = temp_dir("garbage");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(load_corpus(&path), Err(CorpusIoError::Format(_))));
        std::fs::write(&path, "{\"not_blocks\": []}").unwrap();
        assert!(matches!(load_corpus(&path), Err(CorpusIoError::Schema { .. })));
        assert!(load_corpus(dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_records_are_quarantined_not_fatal() {
        let corpus = Corpus::generate(5, GenConfig::default(), 8);
        let dir = temp_dir("quarantine");
        let path = dir.join("corpus.json");
        save_corpus(&corpus, &path).unwrap();

        // Corrupt record 1 (unparseable shape) and record 3 (parses,
        // fails validation: NaN serializes as null → parse failure too,
        // so use a negative throughput for the semantic case).
        let mut value: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let blocks = value.get_mut("blocks").unwrap().as_array_mut().unwrap();
        blocks[1] = serde_json::json!({ "what": "is this" });
        blocks[3]["throughput_hsw"] = serde_json::json!(-2.5);
        std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap()).unwrap();

        let (loaded, report) = load_corpus_reporting(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(report.loaded, 3);
        assert_eq!(report.quarantined, 2);
        let sidecar = report.quarantine_path.unwrap();
        let body = std::fs::read_to_string(&sidecar).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let entry: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(entry.get("reason").is_some());
            assert!(entry.get("record").is_some());
        }
        // The quarantined originals are preserved verbatim.
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["index"], 1);
        assert_eq!(first["record"]["what"], "is this");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&sidecar).unwrap();
    }

    #[test]
    fn healthy_loads_produce_no_sidecar() {
        let corpus = Corpus::generate(4, GenConfig::default(), 9);
        let dir = temp_dir("healthy");
        let path = dir.join("corpus.json");
        save_corpus(&corpus, &path).unwrap();
        let (_, report) = load_corpus_reporting(&path).unwrap();
        assert_eq!(report.quarantined, 0);
        assert!(report.quarantine_path.is_none());
        assert!(!quarantine_sibling(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
