//! Corpus (de)serialization: save generated, labelled corpora to JSON
//! so expensive generation/labelling runs once.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use crate::corpus::Corpus;

/// Errors from corpus persistence.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus i/o failed: {e}"),
            CorpusIoError::Format(e) => write!(f, "corpus format invalid: {e}"),
        }
    }
}

impl std::error::Error for CorpusIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusIoError::Io(e) => Some(e),
            CorpusIoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> CorpusIoError {
        CorpusIoError::Io(e)
    }
}

impl From<serde_json::Error> for CorpusIoError {
    fn from(e: serde_json::Error) -> CorpusIoError {
        CorpusIoError::Format(e)
    }
}

/// Write a corpus as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on filesystem failures.
pub fn save_corpus(corpus: &Corpus, path: impl AsRef<Path>) -> Result<(), CorpusIoError> {
    let file = File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), corpus)?;
    Ok(())
}

/// Load a corpus previously written by [`save_corpus`].
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on filesystem failures and
/// [`CorpusIoError::Format`] on malformed content.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<Corpus, CorpusIoError> {
    let file = File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    #[test]
    fn corpus_round_trips_through_json() {
        let corpus = Corpus::generate(6, GenConfig::default(), 31);
        let dir = std::env::temp_dir().join("comet-bhive-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        save_corpus(&corpus, &path).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(corpus.len(), loaded.len());
        for (a, b) in corpus.iter().zip(loaded.iter()) {
            assert_eq!(a.block, b.block);
            assert_eq!(a.category, b.category);
            assert_eq!(a.throughput_hsw, b.throughput_hsw);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("comet-bhive-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(load_corpus(&path), Err(CorpusIoError::Format(_))));
        assert!(load_corpus(dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
