//! BHive's block taxonomy: categories (by instruction semantics) and
//! sources (by provenance).

use std::fmt;

use comet_isa::{BasicBlock, OpCategory};
use serde::{Deserialize, Serialize};

/// BHive's six block categories (paper Appendix H.1), characterized by
/// the semantics of the instructions in the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Loads from memory, no stores.
    Load,
    /// Stores to memory, no loads.
    Store,
    /// Both loads and stores.
    LoadStore,
    /// Scalar (GPR) arithmetic only, no memory traffic.
    Scalar,
    /// Vector (SIMD) computation only, no memory traffic.
    Vector,
    /// Mixed scalar and vector computation, no memory traffic.
    ScalarVector,
}

impl Category {
    /// All six categories, in the paper's Figure 4 order.
    pub const ALL: [Category; 6] = [
        Category::Load,
        Category::LoadStore,
        Category::Store,
        Category::Scalar,
        Category::Vector,
        Category::ScalarVector,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Load => "Load",
            Category::Store => "Store",
            Category::LoadStore => "Load/Store",
            Category::Scalar => "Scalar",
            Category::Vector => "Vector",
            Category::ScalarVector => "Scalar/Vector",
        };
        f.write_str(s)
    }
}

/// The real-world code base a block is styled after (paper Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Source {
    /// Compiler-generated scalar/pointer-chasing code (Clang building
    /// itself: address arithmetic, flag tests, spills).
    Clang,
    /// Dense-linear-algebra kernels (OpenBLAS: unrolled vector
    /// arithmetic with streaming loads).
    OpenBlas,
}

impl Source {
    /// Both modelled sources.
    pub const ALL: [Source; 2] = [Source::Clang, Source::OpenBlas];
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Clang => write!(f, "Clang"),
            Source::OpenBlas => write!(f, "OpenBLAS"),
        }
    }
}

/// Classify a block into its BHive category from instruction semantics.
pub fn classify(block: &BasicBlock) -> Category {
    let mut loads = false;
    let mut stores = false;
    let mut vector = false;
    let mut scalar = false;
    for inst in block {
        loads |= inst.reads_memory();
        stores |= inst.writes_memory();
        let cat = inst.opcode.category();
        if cat.is_vector() {
            vector = true;
        } else if !matches!(cat, OpCategory::Nop) {
            scalar = true;
        }
    }
    match (loads, stores) {
        (true, true) => Category::LoadStore,
        (true, false) => Category::Load,
        (false, true) => Category::Store,
        (false, false) => match (scalar, vector) {
            (_, false) => Category::Scalar,
            (false, true) => Category::Vector,
            (true, true) => Category::ScalarVector,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_isa::parse_block;

    #[test]
    fn classifies_memory_categories() {
        let load = parse_block("mov rax, qword ptr [rdi]\nadd rax, 1").unwrap();
        assert_eq!(classify(&load), Category::Load);
        let store = parse_block("mov qword ptr [rdi], rax").unwrap();
        assert_eq!(classify(&store), Category::Store);
        let both = parse_block("mov rax, qword ptr [rdi]\nmov qword ptr [rsi], rax").unwrap();
        assert_eq!(classify(&both), Category::LoadStore);
    }

    #[test]
    fn classifies_compute_categories() {
        let scalar = parse_block("add rcx, rax\nimul rdx, rcx").unwrap();
        assert_eq!(classify(&scalar), Category::Scalar);
        let vector = parse_block("vaddss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0").unwrap();
        assert_eq!(classify(&vector), Category::Vector);
        let mixed = parse_block("add rcx, rax\nvmulss xmm3, xmm0, xmm0").unwrap();
        assert_eq!(classify(&mixed), Category::ScalarVector);
    }

    #[test]
    fn push_pop_count_as_memory() {
        assert_eq!(classify(&parse_block("pop rbx").unwrap()), Category::Load);
        assert_eq!(classify(&parse_block("push rbx").unwrap()), Category::Store);
    }
}
