//! Property-based tests for the synthetic BHive corpus generators.

use comet_bhive::{
    classify, generate_category_block, generate_source_block, Category, GenConfig, Source,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated blocks are always valid, within the length bounds,
    /// and printable/reparsable.
    #[test]
    fn source_blocks_are_valid_and_round_trip(seed in any::<u64>()) {
        for source in Source::ALL {
            let mut rng = StdRng::seed_from_u64(seed);
            let block = generate_source_block(source, GenConfig::default(), &mut rng);
            prop_assert!(block.is_valid());
            prop_assert!((4..=10).contains(&block.len()));
            let reparsed = comet_isa::parse_block(&block.to_string()).unwrap();
            prop_assert_eq!(block, reparsed);
        }
    }

    /// Category-targeted generation always classifies as requested.
    #[test]
    fn category_blocks_classify_correctly(seed in any::<u64>(), idx in 0usize..6) {
        let category = Category::ALL[idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let block = generate_category_block(category, GenConfig::default(), &mut rng);
        prop_assert_eq!(classify(&block), category);
    }

    /// Custom length bounds are honoured.
    #[test]
    fn length_bounds_respected(seed in any::<u64>(), min in 1usize..5, extra in 0usize..4) {
        let config = GenConfig { min_insts: min, max_insts: min + extra };
        let mut rng = StdRng::seed_from_u64(seed);
        let block = generate_source_block(Source::Clang, config, &mut rng);
        prop_assert!((min..=min + extra).contains(&block.len()));
    }
}
