//! Crash-safety and resumption tests for the evaluation journal:
//!
//! * property test: truncating a journal at *any* byte offset recovers
//!   exactly the prefix of intact records — never a torn or invented
//!   record;
//! * an interrupted run (cooperative cancellation partway through)
//!   re-run with the same command produces results identical to an
//!   uninterrupted run, without re-querying the model for completed
//!   blocks;
//! * resuming under a different configuration is refused.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use comet_core::{ExplainConfig, Explanation, FeatureSet};
use comet_eval::experiments::{explain_blocks, explain_blocks_durable, try_explain_blocks_durable};
use comet_eval::journal::{fingerprint, Journal, JournalError, JournalRecord};
use comet_eval::{CancelToken, Durability};
use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, CrudeModel};
use proptest::prelude::*;

/// A unique scratch directory per test (process id keeps parallel CI
/// shards apart; the tag keeps tests within one process apart).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comet-durability-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_blocks() -> Vec<BasicBlock> {
    [
        "add rcx, rax\nmov rdx, rcx",
        "sub rax, rbx\nadd rbx, rcx\nmov rax, rbx",
        "imul rdx, rcx\nadd rax, rdx",
        "mov rbx, 7\nadd rax, rbx\nsub rcx, rax",
        "add rax, 1\nadd rbx, 2\nadd rcx, 3",
        "mov rdx, rax\nimul rax, rdx\nmov rcx, rax",
    ]
    .iter()
    .map(|text| comet_isa::parse_block(text).unwrap())
    .collect()
}

fn small_config() -> ExplainConfig {
    ExplainConfig { coverage_samples: 100, max_samples: 80, ..ExplainConfig::for_crude_model() }
}

fn sample_record(index: usize) -> JournalRecord {
    JournalRecord {
        index,
        block: format!("add rcx, rax ; block {index}"),
        seed: 41,
        explanation: Explanation {
            features: FeatureSet::new(),
            precision: 0.125 * index as f64,
            coverage: 0.75,
            prediction: 1.5 + index as f64,
            anchored: index.is_multiple_of(2),
            queries: 100 + index as u64,
            faults: 0,
            retries: 0,
            degraded: false,
            duration_secs: 0.0,
        },
    }
}

/// Byte image of a journal holding `n` records, plus the byte offset at
/// which each line (header first) ends.
fn journal_image(n: usize) -> (Vec<u8>, Vec<usize>) {
    let dir = scratch_dir("image");
    let path = dir.join("image.jsonl");
    let journal = Journal::create(&path, &fingerprint(&["truncation-property"])).unwrap();
    for i in 0..n {
        journal.append(&sample_record(i)).unwrap();
    }
    drop(journal);
    let bytes = fs::read(&path).unwrap();
    let _ = fs::remove_dir_all(&dir);
    let line_ends = bytes.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i).collect();
    (bytes, line_ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chop a journal at an arbitrary byte offset (simulating a crash
    /// mid-write at any point) and recover: the result must be exactly
    /// the records whose lines fit completely within the kept prefix.
    /// A cut inside the header yields a fresh, empty journal rather
    /// than an error. Recovery must also be idempotent: reopening the
    /// repaired file truncates nothing further.
    #[test]
    fn truncation_at_any_offset_recovers_the_intact_prefix(cut_frac in 0.0f64..=1.0) {
        let (bytes, line_ends) = journal_image(5);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Lines wholly inside `bytes[..cut]`; the first is the header.
        let complete_lines = line_ends.iter().filter(|&&end| end < cut).count();
        let expected_records = complete_lines.saturating_sub(1);

        let dir = scratch_dir(&format!("cut-{cut}"));
        let path = dir.join("journal.jsonl");
        fs::write(&path, &bytes[..cut]).unwrap();

        let fp = fingerprint(&["truncation-property"]);
        let (journal, recovery) = Journal::open_or_create(&path, &fp).unwrap();
        prop_assert_eq!(recovery.records.len(), expected_records);
        for (i, record) in recovery.records.iter().enumerate() {
            prop_assert_eq!(record, &sample_record(i));
        }
        drop(journal);

        let (_again, second) = Journal::open_or_create(&path, &fp).unwrap();
        prop_assert_eq!(second.truncated_bytes, 0);
        prop_assert_eq!(second.records.len(), expected_records);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Crude model that counts every prediction, to prove that resumption
/// serves recovered blocks from the journal instead of recomputing.
struct CountingCrude {
    inner: CrudeModel,
    queries: AtomicU64,
}

impl CountingCrude {
    fn new() -> CountingCrude {
        CountingCrude { inner: CrudeModel::new(Microarch::Haswell), queries: AtomicU64::new(0) }
    }
}

impl CostModel for CountingCrude {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn predict(&self, block: &BasicBlock) -> f64 {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.predict(block)
    }
}

#[test]
fn interrupted_then_resumed_run_matches_uninterrupted_run() {
    let blocks = sample_blocks();
    let refs: Vec<&BasicBlock> = blocks.iter().collect();
    let config = small_config();
    let seed = 9;

    // The reference: one uninterrupted, journal-less run.
    let reference = explain_blocks(&CrudeModel::new(Microarch::Haswell), &refs, config, seed);
    assert_eq!(reference.len(), refs.len());

    // First attempt: cancelled after two worker polls, so only a couple
    // of blocks complete (and are journaled) before the run stops.
    let dir = scratch_dir("resume");
    let interrupted = Durability {
        journal_dir: Some(dir.clone()),
        cancel: CancelToken::after_polls(2),
        ..Durability::default()
    };
    let model = CountingCrude::new();
    let partial =
        try_explain_blocks_durable(&model, &refs, config, seed, &interrupted, "resume-test")
            .unwrap();
    let done = partial.iter().flatten().count();
    assert!(done >= 1, "poll budget admits at least one block");
    assert!(done < refs.len(), "expected an interrupted run, all blocks completed");
    assert!(interrupted.cancel.is_cancelled());

    // Second attempt: same command, fresh token. It must resume from
    // the journal without re-querying the model for completed blocks,
    // and the final results must be identical to the uninterrupted run.
    let resumed_model = CountingCrude::new();
    let resumed = explain_blocks_durable(
        &resumed_model,
        &refs,
        config,
        seed,
        &Durability {
            journal_dir: Some(dir.clone()),
            cancel: CancelToken::new(),
            ..Durability::default()
        },
        "resume-test",
    )
    .unwrap();
    assert_eq!(resumed, reference);

    // Third run: everything is journaled now, so the model is never
    // queried at all — and the output is still identical.
    let idle_model = CountingCrude::new();
    let replayed = explain_blocks_durable(
        &idle_model,
        &refs,
        config,
        seed,
        &Durability {
            journal_dir: Some(dir.clone()),
            cancel: CancelToken::new(),
            ..Durability::default()
        },
        "resume-test",
    )
    .unwrap();
    assert_eq!(idle_model.queries.load(Ordering::Relaxed), 0);
    assert_eq!(replayed, reference);

    // "Byte-identical tables" reduces to byte-identical serialized
    // explanations, since tables are pure functions of these.
    let a = serde_json::to_string(&resumed.iter().map(|(_, e)| e).collect::<Vec<_>>()).unwrap();
    let b = serde_json::to_string(&reference.iter().map(|(_, e)| e).collect::<Vec<_>>()).unwrap();
    assert_eq!(a, b);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resuming_under_a_different_configuration_is_refused() {
    let blocks = sample_blocks();
    let refs: Vec<&BasicBlock> = blocks.iter().collect();
    let config = small_config();
    let crude = CrudeModel::new(Microarch::Haswell);

    let dir = scratch_dir("mismatch");
    let durability = Durability {
        journal_dir: Some(dir.clone()),
        cancel: CancelToken::new(),
        ..Durability::default()
    };
    try_explain_blocks_durable(&crude, &refs, config, 1, &durability, "mismatch-test").unwrap();

    // Same key, different seed: the fingerprint no longer matches and
    // the run must refuse to mix results rather than resume.
    let outcome =
        try_explain_blocks_durable(&crude, &refs, config, 2, &durability, "mismatch-test");
    match outcome {
        Err(JournalError::FingerprintMismatch { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected FingerprintMismatch, got {:?}", other.map(|slots| slots.len())),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_blocks_are_left_pending_not_recorded() {
    let blocks = sample_blocks();
    let refs: Vec<&BasicBlock> = blocks.iter().collect();
    let config = small_config();
    let crude = CrudeModel::new(Microarch::Haswell);

    let dir = scratch_dir("pending");
    let durability = Durability {
        journal_dir: Some(dir.clone()),
        cancel: CancelToken::after_polls(2),
        ..Durability::default()
    };
    let slots =
        try_explain_blocks_durable(&crude, &refs, config, 5, &durability, "pending-test").unwrap();

    // The journal holds exactly the completed blocks, nothing else.
    let fp_probe = fs::read_to_string(dir.join("pending-test.jsonl")).unwrap();
    let journaled_lines = fp_probe.lines().count() - 1; // minus header
    assert_eq!(journaled_lines, slots.iter().flatten().count());
    let _ = fs::remove_dir_all(&dir);
}
