//! Forced-scalar golden explanation: pin the `scalar-v1` kernel before
//! the first prediction this process makes, explain a block with a
//! neural surrogate, and check the search content against committed
//! golden values. This is the reproducibility contract `--force-scalar`
//! sells: on any machine — AVX2 or not — the scalar variant must yield
//! this exact explanation, bit for bit.
//!
//! Deliberately its own integration-test binary: kernel resolution is
//! once-per-process, so the pin must happen in a process that runs
//! nothing else first.

use comet_core::{ExplainConfig, Explainer};
use comet_isa::{parse_block, Microarch};
use comet_models::{CostModel, IthemalConfig, IthemalSurrogate};
use comet_nn::kernel;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn forced_scalar_explanation_matches_golden() {
    assert!(kernel::force_scalar(), "kernel already resolved non-scalar before the pin");
    assert_eq!(kernel::active().name, "scalar-v1");

    let corpus: Vec<_> = [
        ("add rax, 1", 1.0),
        ("add rax, 1\nadd rbx, 1", 1.0),
        ("div rcx", 25.0),
        ("div rcx\nadd rax, 1", 25.0),
        ("mov rdx, rcx\nmov rbx, rax", 1.0),
        ("imul rax, rcx\nadd rdx, 4", 3.0),
    ]
    .iter()
    .map(|(text, cost)| (parse_block(text).unwrap(), *cost))
    .collect();
    let surrogate = IthemalSurrogate::train(
        Microarch::Haswell,
        &corpus,
        IthemalConfig { epochs: 40, ..IthemalConfig::default() },
    );

    let block = parse_block("mov ecx, edx\nxor edx, edx\ndiv rcx\nimul rax, rcx").unwrap();
    let config = ExplainConfig {
        coverage_samples: 200,
        max_total_queries: 6_000,
        ..ExplainConfig::for_throughput_model()
    };
    let explainer = Explainer::new(surrogate, config);
    let mut rng = StdRng::seed_from_u64(0x5CA1A5);
    let explanation = explainer.explain(&block, &mut rng).expect("explanation failed");

    // The full search result, serialized (duration excluded by design).
    // On intentional drift (retrained surrogate, search change),
    // regenerate from the failure message: it prints the actual
    // serialization.
    let got = serde_json::to_string(&explanation).unwrap();
    assert_eq!(got, GOLDEN, "forced-scalar explanation drifted from golden");

    // Spot-check the surrogate prediction itself is the value the
    // golden embeds — catches a drift in the model independent of the
    // search.
    let prediction = explainer.model().predict(&block);
    assert_eq!(prediction.to_bits(), explanation.prediction.to_bits());
}

/// Captured from a run of this test under `scalar-v1`.
const GOLDEN: &str = "{\"features\":[\"NumInstructions\"],\"precision\":0.84375,\"coverage\":0.495,\"prediction\":1.7799081236327672,\"anchored\":true,\"queries\":177,\"faults\":0,\"retries\":0,\"degraded\":false}";
