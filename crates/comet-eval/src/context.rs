//! Shared experimental setup: corpora, trained surrogates, and scale
//! presets.

use std::path::PathBuf;

use comet_bhive::{Corpus, GenConfig};
use comet_isa::Microarch;
use comet_models::{IthemalConfig, IthemalSurrogate, UicaSurrogate};

use crate::par::CancelToken;

/// Experiment scale: `paper` replicates the paper's set sizes; `quick`
/// is a minutes-scale smoke configuration for CI and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Blocks in the main explanation test set (paper: 200).
    pub test_blocks: usize,
    /// Blocks per source partition (paper: 100).
    pub source_blocks: usize,
    /// Blocks per category partition (paper: 50).
    pub category_blocks: usize,
    /// Random seeds averaged over (paper: 5).
    pub seeds: usize,
    /// Coverage samples per explanation (paper: 10_000).
    pub coverage_samples: usize,
    /// Training-corpus size for the Ithemal surrogate.
    pub train_blocks: usize,
    /// Training epochs for the Ithemal surrogate.
    pub train_epochs: usize,
    /// Blocks used in the Appendix E ablations (paper: 100).
    pub ablation_blocks: usize,
}

impl Scale {
    /// The paper's experiment sizes.
    pub fn paper() -> Scale {
        Scale {
            test_blocks: 200,
            source_blocks: 100,
            category_blocks: 50,
            seeds: 5,
            coverage_samples: 10_000,
            train_blocks: 5_000,
            train_epochs: 16,
            ablation_blocks: 100,
        }
    }

    /// A reduced preset that preserves every experimental contrast.
    pub fn quick() -> Scale {
        Scale {
            test_blocks: 40,
            source_blocks: 24,
            category_blocks: 12,
            seeds: 2,
            coverage_samples: 600,
            train_blocks: 600,
            train_epochs: 8,
            ablation_blocks: 16,
        }
    }

    /// A middle preset: paper-shaped results in tens of minutes on a
    /// single core.
    pub fn standard() -> Scale {
        Scale {
            test_blocks: 40,
            source_blocks: 25,
            category_blocks: 12,
            seeds: 2,
            coverage_samples: 2_000,
            train_blocks: 2_500,
            train_epochs: 14,
            ablation_blocks: 30,
        }
    }
}

/// Deterministic base seed for all corpora.
const CORPUS_SEED: u64 = 0xB10C5;

/// Run-durability and execution settings shared by the experiments:
/// where (and whether) to journal per-block results, the cooperative
/// cancellation flag workers poll (tripped by Ctrl-C in the
/// `comet-eval` binary), and the batched-search knobs.
///
/// The default is fully transparent: no journal directory, a token
/// nobody cancels, batch 16 with the search on the calling thread.
#[derive(Debug, Clone)]
pub struct Durability {
    /// Directory for write-ahead journals (one `<key>.jsonl` per
    /// experiment/march/seed). `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Cooperative cancellation flag checked by parallel workers.
    pub cancel: CancelToken,
    /// Model-query batch size for the batched anchors search. Results
    /// are invariant to this knob; it only affects throughput.
    pub batch: usize,
    /// Intra-explanation worker-pool size. Defaults to 1 (calling
    /// thread only): the experiments already parallelize across blocks,
    /// so extra per-search threads usually oversubscribe the cores.
    pub search_pool: usize,
}

impl Default for Durability {
    fn default() -> Durability {
        Durability { journal_dir: None, cancel: CancelToken::new(), batch: 16, search_pool: 1 }
    }
}

impl Durability {
    /// Journal into `dir` with a fresh cancellation token.
    pub fn journaling(dir: impl Into<PathBuf>) -> Durability {
        Durability { journal_dir: Some(dir.into()), ..Durability::default() }
    }
}

/// Everything the experiments share: corpora and cost models.
pub struct EvalContext {
    /// Scale preset in use.
    pub scale: Scale,
    /// The main explanation test set (paper §6: 200 random blocks of
    /// 4–10 instructions).
    pub test_corpus: Corpus,
    /// The per-source partitions (Figure 3).
    pub source_corpus: Corpus,
    /// The per-category partitions (Figure 4).
    pub category_corpus: Corpus,
    /// Trained Ithemal surrogate for Haswell.
    pub ithemal_hsw: IthemalSurrogate,
    /// Trained Ithemal surrogate for Skylake.
    pub ithemal_skl: IthemalSurrogate,
    /// uiCA surrogate for Haswell.
    pub uica_hsw: UicaSurrogate,
    /// uiCA surrogate for Skylake.
    pub uica_skl: UicaSurrogate,
    /// Journaling and cancellation settings for long runs.
    pub durability: Durability,
}

impl EvalContext {
    /// Build corpora and train the neural surrogates (the expensive,
    /// one-time part of every experiment binary).
    pub fn build(scale: Scale) -> EvalContext {
        let config = GenConfig::default();
        let test_corpus = Corpus::generate(scale.test_blocks, config, CORPUS_SEED);
        let source_corpus =
            Corpus::generate_by_source(scale.source_blocks, config, CORPUS_SEED + 1);
        let category_corpus =
            Corpus::generate_by_category(scale.category_blocks, config, CORPUS_SEED + 2);
        let train_corpus = Corpus::generate(scale.train_blocks, config, CORPUS_SEED + 3);

        let ithemal_config =
            IthemalConfig { epochs: scale.train_epochs, ..IthemalConfig::default() };
        let ithemal_hsw = IthemalSurrogate::train(
            Microarch::Haswell,
            &train_corpus.training_pairs(Microarch::Haswell),
            ithemal_config,
        );
        let ithemal_skl = IthemalSurrogate::train(
            Microarch::Skylake,
            &train_corpus.training_pairs(Microarch::Skylake),
            ithemal_config,
        );
        EvalContext {
            scale,
            test_corpus,
            source_corpus,
            category_corpus,
            ithemal_hsw,
            ithemal_skl,
            uica_hsw: UicaSurrogate::new(Microarch::Haswell),
            uica_skl: UicaSurrogate::new(Microarch::Skylake),
            durability: Durability::default(),
        }
    }

    /// The Ithemal surrogate for a microarchitecture.
    pub fn ithemal(&self, march: Microarch) -> &IthemalSurrogate {
        match march {
            Microarch::Haswell => &self.ithemal_hsw,
            Microarch::Skylake => &self.ithemal_skl,
        }
    }

    /// The uiCA surrogate for a microarchitecture.
    pub fn uica(&self, march: Microarch) -> &UicaSurrogate {
        match march {
            Microarch::Haswell => &self.uica_hsw,
            Microarch::Skylake => &self.uica_skl,
        }
    }
}
