//! Shared experiment machinery plus the paper's Table 2 and Table 3.

use std::fmt;

use comet_bhive::BhiveBlock;
use comet_core::{
    ground_truth, is_accurate, BaselineContext, BatchExec, ExplainConfig, ExplainError, Explainer,
    Explanation, FeatureSet,
};
use comet_isa::{BasicBlock, Microarch};
use comet_models::{mean_std, CachedModel, CostModel, CrudeModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::{Durability, EvalContext};
use crate::journal::{fingerprint, Journal, JournalError, JournalRecord};
use crate::par::{par_map_cancellable, ParPanic};
use crate::report::{pm, Table};

/// Why one block's explanation failed.
#[derive(Debug)]
pub enum BlockFailure {
    /// The explainer returned a typed error.
    Explain(ExplainError),
    /// The worker thread panicked (caught per-item by `par_map`).
    Panic(ParPanic),
}

impl fmt::Display for BlockFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockFailure::Explain(e) => write!(f, "{e}"),
            BlockFailure::Panic(p) => write!(f, "{p}"),
        }
    }
}

impl std::error::Error for BlockFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockFailure::Explain(e) => Some(e),
            BlockFailure::Panic(p) => Some(p),
        }
    }
}

/// The fingerprint binding a journal to one run: model, config, seed,
/// and the exact block set. Any change to these invalidates resumption.
fn run_fingerprint<M: CostModel>(
    model: &M,
    blocks: &[&BasicBlock],
    config: &ExplainConfig,
    seed: u64,
) -> String {
    let config_json = serde_json::to_string(config).unwrap_or_default();
    let seed_text = seed.to_string();
    // The search-path tag invalidates journals written by earlier
    // search generations: the scalar search's RNG streams differ from
    // the batched search's counter-derived ones, and batched-v2's
    // Newton KL bound inversion can differ from v1's bisection in the
    // last ulps. Mixing such records would silently mix two different
    // (both valid) result sets. Batch and pool sizes are deliberately
    // absent — results are invariant to them. The kernel tag likewise
    // separates runs whose predictions came from different inference
    // kernel variants (scalar vs AVX2 numerics agree only to a ULP
    // bound, not bitwise).
    let search_tag = "search=batched-v2".to_string();
    let kernel_tag = format!("kernel={}", comet_nn::kernel::active().name);
    let mut parts: Vec<String> =
        vec![model.name().to_string(), config_json, seed_text, search_tag, kernel_tag];
    parts.extend(blocks.iter().map(|b| b.to_string()));
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    fingerprint(&refs)
}

/// Explain every block in parallel with deterministic per-block seeds,
/// durably and interruptibly:
///
/// * when `durability` names a journal directory, a write-ahead journal
///   at `<dir>/<key>.jsonl` is recovered first (checksums verified,
///   torn tail truncated, config fingerprint required to match) and
///   already-completed blocks are *skipped* — re-running the same
///   command resumes instead of restarting. Each newly completed block
///   is appended and fsynced as soon as it finishes;
/// * workers poll `durability.cancel` before claiming each block, so a
///   Ctrl-C drains in-flight blocks, leaves them journaled, and stops.
///
/// Returns one slot per input block, in order: `Some(Ok)` for a
/// completed explanation (recovered or fresh), `Some(Err)` for a typed
/// failure or worker panic, `None` for a block never started because
/// the run was cancelled. Per-block RNG seeds derive from the block
/// index, so resumed and uninterrupted runs produce identical results.
///
/// Explanations run on the batched anchors search
/// ([`Explainer::explain_batched`]) with `durability.batch` queries per
/// model call and `durability.search_pool` intra-explanation workers;
/// results are invariant to both knobs.
///
/// # Errors
///
/// [`JournalError::FingerprintMismatch`] when the on-disk journal was
/// written under a different (model, config, seed, block set);
/// [`JournalError::Io`] when the journal cannot be created or
/// recovered. Append failures after a block completes are reported on
/// stderr but do not fail the run (durability degrades, results don't).
pub fn try_explain_blocks_durable<M: CostModel + Sync>(
    model: &M,
    blocks: &[&BasicBlock],
    config: ExplainConfig,
    seed: u64,
    durability: &Durability,
    key: &str,
) -> Result<Vec<Option<Result<Explanation, BlockFailure>>>, JournalError> {
    let journal = match &durability.journal_dir {
        None => None,
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{key}.jsonl"));
            let fp = run_fingerprint(model, blocks, &config, seed);
            let (journal, recovery) = Journal::open_or_create(path, &fp)?;
            Some((journal, recovery))
        }
    };

    let mut slots: Vec<Option<Result<Explanation, BlockFailure>>> =
        (0..blocks.len()).map(|_| None).collect();
    if let Some((journal, recovery)) = &journal {
        let mut resumed = 0usize;
        for record in &recovery.records {
            match blocks.get(record.index) {
                Some(block) if block.to_string() == record.block && record.seed == seed => {
                    slots[record.index] = Some(Ok(record.explanation.clone()));
                    resumed += 1;
                }
                // The fingerprint should make this unreachable; recompute
                // rather than trust a record that contradicts the input.
                _ => eprintln!(
                    "warning: journal record {} does not match its block; recomputing",
                    record.index
                ),
            }
        }
        if resumed > 0 || recovery.truncated_bytes > 0 {
            eprintln!(
                "[journal] {}: resuming with {resumed}/{} blocks already complete{}",
                journal.path().display(),
                blocks.len(),
                if recovery.truncated_bytes > 0 {
                    format!(" (truncated {} bytes of torn tail)", recovery.truncated_bytes)
                } else {
                    String::new()
                },
            );
        }
    }

    let pending: Vec<usize> = (0..blocks.len()).filter(|&i| slots[i].is_none()).collect();
    let journal_writer = journal.as_ref().map(|(j, _)| j);
    let explainer = Explainer::new(model, config);
    // One BatchExec per outer worker, checked out per block. With the
    // default `search_pool == 1` the execs own no threads and the
    // checkout only routes counter updates; with a larger pool it keeps
    // each pool's `run` calls on a single outer thread at a time.
    let outer_workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(pending.len().max(1));
    let execs: Vec<std::sync::Mutex<BatchExec>> = (0..outer_workers)
        .map(|_| {
            std::sync::Mutex::new(BatchExec::new(durability.batch.max(1), durability.search_pool))
        })
        .collect();
    let outcomes = par_map_cancellable(&pending, &durability.cancel, |_, &i| {
        let exec = checkout_exec(&execs);
        let block_seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let result = explainer.explain_batched(blocks[i], block_seed, &exec);
        if let (Some(journal), Ok(explanation)) = (journal_writer, &result) {
            let record = JournalRecord {
                index: i,
                block: blocks[i].to_string(),
                seed,
                explanation: explanation.clone(),
            };
            if let Err(error) = journal.append(&record) {
                eprintln!("warning: journal append failed for block {i}: {error}");
            }
        }
        result
    });
    for (&i, outcome) in pending.iter().zip(outcomes) {
        slots[i] = outcome.map(|slot| match slot {
            Ok(Ok(explanation)) => Ok(explanation),
            Ok(Err(error)) => Err(BlockFailure::Explain(error)),
            Err(panic) => Err(BlockFailure::Panic(panic)),
        });
    }

    // Per-batch throughput summary from the explanations' own timing
    // (freshly computed only: journal-recovered records carry no
    // duration). Worker seconds, not wall clock — blocks run in
    // parallel.
    let mut fresh_blocks = 0u64;
    let mut fresh_queries = 0u64;
    let mut fresh_secs = 0.0f64;
    for &i in &pending {
        if let Some(Ok(explanation)) = &slots[i] {
            fresh_blocks += 1;
            fresh_queries += explanation.queries;
            fresh_secs += explanation.duration_secs;
        }
    }
    if fresh_blocks > 0 && fresh_secs > 0.0 {
        let batched: u64 = execs.iter().map(|slot| lock_exec(slot).queries_batched()).sum();
        let chunks: u64 = execs.iter().map(|slot| lock_exec(slot).chunks()).sum();
        let occupancy = if chunks > 0 {
            batched as f64 / (chunks * durability.batch.max(1) as u64) as f64
        } else {
            0.0
        };
        eprintln!(
            "[perf] {}: {fresh_blocks} blocks explained in {fresh_secs:.2}s worker time \
             ({fresh_queries} queries, {:.0} queries/sec; {:.1}% batched, \
             batch occupancy {occupancy:.2})",
            if key.is_empty() { "batch" } else { key },
            fresh_queries as f64 / fresh_secs,
            100.0 * batched as f64 / fresh_queries.max(1) as f64,
        );
    }
    Ok(slots)
}

/// Grab any momentarily free exec slot: with as many slots as outer
/// workers and each worker holding at most one, a free slot always
/// exists, so the scan terminates quickly.
fn checkout_exec(slots: &[std::sync::Mutex<BatchExec>]) -> std::sync::MutexGuard<'_, BatchExec> {
    loop {
        for slot in slots {
            if let Ok(guard) = slot.try_lock() {
                return guard;
            }
        }
        std::thread::yield_now();
    }
}

fn lock_exec(slot: &std::sync::Mutex<BatchExec>) -> std::sync::MutexGuard<'_, BatchExec> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Explain every block in parallel with deterministic per-block seeds,
/// returning one outcome per input block (order preserved). Neither a
/// typed explainer error nor a worker panic aborts the batch.
pub fn try_explain_blocks<M: CostModel + Sync>(
    model: &M,
    blocks: &[&BasicBlock],
    config: ExplainConfig,
    seed: u64,
) -> Vec<Result<Explanation, BlockFailure>> {
    try_explain_blocks_durable(model, blocks, config, seed, &Durability::default(), "")
        // No journal directory means no journal I/O, hence no error...
        .expect("journal-less explain cannot fail")
        .into_iter()
        // ...and an uncancelled token means every slot is filled.
        .map(|slot| slot.expect("uncancelled explain fills every slot"))
        .collect()
}

/// [`explain_blocks`] with durability: journal-recovered blocks are
/// skipped, fresh completions are journaled, cancellation drains and
/// stops. Cancelled (never-started) blocks are silently absent from
/// the result; failed blocks are reported on stderr and dropped.
///
/// # Errors
///
/// See [`try_explain_blocks_durable`].
pub fn explain_blocks_durable<M: CostModel + Sync>(
    model: &M,
    blocks: &[&BasicBlock],
    config: ExplainConfig,
    seed: u64,
    durability: &Durability,
    key: &str,
) -> Result<Vec<(usize, Explanation)>, JournalError> {
    let slots = try_explain_blocks_durable(model, blocks, config, seed, durability, key)?;
    let mut kept = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(explanation)) => kept.push((i, explanation)),
            Some(Err(failure)) => eprintln!("warning: skipping block {i}: {failure}"),
            None => {} // cancelled before this block started
        }
    }
    Ok(kept)
}

/// Skip-and-report harness entry point: failed blocks are reported on
/// stderr and dropped, and each surviving explanation is paired with
/// its original block index so callers can keep per-block metadata
/// (e.g. ground truths) aligned.
pub fn explain_blocks<M: CostModel + Sync>(
    model: &M,
    blocks: &[&BasicBlock],
    config: ExplainConfig,
    seed: u64,
) -> Vec<(usize, Explanation)> {
    let mut kept = Vec::with_capacity(blocks.len());
    for (i, outcome) in try_explain_blocks(model, blocks, config, seed).into_iter().enumerate() {
        match outcome {
            Ok(explanation) => kept.push((i, explanation)),
            Err(failure) => eprintln!("warning: skipping block {i}: {failure}"),
        }
    }
    kept
}

/// Unwrap a durable-explain result in table runners: a journal error
/// here is unrecoverable operator error (wrong `--journal` directory
/// for this configuration), so fail loudly rather than produce tables
/// from mixed results.
fn durable_or_die(
    result: Result<Vec<(usize, Explanation)>, JournalError>,
    key: &str,
) -> Vec<(usize, Explanation)> {
    result.unwrap_or_else(|error| panic!("cannot run experiment `{key}`: {error}"))
}

/// The explanation config used for the crude-model experiments at the
/// given evaluation scale.
pub fn crude_config(ctx: &EvalContext) -> ExplainConfig {
    ExplainConfig {
        coverage_samples: ctx.scale.coverage_samples,
        ..ExplainConfig::for_crude_model()
    }
}

/// The explanation config used for the practical-model experiments.
pub fn model_config(ctx: &EvalContext) -> ExplainConfig {
    ExplainConfig {
        coverage_samples: ctx.scale.coverage_samples,
        max_samples: 400,
        max_total_queries: 12_000,
        ..ExplainConfig::for_throughput_model()
    }
}

/// Accuracy of a list of explanations against ground truths, in percent.
pub fn accuracy_pct(explanations: &[FeatureSet], ground_truths: &[FeatureSet]) -> f64 {
    assert_eq!(explanations.len(), ground_truths.len());
    let hits = explanations.iter().zip(ground_truths).filter(|(e, gt)| is_accurate(e, gt)).count();
    100.0 * hits as f64 / explanations.len().max(1) as f64
}

/// Result bundle for one (march) column of Table 2.
struct Table2Column {
    random: (f64, f64),
    fixed: f64,
    comet: (f64, f64),
}

/// A filesystem-safe journal key: lowercase alphanumerics and dashes.
fn journal_key(parts: &[&str]) -> String {
    let mut key = String::new();
    for part in parts {
        if !key.is_empty() {
            key.push('-');
        }
        for c in part.chars() {
            key.push(if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' });
        }
    }
    key
}

fn table2_column(ctx: &EvalContext, march: Microarch) -> Table2Column {
    let crude = CrudeModel::new(march);
    let blocks: Vec<&BasicBlock> = ctx.test_corpus.iter().map(|b| &b.block).collect();
    let gts: Vec<FeatureSet> = blocks.iter().map(|b| ground_truth(&crude, b)).collect();
    let baseline_ctx = BaselineContext::from_ground_truths(&gts);

    let mut comet_accs = Vec::new();
    let mut random_accs = Vec::new();
    for seed in 0..ctx.scale.seeds as u64 {
        let key = journal_key(&["table2", &format!("{march:?}"), &format!("seed{seed}")]);
        let survivors = durable_or_die(
            explain_blocks_durable(
                &crude,
                &blocks,
                crude_config(ctx),
                seed + 1,
                &ctx.durability,
                &key,
            ),
            &key,
        );
        let kept_gts: Vec<FeatureSet> = survivors.iter().map(|&(i, _)| gts[i].clone()).collect();
        let sets: Vec<FeatureSet> = survivors.into_iter().map(|(_, e)| e.features).collect();
        comet_accs.push(accuracy_pct(&sets, &kept_gts));

        let mut rng = StdRng::seed_from_u64(seed + 1);
        let random_sets: Vec<FeatureSet> =
            blocks.iter().map(|b| baseline_ctx.random_explanation(b, &mut rng)).collect();
        random_accs.push(accuracy_pct(&random_sets, &gts));
    }
    let fixed_sets: Vec<FeatureSet> =
        blocks.iter().map(|b| baseline_ctx.fixed_explanation(b)).collect();
    Table2Column {
        random: mean_std(&random_accs),
        fixed: accuracy_pct(&fixed_sets, &gts),
        comet: mean_std(&comet_accs),
    }
}

/// Paper Table 2: accuracy of COMET's explanations over the crude
/// interpretable cost model C, against the random and fixed baselines.
pub fn run_table2(ctx: &EvalContext) -> Table {
    let hsw = table2_column(ctx, Microarch::Haswell);
    let skl = table2_column(ctx, Microarch::Skylake);
    let mut table = Table::new(
        "Table 2: Accuracy of COMET's explanations",
        &["Explanation", "Acc.(%) over C_HSW", "Acc.(%) over C_SKL"],
    );
    table.push_row(vec![
        "Random".into(),
        pm(hsw.random.0, hsw.random.1),
        pm(skl.random.0, skl.random.1),
    ]);
    table.push_row(vec!["Fixed".into(), format!("{:.2}", hsw.fixed), format!("{:.2}", skl.fixed)]);
    table.push_row(vec![
        "COMET".into(),
        pm(hsw.comet.0, hsw.comet.1),
        pm(skl.comet.0, skl.comet.1),
    ]);
    table
}

/// Average precision and coverage of a model's explanations over the
/// test set, per seed.
fn precision_coverage<M: CostModel + Sync>(
    ctx: &EvalContext,
    model: &M,
    label: &str,
) -> ((f64, f64), (f64, f64)) {
    let blocks: Vec<&BasicBlock> = ctx.test_corpus.iter().map(|b| &b.block).collect();
    let mut precisions = Vec::new();
    let mut coverages = Vec::new();
    for seed in 0..ctx.scale.seeds as u64 {
        let cached = CachedModel::new(model);
        let key = journal_key(&["table3", label, &format!("seed{seed}")]);
        let explanations = durable_or_die(
            explain_blocks_durable(
                &cached,
                &blocks,
                model_config(ctx),
                seed + 11,
                &ctx.durability,
                &key,
            ),
            &key,
        );
        let n = explanations.len().max(1) as f64;
        let p: f64 = explanations.iter().map(|(_, e)| e.precision).sum::<f64>() / n;
        let c: f64 = explanations.iter().map(|(_, e)| e.coverage).sum::<f64>() / n;
        precisions.push(p);
        coverages.push(c);
        let stats = cached.stats();
        eprintln!(
            "[cache] {label} seed{seed}: {:.1}% hit rate over {} queries, \
             {} entries across {}/{} shards",
            100.0 * stats.hit_rate(),
            stats.total,
            stats.entries,
            stats.occupied_shards,
            stats.shards,
        );
    }
    (mean_std(&precisions), mean_std(&coverages))
}

/// Paper Table 3: average precision and coverage of COMET's
/// explanations for Ithemal (I) and uiCA (U) on Haswell and Skylake.
pub fn run_table3(ctx: &EvalContext) -> Table {
    let mut table = Table::new(
        "Table 3: Average precision and coverage of COMET's explanations",
        &["Model", "Av. Precision", "Av. Coverage"],
    );
    let rows: [(&str, &dyn CostModelSync); 4] = [
        ("I (HSW)", &ctx.ithemal_hsw),
        ("I (SKL)", &ctx.ithemal_skl),
        ("U (HSW)", &ctx.uica_hsw),
        ("U (SKL)", &ctx.uica_skl),
    ];
    for (label, model) in rows {
        let ((p_mean, p_std), (c_mean, c_std)) = precision_coverage(ctx, &model, label);
        table.push_row(vec![
            label.into(),
            format!("{p_mean:.3} +- {p_std:.3}"),
            format!("{c_mean:.3} +- {c_std:.3}"),
        ]);
    }
    table
}

/// Object-safe alias for models usable across threads.
pub trait CostModelSync: CostModel + Sync {}

impl<M: CostModel + Sync> CostModelSync for M {}

// `dyn CostModelSync` automatically implements `CostModel` (supertrait
// object upcasting), so `&dyn CostModelSync` is usable anywhere a
// `CostModel` is expected via the reference blanket impl.

/// MAPE of a model over a partition, against the hardware labels.
pub fn partition_mape<M: CostModel>(model: &M, blocks: &[&BhiveBlock], march: Microarch) -> f64 {
    let labelled: Vec<(BasicBlock, f64)> =
        blocks.iter().map(|b| (b.block.clone(), b.throughput(march))).collect();
    comet_models::mape(model, &labelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_core::Feature;

    #[test]
    fn accuracy_pct_counts_subset_matches() {
        let mut gt = FeatureSet::new();
        gt.insert(Feature::NumInstructions);
        gt.insert(Feature::Instruction(0));
        let mut exact = FeatureSet::new();
        exact.insert(Feature::Instruction(0));
        let mut wrong = FeatureSet::new();
        wrong.insert(Feature::Instruction(1));
        let gts = vec![gt.clone(), gt];
        let explanations = vec![exact, wrong];
        assert_eq!(accuracy_pct(&explanations, &gts), 50.0);
    }

    #[test]
    fn explain_blocks_is_deterministic_and_ordered() {
        let blocks = [
            comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap(),
            comet_isa::parse_block("div rcx\nmov rbx, 1").unwrap(),
        ];
        let refs: Vec<&comet_isa::BasicBlock> = blocks.iter().collect();
        let crude = CrudeModel::new(Microarch::Haswell);
        let config = ExplainConfig {
            coverage_samples: 100,
            max_samples: 80,
            ..ExplainConfig::for_crude_model()
        };
        let a = explain_blocks(&crude, &refs, config, 7);
        let b = explain_blocks(&crude, &refs, config, 7);
        assert_eq!(a.len(), 2);
        assert_eq!((a[0].0, a[1].0), (0, 1));
        assert_eq!(a[0].1.features, b[0].1.features);
        assert_eq!(a[1].1.features, b[1].1.features);
    }

    #[test]
    fn failed_blocks_are_skipped_not_fatal() {
        struct NanOnDiv;
        impl CostModel for NanOnDiv {
            fn name(&self) -> &str {
                "nan-on-div"
            }
            fn predict(&self, block: &BasicBlock) -> f64 {
                if block.iter().any(|i| i.opcode == comet_isa::Opcode::Div) {
                    f64::NAN
                } else {
                    block.len() as f64
                }
            }
        }
        let blocks = [
            comet_isa::parse_block("add rcx, rax\nmov rdx, rcx").unwrap(),
            comet_isa::parse_block("div rcx\nmov rbx, 1").unwrap(),
        ];
        let refs: Vec<&comet_isa::BasicBlock> = blocks.iter().collect();
        // Block 1 contains the div, so its *initial* prediction is NaN
        // and the explainer fails it with a typed error; block 0 is
        // unaffected.
        let config = ExplainConfig {
            coverage_samples: 100,
            max_samples: 80,
            ..ExplainConfig::for_crude_model()
        };
        let outcomes = try_explain_blocks(&NanOnDiv, &refs, config, 7);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].is_ok());
        assert!(matches!(outcomes[1], Err(BlockFailure::Explain(ExplainError::Model(_)))));
        let survivors = explain_blocks(&NanOnDiv, &refs, config, 7);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].0, 0);
    }

    #[test]
    fn partition_mape_zero_for_oracle() {
        let corpus = comet_bhive::Corpus::generate(5, comet_bhive::GenConfig::default(), 3);
        let blocks: Vec<&BhiveBlock> = corpus.iter().collect();
        let oracle = comet_models::HardwareOracle::new(Microarch::Haswell);
        assert_eq!(partition_mape(&oracle, &blocks, Microarch::Haswell), 0.0);
    }
}
