//! Plain-text/markdown table rendering for experiment reports.

use std::fmt;

/// A titled table with aligned text rendering (also valid markdown).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Format `mean ± std` with two decimals.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2} +- {std:.2}")
}

/// Format a percentage with two decimals.
pub fn pct(value: f64) -> String {
    format!("{value:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_table() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.push_row(vec!["x".into(), "yyyy".into()]);
        let text = t.to_string();
        assert!(text.contains("### Demo"));
        assert!(text.contains("| x | yyyy |"));
        assert!(text.contains("|---"));
        assert_eq!(t.cell(0, 1), "yyyy");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_misshapen_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pm(96.9, 0.92), "96.90 +- 0.92");
        assert_eq!(pct(12.345), "12.35%");
    }
}
