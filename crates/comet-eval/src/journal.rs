//! Crash-safe, resumable evaluation runs: a write-ahead result journal.
//!
//! COMET's headline experiments sweep a beam search over an entire
//! corpus; at paper scale that is hours of compute, and a single crash,
//! OOM-kill, or Ctrl-C used to discard every finished explanation. The
//! journal makes per-block results durable:
//!
//! * **Write-ahead append** — as each block's explanation completes,
//!   one checksummed JSONL record ([`JournalRecord`]: block index,
//!   canonical block text, seed, full [`Explanation`] including
//!   diagnostics) is appended, flushed, and fsynced before the run
//!   moves on. A crash loses at most the blocks still in flight.
//! * **Torn-tail recovery** — on startup the journal is re-read,
//!   verifying the per-record FNV-1a checksum; the first torn or
//!   garbled line (the classic crash artifact: a partially flushed
//!   tail) and everything after it is truncated away via an atomic
//!   tmp-file + fsync + rename rewrite, leaving exactly the prefix of
//!   intact records.
//! * **Config fingerprint** — the header line binds the journal to a
//!   fingerprint of (model, config, seed, block set). Re-running with a
//!   different configuration refuses to resume
//!   ([`JournalError::FingerprintMismatch`]) instead of silently mixing
//!   incompatible results.
//!
//! The experiment harness
//! ([`try_explain_blocks_durable`](crate::experiments::try_explain_blocks_durable))
//! recovers the journal before dispatching work and skips
//! already-completed blocks, so re-running the same `comet-eval`
//! command resumes instead of restarting. Because per-block RNG seeds
//! are derived from the block index, a resumed run is byte-identical
//! to an uninterrupted one.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use comet_core::Explanation;
use serde::{Deserialize, Serialize};

/// Magic tag opening every journal header line (format version 1).
const MAGIC: &str = "COMETJ1";

/// One durable result: everything needed to skip this block on resume
/// and still reproduce the uninterrupted run's output exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Index of the block in the run's block list.
    pub index: usize,
    /// Canonical text of the block (blocks print canonically), used to
    /// cross-check that a recovered record still describes the same
    /// input.
    pub block: String,
    /// The run seed the explanation was computed under.
    pub seed: u64,
    /// The completed explanation, diagnostics included.
    pub explanation: Explanation,
}

/// Why a journal could not be created, appended to, or recovered.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A record failed to (de)serialize.
    Format(serde_json::Error),
    /// The journal on disk was written under a different configuration;
    /// resuming would silently mix incompatible results, so we refuse.
    FingerprintMismatch {
        /// Fingerprint of the run being started.
        expected: String,
        /// Fingerprint recorded in the journal header.
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o failed: {e}"),
            JournalError::Format(e) => write!(f, "journal record invalid: {e}"),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal was written under a different run configuration \
                 (run fingerprint {expected}, journal fingerprint {found}); \
                 refusing to resume — delete the journal file to start fresh"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Format(e) => Some(e),
            JournalError::FingerprintMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

impl From<serde_json::Error> for JournalError {
    fn from(e: serde_json::Error) -> JournalError {
        JournalError::Format(e)
    }
}

/// What [`Journal::open_or_create`] salvaged from an existing file.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The intact records, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn/garbled tail that were truncated away (0 for a
    /// clean journal).
    pub truncated_bytes: u64,
}

/// FNV-1a 64-bit hash (dependency-free; collision resistance is ample
/// for torn-write detection, which is an integrity check, not a
/// security boundary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A fingerprint over the parts of a run's configuration that must
/// match for results to be interchangeable. Parts are length-prefixed
/// before hashing so distinct part lists cannot collide by
/// concatenation.
pub fn fingerprint(parts: &[&str]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.len().to_le_bytes().iter().chain(part.as_bytes()) {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// The write-ahead journal. Appends are internally locked, so workers
/// on multiple threads can share one `&Journal`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl Journal {
    /// Create a fresh journal at `path` (truncating any existing file)
    /// bound to `fingerprint`. The header is committed with the same
    /// atomic write discipline as recovery rewrites.
    pub fn create(path: impl Into<PathBuf>, fingerprint: &str) -> Result<Journal, JournalError> {
        let path = path.into();
        let header = format!("{MAGIC} {fingerprint}\n");
        atomic_write(&path, header.as_bytes())?;
        Journal::open_append(path)
    }

    /// Open `path` for resumption, creating it when absent:
    /// checksums are verified, a torn tail is truncated away (via an
    /// atomic rewrite of the intact prefix), and the header fingerprint
    /// is required to match.
    ///
    /// # Errors
    ///
    /// [`JournalError::FingerprintMismatch`] when the journal belongs
    /// to a different run configuration; [`JournalError::Io`] on
    /// filesystem failures.
    pub fn open_or_create(
        path: impl Into<PathBuf>,
        fingerprint: &str,
    ) -> Result<(Journal, Recovery), JournalError> {
        let path = path.into();
        if !path.exists() {
            return Ok((Journal::create(path, fingerprint)?, Recovery::default()));
        }
        let bytes = fs::read(&path)?;
        let scan = scan(&bytes);
        match &scan.header_fingerprint {
            // An unreadable header means nothing in the file can be
            // trusted; start the journal over (zero intact records).
            None => return Ok((Journal::create(path, fingerprint)?, Recovery::default())),
            Some(found) if found != fingerprint => {
                return Err(JournalError::FingerprintMismatch {
                    expected: fingerprint.to_string(),
                    found: found.clone(),
                })
            }
            Some(_) => {}
        }
        let truncated_bytes = (bytes.len() - scan.intact_len) as u64;
        if truncated_bytes > 0 {
            // Truncate the torn tail atomically: rewrite the intact
            // prefix to a tmp sibling, fsync, rename into place.
            atomic_write(&path, &bytes[..scan.intact_len])?;
        }
        let records = scan
            .records
            .into_iter()
            .map(|json| serde_json::from_str::<JournalRecord>(&json).map_err(JournalError::from))
            .collect::<Result<Vec<_>, _>>()?;
        let journal = Journal::open_append(path)?;
        Ok((journal, Recovery { records, truncated_bytes }))
    }

    fn open_append(path: PathBuf) -> Result<Journal, JournalError> {
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { path, writer: Mutex::new(BufWriter::new(file)) })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record write-ahead: serialized, checksummed, flushed,
    /// and fsynced before returning, so a completed block survives any
    /// subsequent crash. Explanations take seconds to minutes each, so
    /// the per-record fsync is noise.
    pub fn append(&self, record: &JournalRecord) -> Result<(), JournalError> {
        let json = serde_json::to_string(record)?;
        let line = format!("{:016x} {json}\n", fnv1a64(json.as_bytes()));
        let mut writer = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        writer.write_all(line.as_bytes())?;
        writer.flush()?;
        writer.get_ref().sync_data()?;
        Ok(())
    }
}

/// What a byte-level scan of a journal file found.
struct Scan {
    /// The header fingerprint, when the header line is intact.
    header_fingerprint: Option<String>,
    /// JSON payloads of the intact records, in order.
    records: Vec<String>,
    /// Length of the intact prefix (header + intact records) in bytes.
    intact_len: usize,
}

/// Walk the file line by line, stopping at the first line that is torn
/// (no trailing newline), garbled (bad shape), or checksum-mismatched.
/// Everything before that point is the recoverable prefix.
fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut header_fingerprint = None;
    let mut offset = 0;
    let mut first = true;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: line never finished
        };
        let line = &bytes[offset..offset + nl];
        if first {
            match parse_header(line) {
                Some(fp) => header_fingerprint = Some(fp),
                None => break,
            }
            first = false;
        } else {
            match parse_record_line(line) {
                Some(json) => records.push(json),
                None => break,
            }
        }
        offset += nl + 1;
    }
    Scan { header_fingerprint, records, intact_len: offset }
}

/// Parse `COMETJ1 <fingerprint>`.
fn parse_header(line: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(line).ok()?;
    let rest = text.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    (!rest.is_empty() && rest.chars().all(|c| c.is_ascii_hexdigit())).then(|| rest.to_string())
}

/// Parse and verify `<16-hex-digit checksum> <json>`; returns the JSON
/// payload only when the checksum matches the payload bytes exactly.
fn parse_record_line(line: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(line).ok()?;
    let (checksum, json) = text.split_once(' ')?;
    let expected = u64::from_str_radix(checksum, 16).ok()?;
    (checksum.len() == 16 && fnv1a64(json.as_bytes()) == expected).then(|| json.to_string())
}

/// `*.tmp` sibling + write + fsync + rename + parent-dir fsync: the
/// destination is never observable in a torn state. Public because the
/// precomputed explanation store (`comet-store`) publishes its columnar
/// files with the same discipline.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        #[cfg(unix)]
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            if let Ok(handle) = File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_core::FeatureSet;

    fn record(index: usize) -> JournalRecord {
        JournalRecord {
            index,
            block: format!("add rcx, rax ; block {index}"),
            seed: 7,
            explanation: Explanation {
                features: FeatureSet::new(),
                precision: 0.25 * index as f64,
                coverage: 0.5,
                prediction: 2.0 + index as f64,
                anchored: true,
                queries: 10 * index as u64,
                faults: 0,
                retries: 0,
                degraded: false,
                duration_secs: 0.0,
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("comet-journal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_and_recover_round_trips() {
        let path = temp_path("roundtrip");
        let fp = fingerprint(&["model", "config"]);
        {
            let journal = Journal::create(&path, &fp).unwrap();
            for i in 0..5 {
                journal.append(&record(i)).unwrap();
            }
        }
        let (_journal, recovery) = Journal::open_or_create(&path, &fp).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.records.len(), 5);
        for (i, rec) in recovery.records.iter().enumerate() {
            assert_eq!(*rec, record(i));
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_appends_after_recovered_prefix() {
        let path = temp_path("resume-append");
        let fp = fingerprint(&["x"]);
        {
            let journal = Journal::create(&path, &fp).unwrap();
            journal.append(&record(0)).unwrap();
        }
        {
            let (journal, recovery) = Journal::open_or_create(&path, &fp).unwrap();
            assert_eq!(recovery.records.len(), 1);
            journal.append(&record(1)).unwrap();
        }
        let (_j, recovery) = Journal::open_or_create(&path, &fp).unwrap();
        assert_eq!(recovery.records.len(), 2);
        assert_eq!(recovery.records[1], record(1));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_intact_prefix() {
        let path = temp_path("torn");
        let fp = fingerprint(&["x"]);
        {
            let journal = Journal::create(&path, &fp).unwrap();
            for i in 0..3 {
                journal.append(&record(i)).unwrap();
            }
        }
        // Simulate a crash mid-append: chop the last record in half.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        let (_j, recovery) = Journal::open_or_create(&path, &fp).unwrap();
        assert_eq!(recovery.records.len(), 2);
        assert!(recovery.truncated_bytes > 0);
        // The rewrite is durable: a second recovery sees a clean file.
        let (_j2, again) = Journal::open_or_create(&path, &fp).unwrap();
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.truncated_bytes, 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bitflip_in_a_record_stops_recovery_at_the_flip() {
        let path = temp_path("bitflip");
        let fp = fingerprint(&["x"]);
        {
            let journal = Journal::create(&path, &fp).unwrap();
            for i in 0..4 {
                journal.append(&record(i)).unwrap();
            }
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside record 2's JSON payload (not its newline).
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(bytes.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i + 1))
            .collect();
        let target = line_starts[3] + 30; // header is line 0
        bytes[target] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let (_j, recovery) = Journal::open_or_create(&path, &fp).unwrap();
        assert_eq!(recovery.records.len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_refuses_to_resume() {
        let path = temp_path("mismatch");
        {
            let journal = Journal::create(&path, &fingerprint(&["run-a"])).unwrap();
            journal.append(&record(0)).unwrap();
        }
        match Journal::open_or_create(&path, &fingerprint(&["run-b"])) {
            Err(JournalError::FingerprintMismatch { expected, found }) => {
                assert_eq!(expected, fingerprint(&["run-b"]));
                assert_eq!(found, fingerprint(&["run-a"]));
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        // The journal was not clobbered by the refusal.
        let (_j, recovery) = Journal::open_or_create(&path, &fingerprint(&["run-a"])).unwrap();
        assert_eq!(recovery.records.len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbled_header_restarts_the_journal() {
        let path = temp_path("garbled-header");
        fs::write(&path, "what even is this file\n").unwrap();
        let fp = fingerprint(&["x"]);
        let (journal, recovery) = Journal::open_or_create(&path, &fp).unwrap();
        assert!(recovery.records.is_empty());
        journal.append(&record(0)).unwrap();
        drop(journal);
        let (_j, again) = Journal::open_or_create(&path, &fp).unwrap();
        assert_eq!(again.records.len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprints_are_order_and_boundary_sensitive() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["a", "b"]), fingerprint(&["b", "a"]));
        assert_eq!(fingerprint(&["a", "b"]), fingerprint(&["a", "b"]));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
