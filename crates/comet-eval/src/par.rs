//! A minimal scoped-thread parallel map for embarrassingly parallel
//! per-block work (explanations are independent given per-item RNG
//! seeds).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` using all available cores, preserving order.
///
/// `f` receives `(index, item)` so callers can derive deterministic
/// per-item RNG seeds.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(i, &items[i]);
                *results[i].lock().expect("result slot") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| (i as u64) * 1000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn handles_empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = par_map(&items, |_, &x| x);
        assert!(out.is_empty());
    }
}
