//! A minimal scoped-thread parallel map for embarrassingly parallel
//! per-block work (explanations are independent given per-item RNG
//! seeds), hardened against panicking workers: a panic in one item is
//! caught and reported as that item's [`ParPanic`] error, and every
//! sibling item still completes.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use comet_models::panic_payload_message;

/// One item's worker panicked; siblings were unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParPanic {
    /// Index of the failing item in the input slice.
    pub index: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for ParPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked on item {}: {}", self.index, self.message)
    }
}

impl std::error::Error for ParPanic {}

/// Map `f` over `items` using all available cores, preserving order.
///
/// `f` receives `(index, item)` so callers can derive deterministic
/// per-item RNG seeds. Each item's call is isolated with
/// `catch_unwind`: a panicking item yields `Err(ParPanic)` in its slot
/// while the remaining items are still processed (no worker dies, no
/// sibling result is lost).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ParPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<R, ParPanic>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(
                    |payload| ParPanic { index: i, message: panic_payload_message(&*payload) },
                );
                // Slots are locked only for this store, with `f` run
                // outside and its panics caught above — recover from
                // poisoning anyway rather than compounding a failure.
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                // Invariant: the worker loop stores into every index
                // below `items.len()` exactly once before exiting.
                .expect("worker filled slot")
        })
        .collect()
}

/// `par_map` for infallible workers: unwraps every slot, panicking with
/// the first [`ParPanic`] if a worker died. Use only where a worker
/// panic is itself a bug (e.g. pure arithmetic).
pub fn par_map_strict<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, f)
        .into_iter()
        .map(|slot| match slot {
            Ok(value) => value,
            Err(panic) => panic!("{panic}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| (i as u64) * 1000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Ok((i as u64) * 1000 + i as u64));
        }
    }

    #[test]
    fn handles_empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<Result<u64, ParPanic>> = par_map(&items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_item_is_isolated() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |i, &x| {
            if i == 17 {
                panic!("boom on {i}");
            }
            x * 2
        });
        std::panic::set_hook(prev);
        for (i, v) in out.iter().enumerate() {
            if i == 17 {
                let err = v.as_ref().unwrap_err();
                assert_eq!(err.index, 17);
                assert!(err.message.contains("boom on 17"), "{}", err.message);
            } else {
                assert_eq!(*v, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn strict_map_passes_through_healthy_workers() {
        let items: Vec<u64> = (0..10).collect();
        let out = par_map_strict(&items, |_, &x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }
}
