//! A minimal scoped-thread parallel map for embarrassingly parallel
//! per-block work (explanations are independent given per-item RNG
//! seeds), hardened against panicking workers: a panic in one item is
//! caught and reported as that item's [`ParPanic`] error, and every
//! sibling item still completes.
//!
//! Long runs are also *interruptible*: [`par_map_cancellable`] takes a
//! [`CancelToken`] that workers poll cooperatively before claiming the
//! next item. Cancelling (e.g. from a Ctrl-C handler) stops new items
//! from starting while every in-flight item drains to completion, so a
//! journaling caller gets a clean flush of everything finished instead
//! of torn state.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use comet_models::panic_payload_message;

/// Re-exported from its shared home in `comet-core`: the eval binary
/// and the `comet-serve` network service use one implementation.
pub use comet_core::cancel::CancelToken;

/// One item's worker panicked; siblings were unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParPanic {
    /// Index of the failing item in the input slice.
    pub index: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for ParPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked on item {}: {}", self.index, self.message)
    }
}

impl std::error::Error for ParPanic {}

/// Map `f` over `items` using all available cores, preserving order.
///
/// `f` receives `(index, item)` so callers can derive deterministic
/// per-item RNG seeds. Each item's call is isolated with
/// `catch_unwind`: a panicking item yields `Err(ParPanic)` in its slot
/// while the remaining items are still processed (no worker dies, no
/// sibling result is lost).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ParPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_cancellable(items, &CancelToken::new(), f)
        .into_iter()
        // Invariant: with a never-cancelled token every slot is filled.
        .map(|slot| slot.expect("uncancelled par_map filled every slot"))
        .collect()
}

/// [`par_map`] with cooperative cancellation: workers poll `cancel`
/// before claiming each item, so after cancellation no *new* item
/// starts while in-flight items drain to completion. Unstarted items
/// yield `None` in their slots (started items yield `Some` as usual).
pub fn par_map_cancellable<T, R, F>(
    items: &[T],
    cancel: &CancelToken,
    f: F,
) -> Vec<Option<Result<R, ParPanic>>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<R, ParPanic>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if cancel.poll() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| {
                    ParPanic { index: i, message: panic_payload_message(&*payload) }
                });
                // Slots are locked only for this store, with `f` run
                // outside and its panics caught above — recover from
                // poisoning anyway rather than compounding a failure.
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
            });
        }
    });
    results.into_iter().map(|slot| slot.into_inner().unwrap_or_else(|p| p.into_inner())).collect()
}

/// `par_map` for infallible workers: unwraps every slot, panicking with
/// the first [`ParPanic`] if a worker died. Use only where a worker
/// panic is itself a bug (e.g. pure arithmetic).
pub fn par_map_strict<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, f)
        .into_iter()
        .map(|slot| match slot {
            Ok(value) => value,
            Err(panic) => panic!("{panic}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| (i as u64) * 1000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Ok((i as u64) * 1000 + i as u64));
        }
    }

    #[test]
    fn handles_empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<Result<u64, ParPanic>> = par_map(&items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_item_is_isolated() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |i, &x| {
            if i == 17 {
                panic!("boom on {i}");
            }
            x * 2
        });
        std::panic::set_hook(prev);
        for (i, v) in out.iter().enumerate() {
            if i == 17 {
                let err = v.as_ref().unwrap_err();
                assert_eq!(err.index, 17);
                assert!(err.message.contains("boom on 17"), "{}", err.message);
            } else {
                assert_eq!(*v, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn strict_map_passes_through_healthy_workers() {
        let items: Vec<u64> = (0..10).collect();
        let out = par_map_strict(&items, |_, &x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn pre_cancelled_token_runs_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u64> = (0..20).collect();
        let out = par_map_cancellable(&items, &token, |_, &x| x);
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|slot| slot.is_none()));
    }

    #[test]
    fn cancellation_mid_run_drains_started_items() {
        let items: Vec<u64> = (0..200).collect();
        let token = CancelToken::after_polls(10);
        let out = par_map_cancellable(&items, &token, |_, &x| x * 2);
        assert!(token.is_cancelled());
        assert_eq!(out.len(), 200);
        let done = out.iter().flatten().count();
        // Strictly fewer than all items ran, and every completed slot
        // holds the right answer.
        assert!(done < 200, "expected an interrupted run, all items completed");
        for (i, slot) in out.iter().enumerate() {
            if let Some(result) = slot {
                assert_eq!(*result, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn uncancelled_token_is_transparent() {
        let items: Vec<u64> = (0..30).collect();
        let token = CancelToken::new();
        let out = par_map_cancellable(&items, &token, |_, &x| x + 7);
        assert!(out.iter().enumerate().all(|(i, slot)| *slot == Some(Ok(i as u64 + 7))));
        assert!(!token.is_cancelled());
    }
}
