//! Re-exported from its shared home in `comet-core`: the eval binary,
//! the explainer's intra-explanation fan-out, and the `comet-serve`
//! network service all use one implementation (hoisted there so the
//! batched anchors search can reuse the panic-isolation and
//! cancellation machinery without a dependency cycle).

pub use comet_core::cancel::CancelToken;
pub use comet_core::par::{par_map, par_map_cancellable, par_map_strict, ParPanic};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| (i as u64) * 1000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Ok((i as u64) * 1000 + i as u64));
        }
    }

    #[test]
    fn handles_empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<Result<u64, ParPanic>> = par_map(&items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn strict_map_passes_through_healthy_workers() {
        let items: Vec<u64> = (0..10).collect();
        let out = par_map_strict(&items, |_, &x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn pre_cancelled_token_runs_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u64> = (0..20).collect();
        let out = par_map_cancellable(&items, &token, |_, &x| x);
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|slot| slot.is_none()));
    }

    #[test]
    fn cancellation_mid_run_drains_started_items() {
        let items: Vec<u64> = (0..200).collect();
        let token = CancelToken::after_polls(10);
        let out = par_map_cancellable(&items, &token, |_, &x| x * 2);
        assert!(token.is_cancelled());
        assert_eq!(out.len(), 200);
        let done = out.iter().flatten().count();
        // Strictly fewer than all items ran, and every completed slot
        // holds the right answer.
        assert!(done < 200, "expected an interrupted run, all items completed");
        for (i, slot) in out.iter().enumerate() {
            if let Some(result) = slot {
                assert_eq!(*result, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn uncancelled_token_is_transparent() {
        let items: Vec<u64> = (0..30).collect();
        let token = CancelToken::new();
        let out = par_map_cancellable(&items, &token, |_, &x| x + 7);
        assert!(out.iter().enumerate().all(|(i, slot)| *slot == Some(Ok(i as u64 + 7))));
        assert!(!token.is_cancelled());
    }
}
