//! Appendix E ablations (Figures 5–8): sensitivity of explanation
//! accuracy to COMET's hyperparameters, measured against the crude
//! model's ground truth on Haswell.

use comet_core::{ground_truth, ExplainConfig, FeatureSet, PerturbConfig, ReplacementScheme};
use comet_isa::{BasicBlock, Microarch};
use comet_models::{mean_std, CrudeModel};

use crate::context::EvalContext;
use crate::experiments::{accuracy_pct, crude_config, explain_blocks};
use crate::report::{pm, Table};

struct AblationSetup<'a> {
    crude: CrudeModel,
    blocks: Vec<&'a BasicBlock>,
    gts: Vec<FeatureSet>,
    seeds: u64,
}

fn setup(ctx: &EvalContext) -> AblationSetup<'_> {
    let crude = CrudeModel::new(Microarch::Haswell);
    let blocks: Vec<&BasicBlock> =
        ctx.test_corpus.iter().take(ctx.scale.ablation_blocks).map(|b| &b.block).collect();
    let gts: Vec<FeatureSet> = blocks.iter().map(|b| ground_truth(&crude, b)).collect();
    AblationSetup { crude, blocks, gts, seeds: ctx.scale.seeds.min(3) as u64 }
}

/// Accuracy (mean ± std over seeds) for one configuration, plus the
/// mean explanation precision.
fn run_config(s: &AblationSetup<'_>, config: ExplainConfig) -> ((f64, f64), f64) {
    let mut accs = Vec::new();
    let mut precisions = Vec::new();
    for seed in 0..s.seeds {
        let survivors = explain_blocks(&s.crude, &s.blocks, config, 1000 + seed);
        let n = survivors.len().max(1) as f64;
        precisions.push(survivors.iter().map(|(_, e)| e.precision).sum::<f64>() / n);
        let kept_gts: Vec<FeatureSet> = survivors.iter().map(|&(i, _)| s.gts[i].clone()).collect();
        let sets: Vec<FeatureSet> = survivors.into_iter().map(|(_, e)| e.features).collect();
        accs.push(accuracy_pct(&sets, &kept_gts));
    }
    (mean_std(&accs), precisions.iter().sum::<f64>() / precisions.len() as f64)
}

/// Figure 5: accuracy vs the precision threshold (1 − δ). The paper
/// finds 0.7 the best high threshold.
pub fn run_figure5(ctx: &EvalContext) -> Table {
    let s = setup(ctx);
    let mut table = Table::new(
        "Figure 5: Accuracy vs precision threshold (crude model, HSW)",
        &["Threshold (1-delta)", "Accuracy (%)"],
    );
    for threshold in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let config = ExplainConfig { delta: 1.0 - threshold, ..crude_config(ctx) };
        let ((mean, std), _) = run_config(&s, config);
        table.push_row(vec![format!("{threshold:.1}"), pm(mean, std)]);
    }
    table
}

/// Figure 6: accuracy vs the instruction-deletion probability `p_del`.
/// The paper selects 0.33.
pub fn run_figure6(ctx: &EvalContext) -> Table {
    let s = setup(ctx);
    let mut table = Table::new(
        "Figure 6: Accuracy vs instruction deletion probability (crude model, HSW)",
        &["p_del", "Accuracy (%)"],
    );
    for p_delete in [0.0, 0.2, 0.33, 0.5, 0.75] {
        let base = crude_config(ctx);
        let config = ExplainConfig { perturb: PerturbConfig { p_delete, ..base.perturb }, ..base };
        let ((mean, std), _) = run_config(&s, config);
        table.push_row(vec![format!("{p_delete:.2}"), pm(mean, std)]);
    }
    table
}

/// Figure 7: accuracy and precision vs the explicit data-dependency
/// retention probability. The paper selects 0.1.
pub fn run_figure7(ctx: &EvalContext) -> Table {
    let s = setup(ctx);
    let mut table = Table::new(
        "Figure 7: Accuracy and precision vs explicit dependency retention (crude model, HSW)",
        &["p_dep_retain", "Accuracy (%)", "Av. precision"],
    );
    for p_dep_retain in [0.0, 0.1, 0.25, 0.5, 0.75] {
        let base = crude_config(ctx);
        let config =
            ExplainConfig { perturb: PerturbConfig { p_dep_retain, ..base.perturb }, ..base };
        let ((mean, std), precision) = run_config(&s, config);
        table.push_row(vec![
            format!("{p_dep_retain:.2}"),
            pm(mean, std),
            format!("{precision:.3}"),
        ]);
    }
    table
}

/// Figure 8: opcode-only vs whole-instruction replacement schemes. The
/// paper finds opcode-only more accurate.
pub fn run_figure8(ctx: &EvalContext) -> Table {
    let s = setup(ctx);
    let mut table = Table::new(
        "Figure 8: Accuracy by instruction replacement scheme (crude model, HSW)",
        &["Scheme", "Accuracy (%)"],
    );
    for (label, scheme) in [
        ("Opcode-only", ReplacementScheme::OpcodeOnly),
        ("Whole instruction", ReplacementScheme::WholeInstruction),
    ] {
        let base = crude_config(ctx);
        let config = ExplainConfig { perturb: PerturbConfig { scheme, ..base.perturb }, ..base };
        let ((mean, std), _) = run_config(&s, config);
        table.push_row(vec![label.into(), pm(mean, std)]);
    }
    table
}
