//! Inspect crude-model explanations against analytical ground truth on
//! a small corpus — the fastest way to eyeball COMET's behaviour when
//! tuning perturbation or search parameters.
//!
//! ```text
//! cargo run --release -p comet-eval --bin inspect_explanations
//! ```

use comet_bhive::{Corpus, GenConfig};
use comet_core::{format_feature_set, ground_truth, ExplainConfig, Explainer};
use comet_isa::Microarch;
use comet_models::{CostModel, CrudeModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let corpus = Corpus::generate(10, GenConfig::default(), 0xB10C5);
    let crude = CrudeModel::new(Microarch::Haswell);
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    let explainer = Explainer::new(crude, config);
    for (i, entry) in corpus.iter().enumerate() {
        let gt = ground_truth(&crude, &entry.block);
        let mut rng = StdRng::seed_from_u64(i as u64);
        println!("=== block {i} (C = {:.2})", crude.predict(&entry.block));
        println!("{}", entry.block);
        println!("GT       : {}", format_feature_set(&gt));
        match explainer.explain(&entry.block, &mut rng) {
            Ok(e) => println!(
                "COMET    : {} (prec {:.2}, anchored {}, cov {:.2})",
                e.display_features(),
                e.precision,
                e.anchored,
                e.coverage
            ),
            Err(error) => println!("COMET    : failed ({error})"),
        }
        println!();
    }
}
