//! Measure per-query and end-to-end explanation latency for each cost
//! model — useful when sizing experiment scales for a machine.
//!
//! ```text
//! cargo run --release -p comet-eval --bin profile_models
//! ```

use std::time::Instant;

use comet_bhive::{Corpus, GenConfig};
use comet_core::{ExplainConfig, Explainer};
use comet_isa::Microarch;
use comet_models::{
    CachedModel, CostModel, CrudeModel, IthemalConfig, IthemalSurrogate, UicaSurrogate,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let corpus = Corpus::generate(6, GenConfig::default(), 1);
    let train = Corpus::generate(300, GenConfig::default(), 2);
    let march = Microarch::Haswell;
    let t = Instant::now();
    let ithemal = IthemalSurrogate::train(
        march,
        &train.training_pairs(march),
        IthemalConfig { epochs: 2, ..Default::default() },
    );
    println!("train 300x2: {:?}", t.elapsed());
    let uica = UicaSurrogate::new(march);
    let crude = CrudeModel::new(march);
    let block = &corpus.blocks()[0].block;

    for (name, model) in
        [("ithemal", &ithemal as &dyn CostModel), ("uica", &uica), ("crude", &crude)]
    {
        let t = Instant::now();
        let mut acc = 0.0;
        for _ in 0..1000 {
            acc += model.predict(block);
        }
        println!("{name}: {:.1}us/query (acc {acc:.0})", t.elapsed().as_secs_f64() * 1e3);
    }

    let config = ExplainConfig { coverage_samples: 600, ..ExplainConfig::for_throughput_model() };
    for (name, model) in [("ithemal", &ithemal as &dyn CostModel), ("uica", &uica)] {
        let cached = CachedModel::new(model);
        let explainer = Explainer::new(&cached, config);
        let t = Instant::now();
        let mut rng = StdRng::seed_from_u64(0);
        let e = explainer.explain(block, &mut rng).expect("surrogate models predict finite costs");
        let stats = cached.stats();
        println!(
            "{name} explain: {:?}, queries {} (cache hits {})",
            t.elapsed(),
            e.queries,
            stats.hits
        );
    }
}
