//! Appendix F space-size estimates and the §6.4 case studies.

use comet_core::{space, ExplainConfig, Explainer, Feature, FeatureSet};
use comet_isa::{parse_block, Microarch};
use comet_models::{CachedModel, CostModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::EvalContext;
use crate::report::Table;

/// Paper Appendix F, Listing 4 (β1).
pub const BETA1: &str = "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0\nvxorps xmm0, xmm0, xmm5\nvaddss xmm7, xmm7, xmm3\nvmulss xmm6, xmm6, xmm7\nvdivss xmm6, xmm3, xmm6\nvmulss xmm0, xmm6, xmm0";

/// Paper Appendix F, Listing 5 (β2).
pub const BETA2: &str = "shl eax, 3\nimul rax, r15\nxor edx, edx\nadd rax, 7\nshr rax, 3\nlea rax, [rbp + rax - 1]\ndiv rbp\nimul rax, rbp\nmov rbp, qword ptr [rsp + 8]\nsub rbp, rax";

/// Paper §6.4, Listing 2 (case study 1).
pub const CASE1: &str = "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80\nmov rsi, qword ptr [r14 + 32]\nmov rdi, rbp";

/// Paper §6.4, Listing 3 (case study 2).
pub const CASE2: &str =
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";

/// Appendix F: perturbation-space cardinalities for the paper's two
/// example blocks, with and without preserved features.
pub fn run_appendix_f() -> Table {
    let mut table = Table::new(
        "Appendix F: Perturbation-space size estimates",
        &["Block", "Preserved set", "|Pi-hat(F)| (est.)"],
    );
    let beta1 = parse_block(BETA1).expect("paper listing 4 parses");
    let beta2 = parse_block(BETA2).expect("paper listing 5 parses");
    let mut inst1 = FeatureSet::new();
    inst1.insert(Feature::Instruction(0));
    let mut inst2 = FeatureSet::new();
    inst2.insert(Feature::Instruction(1));
    let cases = [
        ("beta1", &beta1, FeatureSet::new()),
        ("beta1", &beta1, inst1),
        ("beta2", &beta2, FeatureSet::new()),
        ("beta2", &beta2, inst2),
    ];
    for (name, block, preserve) in cases {
        let log10 = space::estimate_space(block, &preserve);
        let label = if preserve.is_empty() {
            "{} (empty)".to_string()
        } else {
            comet_core::format_feature_set(&preserve)
        };
        table.push_row(vec![name.into(), label, space::format_log10(log10)]);
    }
    table
}

/// §6.4 case studies: predictions and explanations of both models for
/// the paper's two example blocks (Haswell).
pub fn run_case_studies(ctx: &EvalContext) -> Table {
    let mut table = Table::new(
        "Case studies (paper Listings 2-3, Haswell)",
        &["Case", "Model", "Prediction (cycles)", "Explanation"],
    );
    let config = ExplainConfig {
        coverage_samples: ctx.scale.coverage_samples,
        ..ExplainConfig::for_throughput_model()
    };
    for (index, (case, text)) in [("1", CASE1), ("2", CASE2)].into_iter().enumerate() {
        let block = parse_block(text).expect("paper listing parses");
        for (label, model) in [
            ("Ithemal", &ctx.ithemal_hsw as &dyn crate::experiments::CostModelSync),
            ("uiCA", &ctx.uica_hsw as &dyn crate::experiments::CostModelSync),
        ] {
            let cached = CachedModel::new(model);
            let prediction = cached.predict(&block);
            let explainer = Explainer::new(&cached, config);
            let mut rng = StdRng::seed_from_u64(0xCA5E + index as u64);
            let rendered = match explainer.explain(&block, &mut rng) {
                Ok(explanation) => explanation.display_features(),
                Err(error) => {
                    eprintln!("warning: case study {case} ({label}) failed: {error}");
                    format!("(unavailable: {error})")
                }
            };
            table.push_row(vec![case.into(), label.into(), format!("{prediction:.2}"), rendered]);
        }
    }
    table
}

/// The detailed simulator's ("hardware") throughputs for the case-study
/// blocks, for context alongside the model predictions.
pub fn case_study_hardware() -> Table {
    let mut table = Table::new(
        "Case-study hardware reference (detailed simulator, Haswell)",
        &["Case", "Throughput (cycles)"],
    );
    let oracle = comet_models::HardwareOracle::new(Microarch::Haswell);
    for (case, text) in [("1", CASE1), ("2", CASE2)] {
        let block = parse_block(text).expect("listing parses");
        table.push_row(vec![case.into(), format!("{:.2}", oracle.predict(&block))]);
    }
    table
}
