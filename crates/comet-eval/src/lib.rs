//! # comet-eval
//!
//! The experiment harness regenerating every table and figure from the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! * Table 2 — explanation accuracy vs random/fixed baselines over the
//!   crude model C;
//! * Table 3 — average precision/coverage for Ithemal and uiCA;
//! * Figures 2–4 — MAPE vs explanation-feature granularity on the full
//!   test set and the source/category partitions;
//! * Figures 5–8 — Appendix E hyperparameter ablations;
//! * Appendix F — perturbation-space size estimates;
//! * §6.4 — the two case studies.
//!
//! Run everything with the `comet-eval` binary:
//!
//! ```text
//! comet-eval --scale standard --exp all --out EXPERIMENTS-results.md
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod context;
pub mod experiments;
pub mod extras;
pub mod figures;
pub mod par;
pub mod report;

pub use context::{EvalContext, Scale};
