//! # comet-eval
//!
//! The experiment harness regenerating every table and figure from the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! * Table 2 — explanation accuracy vs random/fixed baselines over the
//!   crude model C;
//! * Table 3 — average precision/coverage for Ithemal and uiCA;
//! * Figures 2–4 — MAPE vs explanation-feature granularity on the full
//!   test set and the source/category partitions;
//! * Figures 5–8 — Appendix E hyperparameter ablations;
//! * Appendix F — perturbation-space size estimates;
//! * §6.4 — the two case studies.
//!
//! Run everything with the `comet-eval` binary:
//!
//! ```text
//! comet-eval --scale standard --exp all --out EXPERIMENTS-results.md
//! ```
//!
//! Long runs are crash-safe and resumable: pass `--journal DIR` to
//! append each completed block explanation to a checksummed
//! write-ahead journal (see [`journal`]). Interrupting the run
//! (Ctrl-C drains in-flight blocks and flushes) and re-running the
//! same command resumes from the journal, skipping completed blocks,
//! and produces output identical to an uninterrupted run.

#![warn(missing_docs)]

pub mod ablations;
pub mod context;
pub mod experiments;
pub mod extras;
pub mod figures;
pub mod journal;
pub mod par;
pub mod report;

pub use context::{Durability, EvalContext, Scale};
pub use par::CancelToken;
