//! Figures 2–4: the inverse correlation between model error (MAPE) and
//! the granularity of block features in COMET's explanations.

use comet_bhive::{BhiveBlock, Category, Source};
use comet_core::{Explanation, FeatureKind};
use comet_isa::{BasicBlock, Microarch};
use comet_models::CachedModel;

use crate::context::EvalContext;
use crate::experiments::{explain_blocks, model_config, partition_mape, CostModelSync};
use crate::report::{pct, Table};

/// Fraction of explanations containing at least one feature of each
/// kind, in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureMix {
    /// % of explanations containing η.
    pub eta: f64,
    /// % of explanations containing a specific instruction.
    pub inst: f64,
    /// % of explanations containing a data dependency.
    pub dep: f64,
}

/// Compute the feature-kind mix of a batch of explanations.
pub fn feature_mix(explanations: &[Explanation]) -> FeatureMix {
    let count = |kind: FeatureKind| {
        let hits =
            explanations.iter().filter(|e| e.features.iter().any(|f| f.kind() == kind)).count();
        100.0 * hits as f64 / explanations.len().max(1) as f64
    };
    FeatureMix {
        eta: count(FeatureKind::Eta),
        inst: count(FeatureKind::Inst),
        dep: count(FeatureKind::Dep),
    }
}

/// One figure row: a model evaluated on a partition.
pub struct PartitionResult {
    /// Model label ("Ithemal" / "uiCA").
    pub model: String,
    /// Mean absolute percentage error on the partition.
    pub mape: f64,
    /// Explanation feature mix on the partition.
    pub mix: FeatureMix,
}

/// Evaluate both models (Ithemal and uiCA surrogates) on a partition of
/// blocks for one microarchitecture.
pub fn evaluate_partition(
    ctx: &EvalContext,
    blocks: &[&BhiveBlock],
    march: Microarch,
    seed: u64,
) -> Vec<PartitionResult> {
    let plain: Vec<&BasicBlock> = blocks.iter().map(|b| &b.block).collect();
    let models: [(&str, &dyn CostModelSync); 2] =
        [("Ithemal", ctx.ithemal(march)), ("uiCA", ctx.uica(march))];
    let mut results = Vec::new();
    for (label, model) in models {
        let mape = partition_mape(&model, blocks, march);
        let cached = CachedModel::new(model);
        let explanations: Vec<Explanation> =
            explain_blocks(&cached, &plain, model_config(ctx), seed)
                .into_iter()
                .map(|(_, e)| e)
                .collect();
        results.push(PartitionResult {
            model: label.to_string(),
            mape,
            mix: feature_mix(&explanations),
        });
    }
    results
}

fn push_partition_rows(table: &mut Table, partition: &str, results: &[PartitionResult]) {
    for r in results {
        table.push_row(vec![
            partition.to_string(),
            r.model.clone(),
            pct(r.mape),
            pct(r.mix.eta),
            pct(r.mix.inst),
            pct(r.mix.dep),
        ]);
    }
}

const FIGURE_HEADERS: [&str; 6] =
    ["Partition", "Model", "MAPE", "% expl. with eta", "% with inst", "% with dep"];

/// Figure 2: MAPE vs explanation feature mix on the full test set, for
/// Haswell and Skylake.
pub fn run_figure2(ctx: &EvalContext) -> Table {
    let mut table =
        Table::new("Figure 2: Error vs explanation granularity (full test set)", &FIGURE_HEADERS);
    let blocks: Vec<&BhiveBlock> = ctx.test_corpus.iter().collect();
    for march in Microarch::ALL {
        let results = evaluate_partition(ctx, &blocks, march, 21 + march as u64);
        push_partition_rows(&mut table, march.abbrev(), &results);
    }
    table
}

/// Figure 3: the same analysis on the BHive source partitions
/// (Clang, OpenBLAS), on Haswell.
pub fn run_figure3(ctx: &EvalContext) -> Table {
    let mut table = Table::new(
        "Figure 3: Error vs explanation granularity by BHive source (Haswell)",
        &FIGURE_HEADERS,
    );
    for source in Source::ALL {
        let blocks = ctx.source_corpus.by_source(source);
        let results = evaluate_partition(ctx, &blocks, Microarch::Haswell, 31 + source as u64);
        push_partition_rows(&mut table, &source.to_string(), &results);
    }
    table
}

/// Figure 4: the same analysis on the six BHive category partitions,
/// on Haswell.
pub fn run_figure4(ctx: &EvalContext) -> Table {
    let mut table = Table::new(
        "Figure 4: Error vs explanation granularity by BHive category (Haswell)",
        &FIGURE_HEADERS,
    );
    for category in Category::ALL {
        let blocks = ctx.category_corpus.by_category(category);
        let results = evaluate_partition(ctx, &blocks, Microarch::Haswell, 41 + category as u64);
        push_partition_rows(&mut table, &category.to_string(), &results);
    }
    table
}

/// Extension table: model MAPE summary (Ithemal vs uiCA vs the crude
/// model) on both microarchitectures over the test set.
pub fn run_mape_table(ctx: &EvalContext) -> Table {
    let mut table =
        Table::new("Model error summary (MAPE over the test set)", &["Model", "HSW", "SKL"]);
    let blocks: Vec<&BhiveBlock> = ctx.test_corpus.iter().collect();
    let row = |label: &str, hsw: f64, skl: f64| vec![label.to_string(), pct(hsw), pct(skl)];
    table.push_row(row(
        "Ithemal (surrogate)",
        partition_mape(&ctx.ithemal_hsw, &blocks, Microarch::Haswell),
        partition_mape(&ctx.ithemal_skl, &blocks, Microarch::Skylake),
    ));
    table.push_row(row(
        "uiCA (surrogate)",
        partition_mape(&ctx.uica_hsw, &blocks, Microarch::Haswell),
        partition_mape(&ctx.uica_skl, &blocks, Microarch::Skylake),
    ));
    let coarse = comet_models::CoarseBaselineModel::new();
    table.push_row(row(
        "Coarse baseline",
        partition_mape(&coarse, &blocks, Microarch::Haswell),
        partition_mape(&coarse, &blocks, Microarch::Skylake),
    ));
    let crude_hsw = comet_models::CrudeModel::new(Microarch::Haswell);
    let crude_skl = comet_models::CrudeModel::new(Microarch::Skylake);
    table.push_row(row(
        "Crude C",
        partition_mape(&crude_hsw, &blocks, Microarch::Haswell),
        partition_mape(&crude_skl, &blocks, Microarch::Skylake),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_core::{Explanation, Feature, FeatureSet};

    fn explanation_with(features: &[Feature]) -> Explanation {
        Explanation {
            features: features.iter().copied().collect::<FeatureSet>(),
            precision: 0.8,
            coverage: 0.2,
            prediction: 1.0,
            anchored: true,
            queries: 1,
            faults: 0,
            retries: 0,
            degraded: false,
            duration_secs: 0.0,
        }
    }

    #[test]
    fn feature_mix_percentages() {
        let explanations = vec![
            explanation_with(&[Feature::NumInstructions]),
            explanation_with(&[Feature::Instruction(0), Feature::NumInstructions]),
            explanation_with(&[Feature::Instruction(1)]),
            explanation_with(&[]),
        ];
        let mix = feature_mix(&explanations);
        assert_eq!(mix.eta, 50.0);
        assert_eq!(mix.inst, 50.0);
        assert_eq!(mix.dep, 0.0);
    }

    #[test]
    fn feature_mix_of_empty_batch_is_zero() {
        let mix = feature_mix(&[]);
        assert_eq!((mix.eta, mix.inst, mix.dep), (0.0, 0.0, 0.0));
    }
}
