//! `comet-eval` — regenerate the paper's tables and figures.
//!
//! ```text
//! comet-eval [--scale quick|standard|paper] [--exp all|table2|table3|
//!             fig2|fig3|fig4|fig5|fig6|fig7|fig8|appf|cases|mape]
//!            [--out FILE]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use comet_eval::{ablations, experiments, extras, figures, EvalContext, Scale};

fn main() {
    let mut scale_name = "standard".to_string();
    let mut exp = "all".to_string();
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale_name = args.next().unwrap_or_else(|| usage("missing scale")),
            "--exp" => exp = args.next().unwrap_or_else(|| usage("missing experiment")),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage("missing output path"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let scale = match scale_name.as_str() {
        "quick" => Scale::quick(),
        "standard" => Scale::standard(),
        "paper" => Scale::paper(),
        other => usage(&format!("unknown scale `{other}`")),
    };

    let mut report = String::new();
    let _ = writeln!(report, "# COMET reproduction — experiment results\n");
    let _ = writeln!(
        report,
        "Scale: `{scale_name}` (test {} / sources {}x2 / categories {}x6 / seeds {} / coverage {}).\n",
        scale.test_blocks, scale.source_blocks, scale.category_blocks, scale.seeds,
        scale.coverage_samples
    );

    // Appendix F needs no context; run it first so `--exp appf` is instant.
    let wants = |name: &str| exp == "all" || exp == name;
    if wants("appf") {
        section(&mut report, extras::run_appendix_f().to_string());
    }
    if exp == "appf" {
        finish(&report, out.as_deref());
        return;
    }

    eprintln!("[comet-eval] building corpora and training surrogates ({scale_name} scale)...");
    let t0 = Instant::now();
    let ctx = EvalContext::build(scale);
    eprintln!("[comet-eval] context ready in {:.1}s", t0.elapsed().as_secs_f64());

    let experiments_list: [(&str, Box<dyn Fn(&EvalContext) -> comet_eval::report::Table>); 10] = [
        ("mape", Box::new(figures::run_mape_table)),
        ("table2", Box::new(experiments::run_table2)),
        ("table3", Box::new(experiments::run_table3)),
        ("fig2", Box::new(figures::run_figure2)),
        ("fig3", Box::new(figures::run_figure3)),
        ("fig4", Box::new(figures::run_figure4)),
        ("fig5", Box::new(ablations::run_figure5)),
        ("fig6", Box::new(ablations::run_figure6)),
        ("fig7", Box::new(ablations::run_figure7)),
        ("fig8", Box::new(ablations::run_figure8)),
    ];
    for (name, run) in experiments_list {
        if !wants(name) {
            continue;
        }
        eprintln!("[comet-eval] running {name}...");
        let t = Instant::now();
        let table = run(&ctx);
        eprintln!("[comet-eval] {name} done in {:.1}s", t.elapsed().as_secs_f64());
        section(&mut report, table.to_string());
    }
    if wants("cases") {
        eprintln!("[comet-eval] running case studies...");
        section(&mut report, extras::case_study_hardware().to_string());
        section(&mut report, extras::run_case_studies(&ctx).to_string());
    }

    finish(&report, out.as_deref());
}

fn section(report: &mut String, text: String) {
    let _ = writeln!(report, "{text}");
    println!("{text}");
}

fn finish(report: &str, out: Option<&str>) {
    if let Some(path) = out {
        std::fs::write(path, report).unwrap_or_else(|e| {
            eprintln!("[comet-eval] failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[comet-eval] wrote {path}");
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: comet-eval [--scale quick|standard|paper] [--exp all|table2|table3|fig2..fig8|appf|cases|mape] [--out FILE]"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
