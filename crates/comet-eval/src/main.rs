//! `comet-eval` — regenerate the paper's tables and figures.
//!
//! ```text
//! comet-eval [--scale quick|standard|paper] [--exp all|table2|table3|
//!             fig2|fig3|fig4|fig5|fig6|fig7|fig8|appf|cases|mape]
//!            [--out FILE] [--journal DIR] [--batch N] [--search-pool N]
//!            [--force-scalar]
//! ```
//!
//! `--force-scalar` pins the inference kernel to the portable scalar
//! variant (`scalar-v1`) regardless of CPU features — the knob for
//! reproducing results bit-for-bit against a machine without AVX2.
//!
//! `--batch` sets the model-query batch size of the anchors search and
//! `--search-pool` its intra-explanation worker count; results are
//! invariant to both (they only trade throughput), and the defaults
//! (16, 1) suit the block-parallel experiment runners.
//!
//! With `--journal DIR`, completed block explanations are written ahead
//! to checksummed journals under `DIR`; an interrupted run (Ctrl-C, or
//! a crash) re-run with the same command resumes where it stopped and
//! produces identical output. The first Ctrl-C cancels cooperatively
//! (in-flight blocks drain and are journaled); a second aborts at once.

use std::fmt::Write as _;
use std::time::Instant;

use comet_core::cancel::install_sigint;
use comet_eval::{
    ablations, experiments, extras, figures, CancelToken, Durability, EvalContext, Scale,
};

/// Process exit status for an interrupted (SIGINT) run, shell-style.
const SIGINT_EXIT: i32 = 130;

fn main() {
    let mut scale_name = "standard".to_string();
    let mut exp = "all".to_string();
    let mut out: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let defaults = Durability::default();
    let mut batch = defaults.batch;
    let mut search_pool = defaults.search_pool;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale_name = args.next().unwrap_or_else(|| usage("missing scale")),
            "--exp" => exp = args.next().unwrap_or_else(|| usage("missing experiment")),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage("missing output path"))),
            "--journal" => {
                journal_dir = Some(args.next().unwrap_or_else(|| usage("missing journal dir")))
            }
            "--batch" => batch = parse_knob(args.next(), "--batch"),
            "--search-pool" => search_pool = parse_knob(args.next(), "--search-pool"),
            "--force-scalar" => {
                let _ = comet_nn::kernel::force_scalar();
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let scale = match scale_name.as_str() {
        "quick" => Scale::quick(),
        "standard" => Scale::standard(),
        "paper" => Scale::paper(),
        other => usage(&format!("unknown scale `{other}`")),
    };

    let cancel = CancelToken::new();
    install_sigint(cancel.clone());
    let durability = Durability {
        journal_dir: journal_dir.map(Into::into),
        cancel: cancel.clone(),
        batch,
        search_pool,
    };

    let mut report = String::new();
    let _ = writeln!(report, "# COMET reproduction — experiment results\n");
    let _ = writeln!(
        report,
        "Scale: `{scale_name}` (test {} / sources {}x2 / categories {}x6 / seeds {} / coverage {}).\n",
        scale.test_blocks, scale.source_blocks, scale.category_blocks, scale.seeds,
        scale.coverage_samples
    );

    // Appendix F needs no context; run it first so `--exp appf` is instant.
    let wants = |name: &str| exp == "all" || exp == name;
    if wants("appf") {
        section(&mut report, extras::run_appendix_f().to_string());
    }
    if exp == "appf" {
        finish(&report, out.as_deref());
        return;
    }

    eprintln!("[comet-eval] building corpora and training surrogates ({scale_name} scale)...");
    let t0 = Instant::now();
    let mut ctx = EvalContext::build(scale);
    ctx.durability = durability;
    eprintln!("[comet-eval] context ready in {:.1}s", t0.elapsed().as_secs_f64());

    type Experiment = Box<dyn Fn(&EvalContext) -> comet_eval::report::Table>;
    let experiments_list: [(&str, Experiment); 10] = [
        ("mape", Box::new(figures::run_mape_table)),
        ("table2", Box::new(experiments::run_table2)),
        ("table3", Box::new(experiments::run_table3)),
        ("fig2", Box::new(figures::run_figure2)),
        ("fig3", Box::new(figures::run_figure3)),
        ("fig4", Box::new(figures::run_figure4)),
        ("fig5", Box::new(ablations::run_figure5)),
        ("fig6", Box::new(ablations::run_figure6)),
        ("fig7", Box::new(ablations::run_figure7)),
        ("fig8", Box::new(ablations::run_figure8)),
    ];
    for (name, run) in experiments_list {
        if !wants(name) {
            continue;
        }
        eprintln!("[comet-eval] running {name}...");
        let t = Instant::now();
        let table = run(&ctx);
        if cancel.is_cancelled() {
            interrupted(&report, out.as_deref(), name);
        }
        eprintln!("[comet-eval] {name} done in {:.1}s", t.elapsed().as_secs_f64());
        section(&mut report, table.to_string());
    }
    if wants("cases") {
        eprintln!("[comet-eval] running case studies...");
        section(&mut report, extras::case_study_hardware().to_string());
        let cases = extras::run_case_studies(&ctx).to_string();
        if cancel.is_cancelled() {
            interrupted(&report, out.as_deref(), "cases");
        }
        section(&mut report, cases);
    }

    finish(&report, out.as_deref());
}

/// An experiment was cancelled mid-run: its partial table would be
/// misleading, so write only the sections finished before it, explain
/// how to resume, and exit with the conventional SIGINT status.
fn interrupted(report: &str, out: Option<&str>, name: &str) -> ! {
    eprintln!(
        "[comet-eval] interrupted during {name}; completed blocks are journaled — \
         re-run the same command to resume"
    );
    finish(report, out);
    std::process::exit(SIGINT_EXIT);
}

fn section(report: &mut String, text: String) {
    let _ = writeln!(report, "{text}");
    println!("{text}");
}

fn finish(report: &str, out: Option<&str>) {
    if let Some(path) = out {
        std::fs::write(path, report).unwrap_or_else(|e| {
            eprintln!("[comet-eval] failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[comet-eval] wrote {path}");
    }
}

fn parse_knob(value: Option<String>, name: &str) -> usize {
    let text = value.unwrap_or_else(|| usage(&format!("missing value for {name}")));
    match text.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => usage(&format!("{name} needs a positive integer, got `{text}`")),
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: comet-eval [--scale quick|standard|paper] [--exp all|table2|table3|fig2..fig8|appf|cases|mape] [--out FILE] [--journal DIR] [--batch N] [--search-pool N] [--force-scalar]"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
