//! `chaos-report` — the seeded chaos gate for the explanation service.
//!
//! Phase A boots an in-process `comet-serve` over a fault-injecting
//! model with worker-panic chaos enabled, then replays a deterministic
//! (seed-derived) storm of good requests, tiny-deadline requests, and
//! protocol abuse (garbage bytes, truncated bodies, oversized headers,
//! slow-loris stalls, mid-request resets) from several client threads.
//! Phase B starts the crash-restart supervisor over real `comet-serve`
//! child processes, SIGKILLs one, and times the recovery.
//! Phase C attacks the model lifecycle: a swap storm (continuous
//! forced hot-swaps under traffic, every response checked bitwise
//! against the model its own `model_version` names), shadow-validation
//! rejection and probation auto-rollback, and a real serve child
//! SIGKILLed mid-promotion plus an on-disk snapshot corruption — both
//! of which must recover to the last-known-good model.
//!
//! The run then asserts the robustness invariants the serving stack
//! promises — no unexplained 5xx, bounded tail latency, recovery after
//! the storm, degradation tiers actually exercised, supervisor restart
//! inside its backoff budget — and emits `BENCH_chaos.json` with the
//! per-invariant verdicts. The process exits non-zero if any invariant
//! fails, but the report file is always written.
//!
//! ```text
//! chaos-report [--smoke] [--seed N] [--out FILE] [--ops N]
//!              [--serve-bin PATH] [--skip-supervisor] [--skip-swap]
//! ```
//!
//! Same seed, same op schedule, same injected-fault schedule: a chaos
//! failure in CI is reproducible locally with the seed it prints.

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, CrudeModel, FaultConfig, FaultyModel, ModelError};
use comet_serve::server::BoxedModel;
use comet_serve::{
    ChaosConfig, ChildSpec, ModelKind, ServeConfig, Server, StatusClass, Supervisor,
    SupervisorConfig, Tier,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

const SCHEMA: u64 = 1;

/// Blocks the storm cycles through (all parse; one is div-heavy so
/// explanations are non-trivial).
const BLOCKS: [&str; 4] = [
    "add rcx, rax\nnop",
    "mov ecx, edx\nxor edx, edx\ndiv rcx",
    "imul rax, rcx\nadd rcx, rax",
    "add rcx, rax\nmov rdx, rcx\npop rbx",
];

/// A [`FaultyModel`] shared between the server (which owns a boxed
/// handle) and the harness (which reads fault counters afterwards).
struct SharedFaulty(Arc<FaultyModel<CrudeModel>>);

impl CostModel for SharedFaulty {
    fn name(&self) -> &str {
        "chaos-faulty-crude"
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.0.predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        self.0.try_predict(block)
    }
}

/// One storm operation. The schedule is a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Predict,
    Explain,
    /// An explain with a 1ms deadline: must ride the degradation
    /// ladder, not fail.
    TinyDeadline,
    /// Non-HTTP bytes on the wire.
    Garbage,
    /// A body shorter than its declared Content-Length.
    TruncatedBody,
    /// A header line past the 8KiB line cap.
    OversizedHeader,
    /// Valid HTTP, invalid JSON.
    BadJson,
    /// Start a request, then stall until the server's read budget
    /// cuts us off.
    SlowLoris,
    /// Write half a request and vanish without reading the answer.
    Reset,
}

/// What one operation observed from the outside.
#[derive(Debug, Default, Clone)]
struct Outcomes {
    by_status: std::collections::BTreeMap<u16, u64>,
    /// Connection closed/refused with no status line — legal for abuse
    /// ops and chaos-panicked connections, never silently counted as
    /// success.
    closed: u64,
    /// Wall-clock of successful (200) predicts, for the tail bound.
    predict_latency: Vec<Duration>,
    /// Tiny-deadline explains that still answered 200.
    tiny_ok: u64,
}

impl Outcomes {
    fn see(&mut self, status: Option<u16>) {
        match status {
            Some(code) => *self.by_status.entry(code).or_insert(0) += 1,
            None => self.closed += 1,
        }
    }

    fn count(&self, code: u16) -> u64 {
        self.by_status.get(&code).copied().unwrap_or(0)
    }

    fn merge(&mut self, other: Outcomes) {
        for (code, n) in other.by_status {
            *self.by_status.entry(code).or_insert(0) += n;
        }
        self.closed += other.closed;
        self.predict_latency.extend(other.predict_latency);
        self.tiny_ok += other.tiny_ok;
    }
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Write `raw`, optionally half-close, and return the response status
/// (None if the server closed without answering).
fn exchange(addr: SocketAddr, raw: &[u8], truncate: bool) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.write_all(raw).ok()?;
    if truncate {
        let _ = stream.shutdown(Shutdown::Write);
    }
    let mut buf = Vec::new();
    let _ = BufReader::new(&stream).read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf);
    text.lines().next()?.split_whitespace().nth(1)?.parse().ok()
}

/// Execute one scheduled op against the server.
fn run_op(addr: SocketAddr, op: Op, block: usize, seed: u64, outcomes: &mut Outcomes) {
    let block_text = BLOCKS[block % BLOCKS.len()];
    let escaped = block_text.replace('\n', "\\n");
    match op {
        Op::Predict => {
            let start = Instant::now();
            let status = exchange(
                addr,
                post("/v1/predict", &format!(r#"{{"v":1,"block":"{escaped}"}}"#)).as_bytes(),
                false,
            );
            if status == Some(200) {
                outcomes.predict_latency.push(start.elapsed());
            }
            outcomes.see(status);
        }
        Op::Explain => {
            let body = format!(r#"{{"v":1,"block":"{escaped}","seed":{seed}}}"#);
            outcomes.see(exchange(addr, post("/v1/explain", &body).as_bytes(), false));
        }
        Op::TinyDeadline => {
            let body = format!(r#"{{"v":1,"block":"{escaped}","seed":{seed},"deadline_ms":1}}"#);
            let status = exchange(addr, post("/v1/explain", &body).as_bytes(), false);
            if status == Some(200) {
                outcomes.tiny_ok += 1;
            }
            outcomes.see(status);
        }
        Op::Garbage => {
            let mut junk = vec![0x16u8, 0x03, 0x01];
            junk.extend_from_slice(seed.to_le_bytes().as_slice());
            junk.extend_from_slice(b"\r\n\r\n");
            outcomes.see(exchange(addr, &junk, true));
        }
        Op::TruncatedBody => {
            let raw =
                b"POST /v1/predict HTTP/1.1\r\nHost: chaos\r\nContent-Length: 64\r\n\r\n{\"v\":1";
            outcomes.see(exchange(addr, raw, true));
        }
        Op::OversizedHeader => {
            let raw = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(32 * 1024));
            outcomes.see(exchange(addr, raw.as_bytes(), false));
        }
        Op::BadJson => {
            outcomes.see(exchange(
                addr,
                post("/v1/predict", "{definitely not json").as_bytes(),
                false,
            ));
        }
        Op::SlowLoris => {
            // Send a prefix, then just wait: the server's read budget
            // must answer 408 on its own.
            outcomes.see(exchange(addr, b"POST /v1/explain HTTP/1.1\r\nHost: chaos\r\n", false));
        }
        Op::Reset => {
            if let Ok(mut stream) = TcpStream::connect(addr) {
                let _ = stream.write_all(b"POST /v1/predict HTT");
                // Drop without reading: the server's write fails and
                // the connection is reclaimed.
            } else {
                outcomes.closed += 1;
                return;
            }
            outcomes.closed += 1;
        }
    }
}

/// Build the deterministic op schedule. The first quarter is a clean
/// warm-up (populates the latency histogram and the stale-explanation
/// store); the rest interleaves abuse.
fn schedule(seed: u64, total: usize) -> Vec<(Op, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..total)
        .map(|i| {
            let block = rng.gen_range(0..BLOCKS.len());
            let explain_seed = rng.gen_range(0..5u64);
            let op = if i < total / 4 {
                if rng.gen_range(0..3u32) == 0 {
                    Op::Explain
                } else {
                    Op::Predict
                }
            } else {
                match rng.gen_range(0..100u32) {
                    0..=34 => Op::Predict,
                    35..=54 => Op::Explain,
                    55..=64 => Op::TinyDeadline,
                    65..=71 => Op::Garbage,
                    72..=78 => Op::TruncatedBody,
                    79..=83 => Op::OversizedHeader,
                    84..=88 => Op::BadJson,
                    89..=93 => Op::SlowLoris,
                    _ => Op::Reset,
                }
            };
            (op, block, explain_seed)
        })
        .collect()
}

fn p99(latencies: &mut [Duration]) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * 0.99).ceil() as usize;
    latencies[idx.min(latencies.len() - 1)]
}

/// Retry `f` every 50ms until it returns true or `budget` elapses.
fn within(budget: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= budget {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

struct Invariant {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn invariant(name: &'static str, pass: bool, detail: String) -> Invariant {
    let verdict = if pass { "ok" } else { "VIOLATED" };
    eprintln!("[chaos] invariant {name}: {verdict} ({detail})");
    Invariant { name, pass, detail }
}

/// Phase A: the in-process storm. Returns (invariants, report section).
fn storm_phase(seed: u64, total_ops: usize) -> (Vec<Invariant>, Value) {
    let faulty = Arc::new(FaultyModel::new(
        CrudeModel::new(Microarch::Haswell),
        FaultConfig {
            nan_rate: 0.004,
            inf_rate: 0.002,
            panic_rate: 0.004,
            transient_rate: 0.01,
            latency_rate: 0.01,
            latency: Duration::from_millis(10),
            deadline: None,
            seed,
        },
    ));
    let server = Server::start_with_model(
        Box::new(SharedFaulty(Arc::clone(&faulty))) as BoxedModel,
        "chaos-faulty-crude".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            deadline_ms: 200,
            idle_timeout_ms: 250,
            chaos: Some(ChaosConfig { worker_panic_rate: 0.02, seed }),
            ..ServeConfig::default()
        },
    )
    .expect("bind chaos server");
    let addr = server.addr();
    let ops = schedule(seed, total_ops);
    eprintln!("[chaos] storm: {} ops against {addr} (seed {seed})", ops.len());

    const CLIENTS: usize = 4;
    let storm_start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let mine: Vec<(Op, usize, u64)> =
                ops.iter().copied().skip(t).step_by(CLIENTS).collect();
            std::thread::spawn(move || {
                let mut outcomes = Outcomes::default();
                for (op, block, explain_seed) in mine {
                    run_op(addr, op, block, explain_seed, &mut outcomes);
                }
                outcomes
            })
        })
        .collect();
    let mut outcomes = Outcomes::default();
    for thread in threads {
        outcomes.merge(thread.join().expect("client thread"));
    }
    let storm_secs = storm_start.elapsed().as_secs_f64();

    let metrics = server.ctx().metrics();
    let faults = faulty.stats();
    let chaos_panics = metrics.chaos_panic_count();
    let shed = metrics.shed_count();
    let internal = metrics.requests_with_status(StatusClass::Internal);
    let tier_counts: Vec<(&str, u64)> =
        Tier::ALL.iter().map(|&t| (t.label(), metrics.tier_count(t))).collect();
    let nonfull: u64 =
        tier_counts.iter().filter(|(label, _)| *label != "full").map(|(_, n)| n).sum();

    let mut invariants = Vec::new();

    // The process must still answer liveness probes (retry: a chaos
    // panic can eat any individual connection).
    let healthz = within(Duration::from_secs(5), || {
        exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n", false)
            == Some(200)
    });
    invariants.push(invariant("healthz_after_storm", healthz, "GET /healthz == 200".into()));

    // Every 5xx must be accounted for by backpressure or an injected
    // fault — a 5xx with no recorded cause is a real bug.
    let observed_5xx = outcomes.count(500) + outcomes.count(503);
    let explained = shed + faults.total_faults() + chaos_panics;
    invariants.push(invariant(
        "no_unexplained_5xx",
        observed_5xx == 0 || explained > 0,
        format!(
            "observed {observed_5xx} 5xx; recorded: shed={shed} faults={} chaos_panics={chaos_panics} internal={internal}",
            faults.total_faults()
        ),
    ));

    // Under chaos, the tail of *successful* predicts stays bounded.
    let mut latencies = outcomes.predict_latency.clone();
    let tail = p99(&mut latencies);
    invariants.push(invariant(
        "bounded_predict_p99",
        !latencies.is_empty() && tail < Duration::from_secs(2),
        format!("p99 {tail:?} over {} successful predicts", latencies.len()),
    ));

    // Tiny-deadline explains that answered must have ridden the ladder.
    invariants.push(invariant(
        "degraded_tiers_recorded",
        outcomes.tiny_ok == 0 || nonfull > 0,
        format!("{} tiny-deadline 200s, {nonfull} non-full tiers served", outcomes.tiny_ok),
    ));

    // After the storm, the service still does real work.
    let recovered = within(Duration::from_secs(5), || {
        exchange(addr, post("/v1/predict", r#"{"v":1,"block":"add rcx, rax"}"#).as_bytes(), false)
            == Some(200)
    });
    invariants.push(invariant(
        "service_recovers_after_storm",
        recovered,
        "a clean predict returns 200 after the storm".into(),
    ));

    // /metrics still renders (and carries the chaos counters).
    let metrics_ok =
        exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n", false)
            == Some(200);
    invariants.push(invariant("metrics_render", metrics_ok, "GET /metrics == 200".into()));

    server.shutdown();

    let statuses = Value::Object(
        outcomes.by_status.iter().map(|(code, n)| (format!("s{code}"), json!(n))).collect(),
    );
    let section = json!({
        "ops": total_ops,
        "clients": CLIENTS,
        "storm_secs": storm_secs,
        "observed": statuses,
        "closed_without_response": outcomes.closed,
        "predict_p99_ms": tail.as_secs_f64() * 1e3,
        "tiny_deadline_200s": outcomes.tiny_ok,
        "server": {
            "shed": shed,
            "internal_5xx": internal,
            "chaos_panics": chaos_panics,
            "injected_faults": {
                "queries": faults.queries,
                "nan": faults.nan,
                "inf": faults.inf,
                "panics": faults.panics,
                "transient": faults.transient,
                "latency": faults.latency,
            },
            "tiers": Value::Object(
                tier_counts.iter().map(|(label, n)| (label.to_string(), json!(n))).collect()
            ),
        },
    });
    (invariants, section)
}

/// Phase B: kill a supervised serve child and time the restart.
fn supervisor_phase(seed: u64, serve_bin: &str) -> (Vec<Invariant>, Value) {
    let mut invariants = Vec::new();
    if !std::path::Path::new(serve_bin).is_file() {
        invariants.push(invariant(
            "supervisor_recovers_killed_child",
            false,
            format!(
                "serve binary not found at {serve_bin} (pass --serve-bin or --skip-supervisor)"
            ),
        ));
        return (invariants, json!({ "serve_bin": serve_bin, "skipped": "binary missing" }));
    }
    let spec = ChildSpec {
        program: serve_bin.into(),
        args: vec![
            "--supervised".into(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--workers".into(),
            "1".into(),
        ],
    };
    let config = SupervisorConfig {
        children: 2,
        backoff_base: Duration::from_millis(50),
        backoff_max: Duration::from_millis(500),
        stable_after: Duration::from_millis(100),
        poll: Duration::from_millis(10),
        grace: Duration::from_secs(3),
        seed,
        ..SupervisorConfig::default()
    };
    let supervisor = match Supervisor::start(spec, config) {
        Ok(s) => s,
        Err(e) => {
            invariants.push(invariant(
                "supervisor_recovers_killed_child",
                false,
                format!("cannot spawn {serve_bin}: {e}"),
            ));
            return (invariants, json!({ "serve_bin": serve_bin, "error": e.to_string() }));
        }
    };
    let booted = within(Duration::from_secs(5), || supervisor.status().alive == 2);
    let before = supervisor.status();
    let killed = supervisor.kill_child(0);
    let kill_at = Instant::now();
    // Recovery budget: base backoff 50ms ×2^k with ≤1.5 jitter plus
    // monitor polling — 3s is generous, and the assertion is what the
    // supervisor promises operators.
    let recovered = within(Duration::from_secs(3), || {
        let status = supervisor.status();
        status.alive == 2 && status.restarts >= 1 && status.pids[0] != before.pids[0]
    });
    let recovery = kill_at.elapsed();
    invariants.push(invariant(
        "supervisor_recovers_killed_child",
        booted && killed && recovered,
        format!("booted={booted} killed={killed} recovered={recovered} in {recovery:?}"),
    ));

    let drain_at = Instant::now();
    let code = supervisor.shutdown();
    let drained = drain_at.elapsed();
    invariants.push(invariant(
        "supervisor_drains_cleanly",
        code == 0 && drained < Duration::from_secs(4),
        format!("exit code {code}, drain took {drained:?}"),
    ));

    let section = json!({
        "serve_bin": serve_bin,
        "children": 2,
        "recovery_ms": recovery.as_secs_f64() * 1e3,
        "drain_ms": drained.as_secs_f64() * 1e3,
        "exit_code": code,
    });
    (invariants, section)
}

/// Write `raw` and parse the response as `(status, json body)`.
fn exchange_json(addr: SocketAddr, raw: &str) -> Option<(u16, Value)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    let mut buf = Vec::new();
    let _ = BufReader::new(&stream).read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text.lines().next()?.split_whitespace().nth(1)?.parse().ok()?;
    let body = text.split_once("\r\n\r\n")?.1;
    Some((status, serde_json::from_str(body).ok()?))
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n")
}

/// A scratch registry directory, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("comet-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A block whose crude cost differs between Haswell and Skylake, so a
/// cross-version cache hit or torn read is detectable bitwise.
const SWAP_BLOCK: &str = "vdivss xmm0, xmm0, xmm6\nadd rcx, rax";

/// Phase C1+C2: the in-process swap storm and the validation /
/// rollback paths.
fn swap_storm_phase(smoke: bool) -> (Vec<Invariant>, Value) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

    let mut invariants = Vec::new();
    let block = comet_isa::parse_block(SWAP_BLOCK).expect("swap block parses");
    let want_haswell = CrudeModel::new(Microarch::Haswell).predict(&block);
    let want_skylake = CrudeModel::new(Microarch::Skylake).predict(&block);
    assert_ne!(want_haswell.to_bits(), want_skylake.to_bits());

    // --- C1: continuous forced swaps under traffic, with the registry
    // on disk. Version parity encodes the kind (boot v1 = Haswell, the
    // admin loop alternates starting with Skylake at v2), so every
    // response can be checked bitwise against the model its own
    // `model_version` field names.
    let scratch = Scratch::new("swapstorm");
    let server = Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            registry_dir: Some(scratch.0.to_string_lossy().into_owned()),
            probation_requests: 0,
            ..ServeConfig::default()
        },
    )
    .expect("bind swap-storm server");
    let addr = server.addr();
    let swaps: u64 = if smoke { 10 } else { 40 };
    eprintln!("[chaos] swap storm: {swaps} forced swaps under traffic against {addr}");

    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));
    let predict_body = format!(r#"{{"v":1,"block":"{}"}}"#, SWAP_BLOCK.replace('\n', "\\n"));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let (stop, checked, torn) =
                (Arc::clone(&stop), Arc::clone(&checked), Arc::clone(&torn));
            let predict_body = predict_body.clone();
            std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    let Some((status, resp)) =
                        exchange_json(addr, &post("/v1/predict", &predict_body))
                    else {
                        continue;
                    };
                    if status != 200 {
                        torn.fetch_add(1, Relaxed);
                        continue;
                    }
                    let (Some(version), Some(prediction)) =
                        (resp["model_version"].as_u64(), resp["prediction"].as_f64())
                    else {
                        torn.fetch_add(1, Relaxed);
                        continue;
                    };
                    let want =
                        if version % 2 == 0 { want_skylake } else { want_haswell };
                    if prediction.to_bits() != want.to_bits() {
                        eprintln!(
                            "[chaos] TORN READ: v{version} reported {prediction}, model computes {want}"
                        );
                        torn.fetch_add(1, Relaxed);
                    }
                    checked.fetch_add(1, Relaxed);
                }
            })
        })
        .collect();

    let mut promoted = 0u64;
    for i in 0..swaps {
        let kind = if i % 2 == 0 { "crude-skylake" } else { "crude-haswell" };
        let swap_body = format!(r#"{{"v":1,"kind":"{kind}","force":true}}"#);
        if let Some((200, resp)) = exchange_json(addr, &post("/admin/model", &swap_body)) {
            if resp["action"].as_str() == Some("promoted") {
                promoted += 1;
            }
        }
    }
    stop.store(true, Relaxed);
    for client in clients {
        client.join().expect("traffic thread");
    }
    let (checked, torn) = (checked.load(Relaxed), torn.load(Relaxed));
    let final_version = server.ctx().model_version();
    server.shutdown();

    invariants.push(invariant(
        "swap_storm_zero_torn_reads",
        torn == 0 && checked > 0,
        format!("{checked} responses checked bitwise across {promoted} swaps, {torn} torn"),
    ));
    invariants.push(invariant(
        "swap_storm_all_swaps_promoted",
        promoted == swaps && final_version == 1 + swaps,
        format!("{promoted}/{swaps} promoted, final version {final_version}"),
    ));

    // --- C2: a garbage candidate is rejected by shadow validation,
    // and a force-promoted failing candidate is rolled back by
    // probation on real traffic.
    let scratch2 = Scratch::new("swapgates");
    let server = Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            registry_dir: Some(scratch2.0.to_string_lossy().into_owned()),
            probation_requests: 16,
            ..ServeConfig::default()
        },
    )
    .expect("bind gates server");
    let addr = server.addr();

    let rejected = exchange_json(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-haswell","chaos_scale":50.0}"#),
    );
    let rejected_ok = matches!(
        &rejected,
        Some((409, resp)) if resp["action"].as_str() == Some("rejected")
    );
    invariants.push(invariant(
        "bad_candidate_rejected_409",
        rejected_ok,
        format!("chaos_scale=50 candidate answered {:?}", rejected.map(|(s, _)| s)),
    ));

    let forced = exchange_json(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-haswell","chaos_fail":true,"force":true}"#),
    );
    let forced_ok = matches!(
        &forced,
        Some((200, resp)) if resp["action"].as_str() == Some("promoted")
    );
    let rollback_start = Instant::now();
    for _ in 0..24 {
        let _ = exchange_json(addr, &post("/v1/predict", &predict_body));
        if let Some((_, resp)) = exchange_json(addr, &get("/admin/model")) {
            if resp["rollbacks"].as_u64() == Some(1) {
                break;
            }
        }
    }
    let status = exchange_json(addr, &get("/admin/model"));
    let rolled_back = matches!(
        &status,
        Some((200, resp)) if resp["rollbacks"].as_u64() == Some(1)
            && resp["active_version"].as_u64() == Some(1)
            && resp["last_rollback"].as_str().is_some_and(|r| r.contains("failure rate"))
    );
    let rollback_ms = rollback_start.elapsed().as_secs_f64() * 1e3;
    // And the rolled-back service must actually serve again.
    let healed = exchange_json(addr, &post("/v1/predict", &predict_body))
        .is_some_and(|(status, resp)| status == 200 && resp["model_version"].as_u64() == Some(1));
    server.shutdown();
    invariants.push(invariant(
        "failing_model_auto_rollback",
        forced_ok && rolled_back && healed,
        format!(
            "forced={forced_ok} rolled_back={rolled_back} healed={healed} in {rollback_ms:.0}ms"
        ),
    ));

    let section = json!({
        "storm": {
            "swaps": swaps,
            "promoted": promoted,
            "responses_checked": checked,
            "torn_reads": torn,
            "final_version": final_version,
        },
        "gates": {
            "bad_candidate_rejected": rejected_ok,
            "auto_rollback": rolled_back,
            "rollback_ms": rollback_ms,
        },
    });
    (invariants, section)
}

/// Spawn a real serve child over `dir` and parse its bound address
/// from the `listening on` line on stderr. The rest of the stderr is
/// drained on a background thread so the child never blocks on a full
/// pipe.
fn spawn_serve(
    serve_bin: &str,
    dir: &std::path::Path,
    probation: u64,
) -> Option<(std::process::Child, SocketAddr)> {
    use std::io::BufRead;
    let mut child = std::process::Command::new(serve_bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--registry",
            &dir.to_string_lossy(),
            "--probation-requests",
            &probation.to_string(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .ok()?;
    let stderr = child.stderr.take()?;
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        let mut addr_sent = false;
        while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
            if !addr_sent {
                if let Some(rest) = line.split("listening on ").nth(1) {
                    if let Ok(addr) =
                        rest.split_whitespace().next().unwrap_or_default().parse::<SocketAddr>()
                    {
                        let _ = tx.send(addr);
                        addr_sent = true;
                    }
                }
            }
            line.clear(); // keep draining so the child never blocks
        }
    });
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(addr) => Some((child, addr)),
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            None
        }
    }
}

/// Phase C3: SIGKILL a real serve child mid-promotion, then corrupt a
/// snapshot on disk; both restarts must come back on last-known-good.
fn swap_kill_phase(serve_bin: &str) -> (Vec<Invariant>, Value) {
    let mut invariants = Vec::new();
    if !std::path::Path::new(serve_bin).is_file() {
        invariants.push(invariant(
            "kill9_recovers_last_known_good",
            false,
            format!("serve binary not found at {serve_bin} (pass --serve-bin or --skip-swap)"),
        ));
        return (invariants, json!({ "serve_bin": serve_bin, "skipped": "binary missing" }));
    }
    let scratch = Scratch::new("swapkill");
    let predict_body = format!(r#"{{"v":1,"block":"{}"}}"#, SWAP_BLOCK.replace('\n', "\\n"));

    // Life 1: settle Skylake (v2) as last-known-good, then force a
    // third swap and SIGKILL while it is still on probation — the
    // manifest has not moved, so v3 was never promoted.
    let Some((mut child, addr)) = spawn_serve(serve_bin, &scratch.0, 4) else {
        invariants.push(invariant(
            "kill9_recovers_last_known_good",
            false,
            "serve child did not report a listening address".into(),
        ));
        return (invariants, json!({ "serve_bin": serve_bin, "error": "no listening line" }));
    };
    let swapped = exchange_json(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-skylake","force":true}"#),
    )
    .is_some_and(|(status, resp)| status == 200 && resp["action"].as_str() == Some("promoted"));
    // Probation window is 4 requests: drive it shut.
    let settled = within(Duration::from_secs(5), || {
        let _ = exchange_json(addr, &post("/v1/predict", &predict_body));
        exchange_json(addr, &get("/admin/model"))
            .is_some_and(|(_, resp)| resp["last_good_version"].as_u64() == Some(2))
    });
    let mid_promotion = exchange_json(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-haswell","force":true}"#),
    )
    .is_some_and(|(status, resp)| {
        status == 200 && resp["probation_remaining"].as_u64().unwrap_or(0) > 0
    });
    child.kill().expect("SIGKILL serve child");
    let _ = child.wait();

    // Life 2: recovery must land on v2 (the last version that finished
    // probation), not the half-promoted v3.
    let recovered = spawn_serve(serve_bin, &scratch.0, 4);
    let (recovered_ok, reported) = match &recovered {
        Some((_, addr)) => {
            let resp = exchange_json(*addr, &get("/admin/model"));
            let ok = matches!(
                &resp,
                Some((200, r)) if r["active_version"].as_u64() == Some(2)
                    && r["active_kind"].as_str() == Some("crude-skylake")
            );
            (ok, resp.map(|(_, r)| r["active_version"].clone()).unwrap_or(Value::Null))
        }
        None => (false, Value::Null),
    };
    if let Some((mut child, _)) = recovered {
        child.kill().expect("stop recovered child");
        let _ = child.wait();
    }
    invariants.push(invariant(
        "kill9_recovers_last_known_good",
        swapped && settled && mid_promotion && recovered_ok,
        format!(
            "settled v2={settled}, killed mid-promotion of v3={mid_promotion}, \
             recovered to {reported}"
        ),
    ));

    // Life 3: scribble garbage over the never-promoted v3 snapshot;
    // boot must quarantine it and keep serving v2.
    let victim = scratch.0.join("v000003.snap");
    std::fs::write(&victim, b"COMETM1 0000000000000000 {torn mid-write").expect("corrupt snap");
    let rebooted = spawn_serve(serve_bin, &scratch.0, 4);
    let (quarantined_ok, quarantined) = match &rebooted {
        Some((_, addr)) => {
            let resp = exchange_json(*addr, &get("/admin/model"));
            let ok = matches!(
                &resp,
                Some((200, r)) if r["active_version"].as_u64() == Some(2)
                    && r["quarantined"].as_array().is_some_and(|q| !q.is_empty())
            );
            (ok, resp.map(|(_, r)| r["quarantined"].clone()).unwrap_or(Value::Null))
        }
        None => (false, Value::Null),
    };
    if let Some((mut child, _)) = rebooted {
        child.kill().expect("stop rebooted child");
        let _ = child.wait();
    }
    invariants.push(invariant(
        "corrupted_snapshot_quarantined",
        quarantined_ok,
        format!("boot over damaged v3 quarantined {quarantined} and kept serving v2"),
    ));

    let section = json!({
        "serve_bin": serve_bin,
        "kill9_recovered_to_v2": recovered_ok,
        "corruption_quarantined": quarantined_ok,
        "quarantined": quarantined,
    });
    (invariants, section)
}

/// Default serve binary: the `comet-serve` sitting next to this
/// executable (both live in `target/<profile>` under cargo).
fn sibling_serve_bin() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("comet-serve")))
        .map(|p| p.to_string_lossy().into_owned())
        .unwrap_or_else(|| "comet-serve".into())
}

fn main() {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut out = "BENCH_chaos.json".to_string();
    let mut ops_override: Option<usize> = None;
    let mut serve_bin = sibling_serve_bin();
    let mut skip_supervisor = false;
    let mut skip_swap = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = args.next().expect("--seed needs a value").parse().expect("seed"),
            "--out" => out = args.next().expect("--out needs a path"),
            "--ops" => {
                ops_override = Some(args.next().expect("--ops needs a value").parse().expect("ops"))
            }
            "--serve-bin" => serve_bin = args.next().expect("--serve-bin needs a path"),
            "--skip-supervisor" => skip_supervisor = true,
            "--skip-swap" => skip_swap = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos-report [--smoke] [--seed N] [--out FILE] [--ops N] \
                     [--serve-bin PATH] [--skip-supervisor] [--skip-swap]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let total_ops = ops_override.unwrap_or(if smoke { 160 } else { 1200 });

    eprintln!(
        "[chaos-report] mode: {}, seed {seed}, {total_ops} ops",
        if smoke { "smoke" } else { "full" }
    );
    let (mut invariants, storm) = storm_phase(seed, total_ops);
    let supervisor = if skip_supervisor {
        json!({ "skipped": "--skip-supervisor" })
    } else {
        let (more, section) = supervisor_phase(seed, &serve_bin);
        invariants.extend(more);
        section
    };
    let swap = if skip_swap {
        json!({ "skipped": "--skip-swap" })
    } else {
        let (more, mut section) = swap_storm_phase(smoke);
        invariants.extend(more);
        let (more, kill_section) = swap_kill_phase(&serve_bin);
        invariants.extend(more);
        section["kill"] = kill_section;
        section
    };

    let pass = invariants.iter().all(|i| i.pass);
    let report = json!({
        "schema": SCHEMA,
        "mode": if smoke { "smoke" } else { "full" },
        "seed": seed,
        "storm": storm,
        "supervisor": supervisor,
        "swap": swap,
        "invariants": invariants
            .iter()
            .map(|i| json!({ "name": i.name, "pass": i.pass, "detail": i.detail }))
            .collect::<Vec<_>>(),
        "pass": pass,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("[chaos-report] wrote {out} (pass: {pass})");
    if !pass {
        std::process::exit(1);
    }
}
