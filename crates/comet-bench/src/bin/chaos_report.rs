//! `chaos-report` — the seeded chaos gate for the explanation service.
//!
//! Phase A boots an in-process `comet-serve` over a fault-injecting
//! model with worker-panic chaos enabled, then replays a deterministic
//! (seed-derived) storm of good requests, tiny-deadline requests, and
//! protocol abuse (garbage bytes, truncated bodies, oversized headers,
//! slow-loris stalls, mid-request resets) from several client threads.
//! Phase B starts the crash-restart supervisor over real `comet-serve`
//! child processes, SIGKILLs one, and times the recovery.
//!
//! The run then asserts the robustness invariants the serving stack
//! promises — no unexplained 5xx, bounded tail latency, recovery after
//! the storm, degradation tiers actually exercised, supervisor restart
//! inside its backoff budget — and emits `BENCH_chaos.json` with the
//! per-invariant verdicts. The process exits non-zero if any invariant
//! fails, but the report file is always written.
//!
//! ```text
//! chaos-report [--smoke] [--seed N] [--out FILE] [--ops N]
//!              [--serve-bin PATH] [--skip-supervisor]
//! ```
//!
//! Same seed, same op schedule, same injected-fault schedule: a chaos
//! failure in CI is reproducible locally with the seed it prints.

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, CrudeModel, FaultConfig, FaultyModel, ModelError};
use comet_serve::server::BoxedModel;
use comet_serve::{
    ChaosConfig, ChildSpec, ServeConfig, Server, StatusClass, Supervisor, SupervisorConfig, Tier,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

const SCHEMA: u64 = 1;

/// Blocks the storm cycles through (all parse; one is div-heavy so
/// explanations are non-trivial).
const BLOCKS: [&str; 4] = [
    "add rcx, rax\nnop",
    "mov ecx, edx\nxor edx, edx\ndiv rcx",
    "imul rax, rcx\nadd rcx, rax",
    "add rcx, rax\nmov rdx, rcx\npop rbx",
];

/// A [`FaultyModel`] shared between the server (which owns a boxed
/// handle) and the harness (which reads fault counters afterwards).
struct SharedFaulty(Arc<FaultyModel<CrudeModel>>);

impl CostModel for SharedFaulty {
    fn name(&self) -> &str {
        "chaos-faulty-crude"
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.0.predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        self.0.try_predict(block)
    }
}

/// One storm operation. The schedule is a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Predict,
    Explain,
    /// An explain with a 1ms deadline: must ride the degradation
    /// ladder, not fail.
    TinyDeadline,
    /// Non-HTTP bytes on the wire.
    Garbage,
    /// A body shorter than its declared Content-Length.
    TruncatedBody,
    /// A header line past the 8KiB line cap.
    OversizedHeader,
    /// Valid HTTP, invalid JSON.
    BadJson,
    /// Start a request, then stall until the server's read budget
    /// cuts us off.
    SlowLoris,
    /// Write half a request and vanish without reading the answer.
    Reset,
}

/// What one operation observed from the outside.
#[derive(Debug, Default, Clone)]
struct Outcomes {
    by_status: std::collections::BTreeMap<u16, u64>,
    /// Connection closed/refused with no status line — legal for abuse
    /// ops and chaos-panicked connections, never silently counted as
    /// success.
    closed: u64,
    /// Wall-clock of successful (200) predicts, for the tail bound.
    predict_latency: Vec<Duration>,
    /// Tiny-deadline explains that still answered 200.
    tiny_ok: u64,
}

impl Outcomes {
    fn see(&mut self, status: Option<u16>) {
        match status {
            Some(code) => *self.by_status.entry(code).or_insert(0) += 1,
            None => self.closed += 1,
        }
    }

    fn count(&self, code: u16) -> u64 {
        self.by_status.get(&code).copied().unwrap_or(0)
    }

    fn merge(&mut self, other: Outcomes) {
        for (code, n) in other.by_status {
            *self.by_status.entry(code).or_insert(0) += n;
        }
        self.closed += other.closed;
        self.predict_latency.extend(other.predict_latency);
        self.tiny_ok += other.tiny_ok;
    }
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Write `raw`, optionally half-close, and return the response status
/// (None if the server closed without answering).
fn exchange(addr: SocketAddr, raw: &[u8], truncate: bool) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream.write_all(raw).ok()?;
    if truncate {
        let _ = stream.shutdown(Shutdown::Write);
    }
    let mut buf = Vec::new();
    let _ = BufReader::new(&stream).read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf);
    text.lines().next()?.split_whitespace().nth(1)?.parse().ok()
}

/// Execute one scheduled op against the server.
fn run_op(addr: SocketAddr, op: Op, block: usize, seed: u64, outcomes: &mut Outcomes) {
    let block_text = BLOCKS[block % BLOCKS.len()];
    let escaped = block_text.replace('\n', "\\n");
    match op {
        Op::Predict => {
            let start = Instant::now();
            let status = exchange(
                addr,
                post("/v1/predict", &format!(r#"{{"v":1,"block":"{escaped}"}}"#)).as_bytes(),
                false,
            );
            if status == Some(200) {
                outcomes.predict_latency.push(start.elapsed());
            }
            outcomes.see(status);
        }
        Op::Explain => {
            let body = format!(r#"{{"v":1,"block":"{escaped}","seed":{seed}}}"#);
            outcomes.see(exchange(addr, post("/v1/explain", &body).as_bytes(), false));
        }
        Op::TinyDeadline => {
            let body = format!(r#"{{"v":1,"block":"{escaped}","seed":{seed},"deadline_ms":1}}"#);
            let status = exchange(addr, post("/v1/explain", &body).as_bytes(), false);
            if status == Some(200) {
                outcomes.tiny_ok += 1;
            }
            outcomes.see(status);
        }
        Op::Garbage => {
            let mut junk = vec![0x16u8, 0x03, 0x01];
            junk.extend_from_slice(seed.to_le_bytes().as_slice());
            junk.extend_from_slice(b"\r\n\r\n");
            outcomes.see(exchange(addr, &junk, true));
        }
        Op::TruncatedBody => {
            let raw =
                b"POST /v1/predict HTTP/1.1\r\nHost: chaos\r\nContent-Length: 64\r\n\r\n{\"v\":1";
            outcomes.see(exchange(addr, raw, true));
        }
        Op::OversizedHeader => {
            let raw = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(32 * 1024));
            outcomes.see(exchange(addr, raw.as_bytes(), false));
        }
        Op::BadJson => {
            outcomes.see(exchange(
                addr,
                post("/v1/predict", "{definitely not json").as_bytes(),
                false,
            ));
        }
        Op::SlowLoris => {
            // Send a prefix, then just wait: the server's read budget
            // must answer 408 on its own.
            outcomes.see(exchange(addr, b"POST /v1/explain HTTP/1.1\r\nHost: chaos\r\n", false));
        }
        Op::Reset => {
            if let Ok(mut stream) = TcpStream::connect(addr) {
                let _ = stream.write_all(b"POST /v1/predict HTT");
                // Drop without reading: the server's write fails and
                // the connection is reclaimed.
            } else {
                outcomes.closed += 1;
                return;
            }
            outcomes.closed += 1;
        }
    }
}

/// Build the deterministic op schedule. The first quarter is a clean
/// warm-up (populates the latency histogram and the stale-explanation
/// store); the rest interleaves abuse.
fn schedule(seed: u64, total: usize) -> Vec<(Op, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..total)
        .map(|i| {
            let block = rng.gen_range(0..BLOCKS.len());
            let explain_seed = rng.gen_range(0..5u64);
            let op = if i < total / 4 {
                if rng.gen_range(0..3u32) == 0 {
                    Op::Explain
                } else {
                    Op::Predict
                }
            } else {
                match rng.gen_range(0..100u32) {
                    0..=34 => Op::Predict,
                    35..=54 => Op::Explain,
                    55..=64 => Op::TinyDeadline,
                    65..=71 => Op::Garbage,
                    72..=78 => Op::TruncatedBody,
                    79..=83 => Op::OversizedHeader,
                    84..=88 => Op::BadJson,
                    89..=93 => Op::SlowLoris,
                    _ => Op::Reset,
                }
            };
            (op, block, explain_seed)
        })
        .collect()
}

fn p99(latencies: &mut [Duration]) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * 0.99).ceil() as usize;
    latencies[idx.min(latencies.len() - 1)]
}

/// Retry `f` every 50ms until it returns true or `budget` elapses.
fn within(budget: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() >= budget {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

struct Invariant {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn invariant(name: &'static str, pass: bool, detail: String) -> Invariant {
    let verdict = if pass { "ok" } else { "VIOLATED" };
    eprintln!("[chaos] invariant {name}: {verdict} ({detail})");
    Invariant { name, pass, detail }
}

/// Phase A: the in-process storm. Returns (invariants, report section).
fn storm_phase(seed: u64, total_ops: usize) -> (Vec<Invariant>, Value) {
    let faulty = Arc::new(FaultyModel::new(
        CrudeModel::new(Microarch::Haswell),
        FaultConfig {
            nan_rate: 0.004,
            inf_rate: 0.002,
            panic_rate: 0.004,
            transient_rate: 0.01,
            latency_rate: 0.01,
            latency: Duration::from_millis(10),
            deadline: None,
            seed,
        },
    ));
    let server = Server::start_with_model(
        Box::new(SharedFaulty(Arc::clone(&faulty))) as BoxedModel,
        "chaos-faulty-crude".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            deadline_ms: 200,
            idle_timeout_ms: 250,
            chaos: Some(ChaosConfig { worker_panic_rate: 0.02, seed }),
            ..ServeConfig::default()
        },
    )
    .expect("bind chaos server");
    let addr = server.addr();
    let ops = schedule(seed, total_ops);
    eprintln!("[chaos] storm: {} ops against {addr} (seed {seed})", ops.len());

    const CLIENTS: usize = 4;
    let storm_start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let mine: Vec<(Op, usize, u64)> =
                ops.iter().copied().skip(t).step_by(CLIENTS).collect();
            std::thread::spawn(move || {
                let mut outcomes = Outcomes::default();
                for (op, block, explain_seed) in mine {
                    run_op(addr, op, block, explain_seed, &mut outcomes);
                }
                outcomes
            })
        })
        .collect();
    let mut outcomes = Outcomes::default();
    for thread in threads {
        outcomes.merge(thread.join().expect("client thread"));
    }
    let storm_secs = storm_start.elapsed().as_secs_f64();

    let metrics = server.ctx().metrics();
    let faults = faulty.stats();
    let chaos_panics = metrics.chaos_panic_count();
    let shed = metrics.shed_count();
    let internal = metrics.requests_with_status(StatusClass::Internal);
    let tier_counts: Vec<(&str, u64)> =
        Tier::ALL.iter().map(|&t| (t.label(), metrics.tier_count(t))).collect();
    let nonfull: u64 =
        tier_counts.iter().filter(|(label, _)| *label != "full").map(|(_, n)| n).sum();

    let mut invariants = Vec::new();

    // The process must still answer liveness probes (retry: a chaos
    // panic can eat any individual connection).
    let healthz = within(Duration::from_secs(5), || {
        exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n", false)
            == Some(200)
    });
    invariants.push(invariant("healthz_after_storm", healthz, "GET /healthz == 200".into()));

    // Every 5xx must be accounted for by backpressure or an injected
    // fault — a 5xx with no recorded cause is a real bug.
    let observed_5xx = outcomes.count(500) + outcomes.count(503);
    let explained = shed + faults.total_faults() + chaos_panics;
    invariants.push(invariant(
        "no_unexplained_5xx",
        observed_5xx == 0 || explained > 0,
        format!(
            "observed {observed_5xx} 5xx; recorded: shed={shed} faults={} chaos_panics={chaos_panics} internal={internal}",
            faults.total_faults()
        ),
    ));

    // Under chaos, the tail of *successful* predicts stays bounded.
    let mut latencies = outcomes.predict_latency.clone();
    let tail = p99(&mut latencies);
    invariants.push(invariant(
        "bounded_predict_p99",
        !latencies.is_empty() && tail < Duration::from_secs(2),
        format!("p99 {tail:?} over {} successful predicts", latencies.len()),
    ));

    // Tiny-deadline explains that answered must have ridden the ladder.
    invariants.push(invariant(
        "degraded_tiers_recorded",
        outcomes.tiny_ok == 0 || nonfull > 0,
        format!("{} tiny-deadline 200s, {nonfull} non-full tiers served", outcomes.tiny_ok),
    ));

    // After the storm, the service still does real work.
    let recovered = within(Duration::from_secs(5), || {
        exchange(addr, post("/v1/predict", r#"{"v":1,"block":"add rcx, rax"}"#).as_bytes(), false)
            == Some(200)
    });
    invariants.push(invariant(
        "service_recovers_after_storm",
        recovered,
        "a clean predict returns 200 after the storm".into(),
    ));

    // /metrics still renders (and carries the chaos counters).
    let metrics_ok =
        exchange(addr, b"GET /metrics HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n", false)
            == Some(200);
    invariants.push(invariant("metrics_render", metrics_ok, "GET /metrics == 200".into()));

    server.shutdown();

    let statuses = Value::Object(
        outcomes.by_status.iter().map(|(code, n)| (format!("s{code}"), json!(n))).collect(),
    );
    let section = json!({
        "ops": total_ops,
        "clients": CLIENTS,
        "storm_secs": storm_secs,
        "observed": statuses,
        "closed_without_response": outcomes.closed,
        "predict_p99_ms": tail.as_secs_f64() * 1e3,
        "tiny_deadline_200s": outcomes.tiny_ok,
        "server": {
            "shed": shed,
            "internal_5xx": internal,
            "chaos_panics": chaos_panics,
            "injected_faults": {
                "queries": faults.queries,
                "nan": faults.nan,
                "inf": faults.inf,
                "panics": faults.panics,
                "transient": faults.transient,
                "latency": faults.latency,
            },
            "tiers": Value::Object(
                tier_counts.iter().map(|(label, n)| (label.to_string(), json!(n))).collect()
            ),
        },
    });
    (invariants, section)
}

/// Phase B: kill a supervised serve child and time the restart.
fn supervisor_phase(seed: u64, serve_bin: &str) -> (Vec<Invariant>, Value) {
    let mut invariants = Vec::new();
    if !std::path::Path::new(serve_bin).is_file() {
        invariants.push(invariant(
            "supervisor_recovers_killed_child",
            false,
            format!(
                "serve binary not found at {serve_bin} (pass --serve-bin or --skip-supervisor)"
            ),
        ));
        return (invariants, json!({ "serve_bin": serve_bin, "skipped": "binary missing" }));
    }
    let spec = ChildSpec {
        program: serve_bin.into(),
        args: vec![
            "--supervised".into(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--workers".into(),
            "1".into(),
        ],
    };
    let config = SupervisorConfig {
        children: 2,
        backoff_base: Duration::from_millis(50),
        backoff_max: Duration::from_millis(500),
        stable_after: Duration::from_millis(100),
        poll: Duration::from_millis(10),
        grace: Duration::from_secs(3),
        seed,
        ..SupervisorConfig::default()
    };
    let supervisor = match Supervisor::start(spec, config) {
        Ok(s) => s,
        Err(e) => {
            invariants.push(invariant(
                "supervisor_recovers_killed_child",
                false,
                format!("cannot spawn {serve_bin}: {e}"),
            ));
            return (invariants, json!({ "serve_bin": serve_bin, "error": e.to_string() }));
        }
    };
    let booted = within(Duration::from_secs(5), || supervisor.status().alive == 2);
    let before = supervisor.status();
    let killed = supervisor.kill_child(0);
    let kill_at = Instant::now();
    // Recovery budget: base backoff 50ms ×2^k with ≤1.5 jitter plus
    // monitor polling — 3s is generous, and the assertion is what the
    // supervisor promises operators.
    let recovered = within(Duration::from_secs(3), || {
        let status = supervisor.status();
        status.alive == 2 && status.restarts >= 1 && status.pids[0] != before.pids[0]
    });
    let recovery = kill_at.elapsed();
    invariants.push(invariant(
        "supervisor_recovers_killed_child",
        booted && killed && recovered,
        format!("booted={booted} killed={killed} recovered={recovered} in {recovery:?}"),
    ));

    let drain_at = Instant::now();
    let code = supervisor.shutdown();
    let drained = drain_at.elapsed();
    invariants.push(invariant(
        "supervisor_drains_cleanly",
        code == 0 && drained < Duration::from_secs(4),
        format!("exit code {code}, drain took {drained:?}"),
    ));

    let section = json!({
        "serve_bin": serve_bin,
        "children": 2,
        "recovery_ms": recovery.as_secs_f64() * 1e3,
        "drain_ms": drained.as_secs_f64() * 1e3,
        "exit_code": code,
    });
    (invariants, section)
}

/// Default serve binary: the `comet-serve` sitting next to this
/// executable (both live in `target/<profile>` under cargo).
fn sibling_serve_bin() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("comet-serve")))
        .map(|p| p.to_string_lossy().into_owned())
        .unwrap_or_else(|| "comet-serve".into())
}

fn main() {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut out = "BENCH_chaos.json".to_string();
    let mut ops_override: Option<usize> = None;
    let mut serve_bin = sibling_serve_bin();
    let mut skip_supervisor = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = args.next().expect("--seed needs a value").parse().expect("seed"),
            "--out" => out = args.next().expect("--out needs a path"),
            "--ops" => {
                ops_override = Some(args.next().expect("--ops needs a value").parse().expect("ops"))
            }
            "--serve-bin" => serve_bin = args.next().expect("--serve-bin needs a path"),
            "--skip-supervisor" => skip_supervisor = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos-report [--smoke] [--seed N] [--out FILE] [--ops N] \
                     [--serve-bin PATH] [--skip-supervisor]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let total_ops = ops_override.unwrap_or(if smoke { 160 } else { 1200 });

    eprintln!(
        "[chaos-report] mode: {}, seed {seed}, {total_ops} ops",
        if smoke { "smoke" } else { "full" }
    );
    let (mut invariants, storm) = storm_phase(seed, total_ops);
    let supervisor = if skip_supervisor {
        json!({ "skipped": "--skip-supervisor" })
    } else {
        let (more, section) = supervisor_phase(seed, &serve_bin);
        invariants.extend(more);
        section
    };

    let pass = invariants.iter().all(|i| i.pass);
    let report = json!({
        "schema": SCHEMA,
        "mode": if smoke { "smoke" } else { "full" },
        "seed": seed,
        "storm": storm,
        "supervisor": supervisor,
        "invariants": invariants
            .iter()
            .map(|i| json!({ "name": i.name, "pass": i.pass, "detail": i.detail }))
            .collect::<Vec<_>>(),
        "pass": pass,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("[chaos-report] wrote {out} (pass: {pass})");
    if !pass {
        std::process::exit(1);
    }
}
