//! `bench-report` — the machine-readable performance gate for the
//! explanation hot path.
//!
//! Runs the explanation / perturbation / neural-inference / cache
//! micro-benches plus a miniature Table-2 pipeline and emits
//! `BENCH_explain.json` with ops/sec, ns/query, cache hit rate, and
//! allocations per query (measured by a counting global allocator).
//!
//! ```text
//! bench-report [--smoke] [--out FILE] [--baseline FILE]
//!              [--allow-schema-mismatch]
//! ```
//!
//! * `--smoke` shrinks iteration counts so CI finishes in seconds; the
//!   numbers are informational, not statistically stable.
//! * `--baseline FILE` merges a previously captured report in as the
//!   `baseline` section and computes `speedup` ratios against it —
//!   this is how the committed `BENCH_explain.json` carries both the
//!   pre-optimization and post-optimization numbers. A baseline
//!   written under a different report schema is refused (the sections
//!   would not be comparable field-for-field) unless
//!   `--allow-schema-mismatch` is passed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use comet_core::{BatchExec, ExplainConfig, Explainer, FeatureSet, PerturbConfig, Perturber};
use comet_isa::{parse_block, BasicBlock, Microarch};
use comet_models::{CachedModel, CostModel, CrudeModel, Vocab};
use comet_nn::{kernel, BatchScratch, HierarchicalRegressor, TokenizedBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};

/// Report envelope schema. Bumped to 2 when the explain benches moved
/// to the batched search (different query streams, new fields) and the
/// `machine` header was added — schema-1 baselines are not
/// field-for-field comparable.
const SCHEMA: u64 = 2;

/// Counts every heap allocation so benches can report allocs/query.
/// Deallocations are not counted: the metric of interest is allocation
/// *pressure* per operation, and frees mirror allocs at steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One micro-bench measurement.
struct Sample {
    ns_per_iter: f64,
    allocs_per_iter: f64,
    bytes_per_iter: f64,
    iters: u64,
}

impl Sample {
    fn to_json(&self) -> Value {
        json!({
            "ns_per_iter": self.ns_per_iter,
            "ops_per_sec": if self.ns_per_iter > 0.0 { 1e9 / self.ns_per_iter } else { 0.0 },
            "allocs_per_iter": self.allocs_per_iter,
            "bytes_per_iter": self.bytes_per_iter,
            "iters": self.iters,
        })
    }
}

/// Run `f` repeatedly until `target_ms` of measured time accumulates
/// (minimum 3 iterations), timing and counting allocations.
fn measure(target_ms: u64, mut f: impl FnMut()) -> Sample {
    // Warm up: one unmeasured run populates caches and lazy statics.
    f();
    let mut iters: u64 = 0;
    let allocs0 = ALLOCS.load(Relaxed);
    let bytes0 = BYTES.load(Relaxed);
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 3 && start.elapsed().as_millis() as u64 >= target_ms {
            break;
        }
        if iters >= 1_000_000 {
            break;
        }
    }
    let elapsed = start.elapsed();
    let allocs = ALLOCS.load(Relaxed) - allocs0;
    let bytes = BYTES.load(Relaxed) - bytes0;
    Sample {
        ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        allocs_per_iter: allocs as f64 / iters as f64,
        bytes_per_iter: bytes as f64 / iters as f64,
        iters,
    }
}

const SMALL: &str = "add rcx, rax\nmov rdx, rcx\npop rbx";
const CASE2: &str =
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";

/// Batch size the explain benches run at. Results are identical at
/// every (batch, pool) combination (see
/// `comet-core/tests/batch_golden.rs`), so the knobs only move time.
const EXPLAIN_BATCH: usize = 16;

/// Intra-explanation pool size for the explain benches: pool 4 is the
/// judged configuration, clamped to the machine's parallelism — on an
/// oversubscribed core, helper threads spin against the caller instead
/// of helping, which benchmarks the scheduler rather than the search.
/// The report's `machine.threads` header records which case this was.
fn explain_pool() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
}

/// End-to-end explanation micro-bench over the batched anchors search:
/// the wall-clock targets are judged on these entries. The `BatchExec`
/// (and its worker pool) is created once and reused across iterations,
/// matching how `comet-serve` and `comet-eval` run searches.
fn bench_explain(target_ms: u64, name: &str, text: &str) -> Value {
    let block = parse_block(text).unwrap();
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    let explainer = Explainer::new(CrudeModel::new(Microarch::Haswell), config);
    let exec = BatchExec::new(EXPLAIN_BATCH, explain_pool());
    let mut queries = 0u64;
    let sample = measure(target_ms, || {
        let explanation =
            explainer.explain_batched(std::hint::black_box(&block), 7, &exec).expect("explain");
        queries = explanation.queries;
    });
    let mut v = sample.to_json();
    v["queries_per_explanation"] = json!(queries);
    v["ns_per_query"] = json!(sample.ns_per_iter / queries.max(1) as f64);
    v["allocs_per_query"] = json!(sample.allocs_per_iter / queries.max(1) as f64);
    v["batch"] = json!(EXPLAIN_BATCH);
    v["search_pool"] = json!(explain_pool());
    v["batch_occupancy"] = json!(exec.occupancy());
    eprintln!(
        "[bench] explain/{name}: {:.2} ms/iter, {} queries, {:.1} allocs/query, occupancy {:.2}",
        sample.ns_per_iter / 1e6,
        queries,
        sample.allocs_per_iter / queries.max(1) as f64,
        exec.occupancy(),
    );
    v
}

/// Γ-sampling micro-bench: one unconstrained perturbation per iter.
fn bench_perturb(target_ms: u64) -> Value {
    let block = parse_block(CASE2).unwrap();
    let perturber = Perturber::new(&block, PerturbConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let empty = FeatureSet::new();
    let sample = measure(target_ms, || {
        std::hint::black_box(perturber.perturb(&empty, &mut rng));
    });
    eprintln!(
        "[bench] perturb/6_instr: {:.0} ns/iter, {:.1} allocs/iter",
        sample.ns_per_iter, sample.allocs_per_iter
    );
    sample.to_json()
}

/// Neural-inference micro-bench: one hierarchical-LSTM prediction per
/// iter on an untrained (but fully sized) Ithemal-architecture model.
/// `allocs_per_iter` here is the steady-state heap traffic the scratch
/// buffers are meant to eliminate.
fn bench_nn(target_ms: u64) -> Value {
    let vocab = Vocab::standard();
    let mut rng = StdRng::seed_from_u64(9);
    let model = HierarchicalRegressor::new(vocab.len(), 24, 40, &mut rng);
    let tokens = vocab.tokenize_block(&parse_block(CASE2).unwrap());
    let sample = measure(target_ms, || {
        std::hint::black_box(model.predict(std::hint::black_box(&tokens)));
    });
    eprintln!(
        "[bench] nn/ithemal_predict: {:.0} ns/iter, {:.1} allocs/iter",
        sample.ns_per_iter, sample.allocs_per_iter
    );
    let mut v = sample.to_json();
    v["zero_alloc_steady_state"] = json!(sample.allocs_per_iter == 0.0);
    v
}

/// Blocked batch inference micro-bench: every lane width B ∈ {1, 8, 32}
/// pushes the SAME fixed 32-block mixed set through `predict_batch_with`
/// in chunks of B, so `ns_per_block` is directly comparable across
/// widths (each width does identical total work — only the lane count
/// per call differs). Caller-owned scratch and output buffers, so
/// steady state must be allocation-free — asserted, not just reported,
/// since the batched explain path leans on this invariant.
fn bench_nn_batch(target_ms: u64) -> Value {
    let vocab = Vocab::standard();
    let mut rng = StdRng::seed_from_u64(9);
    let model = HierarchicalRegressor::new(vocab.len(), 24, 40, &mut rng);
    let texts = [SMALL, CASE2, "div rcx", "imul rax, rcx\nadd rcx, rax\nnop"];
    // 32 blocks cycling through four shapes, so lanes finish at
    // different instruction/token positions (the interesting case for
    // the lane-compaction logic).
    let blocks: Vec<TokenizedBlock> = (0..32)
        .map(|i| vocab.tokenize_block(&parse_block(texts[i % texts.len()]).unwrap()))
        .collect();
    let mut scratch = BatchScratch::new();
    let mut report = json!({});
    for lanes in [1usize, 8, 32] {
        let mut outs = vec![0.0; lanes];
        let sample = measure(target_ms, || {
            for chunk in blocks.chunks(lanes) {
                let outs = &mut outs[..chunk.len()];
                model.predict_batch_with(std::hint::black_box(chunk), &mut scratch, outs);
                std::hint::black_box(&*outs);
            }
        });
        assert_eq!(
            sample.allocs_per_iter, 0.0,
            "nn_predict_batch B={lanes} allocated at steady state"
        );
        let ns_per_block = sample.ns_per_iter / blocks.len() as f64;
        eprintln!(
            "[bench] nn/ithemal_predict_batch B={lanes}: {:.0} ns/iter ({ns_per_block:.0} \
             ns/block over {} blocks)",
            sample.ns_per_iter,
            blocks.len(),
        );
        let mut v = sample.to_json();
        v["lanes"] = json!(lanes);
        v["blocks"] = json!(blocks.len());
        v["ns_per_block"] = json!(ns_per_block);
        v["zero_alloc_steady_state"] = json!(true);
        report[format!("b{lanes}")] = v;
    }
    report
}

/// Prediction-cache micro-bench: a working set of distinct blocks
/// queried round-robin, so after the first pass every query hits.
fn bench_cache(target_ms: u64) -> Value {
    let model = CachedModel::new(CrudeModel::new(Microarch::Haswell));
    let texts = [SMALL, CASE2, "div rcx", "imul rax, rcx\nadd rcx, rax", "nop"];
    let blocks: Vec<BasicBlock> = texts.iter().map(|t| parse_block(t).unwrap()).collect();
    for b in &blocks {
        model.predict(b); // prime: the measured loop is the hit path
    }
    let mut i = 0usize;
    let sample = measure(target_ms, || {
        let b = &blocks[i % blocks.len()];
        i += 1;
        std::hint::black_box(model.predict(std::hint::black_box(b)));
    });
    let stats = model.stats();
    let hit_rate = stats.hits as f64 / stats.total.max(1) as f64;
    eprintln!(
        "[bench] cache/hit_path: {:.0} ns/query, {:.1} allocs/query, hit rate {:.3}",
        sample.ns_per_iter, sample.allocs_per_iter, hit_rate
    );
    let mut v = sample.to_json();
    v["hit_rate"] = json!(hit_rate);
    v
}

/// Miniature Table-2 pipeline: explain a small generated corpus with
/// the crude model, reporting wall-clock and aggregate queries/sec.
/// This is the shape of work `comet-eval` does at full scale.
fn bench_mini_table2(smoke: bool) -> Value {
    let n_blocks = if smoke { 2 } else { 8 };
    let corpus = comet_bhive::Corpus::generate(n_blocks, comet_bhive::GenConfig::default(), 3);
    let blocks: Vec<&BasicBlock> = corpus.iter().map(|b| &b.block).collect();
    let crude = CrudeModel::new(Microarch::Haswell);
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    let allocs0 = ALLOCS.load(Relaxed);
    let start = Instant::now();
    let explanations = comet_eval::experiments::explain_blocks(&crude, &blocks, config, 1);
    let elapsed = start.elapsed();
    let allocs = ALLOCS.load(Relaxed) - allocs0;
    let queries: u64 = explanations.iter().map(|(_, e)| e.queries).sum();
    let secs = elapsed.as_secs_f64();
    eprintln!(
        "[bench] mini_table2: {n_blocks} blocks in {secs:.2}s, {:.0} queries/sec",
        queries as f64 / secs.max(1e-9)
    );
    json!({
        "blocks": n_blocks,
        "wall_clock_sec": secs,
        "total_queries": queries,
        "queries_per_sec": queries as f64 / secs.max(1e-9),
        "allocs_total": allocs,
        "explained": explanations.len(),
    })
}

/// Store-lookup micro-bench: build a small precomputed explanation
/// store (the expensive, unmeasured part), then measure the serving
/// hit path — binary-search the sorted key index and reconstruct the
/// explanation bitwise from the columnar sections. This is the `store`
/// tier of the serve degradation ladder; compare `ns_per_iter` here
/// against `explain_small`/`explain_case2` to see what precomputation
/// buys over the live search.
fn bench_store_lookup(target_ms: u64, smoke: bool) -> Value {
    let blocks = if smoke { 4 } else { 16 };
    let cfg = comet_store::BuildConfig { blocks, ..Default::default() };
    let out = std::env::temp_dir().join(format!("comet-bench-store-{}.comets", std::process::id()));
    let built = comet_store::build_store(&out, &cfg).expect("store build");
    let store = comet_store::ExplanationStore::open(&out).expect("store open");
    let texts: Vec<String> = store.iter_texts().map(str::to_string).collect();
    let mut i = 0usize;
    let sample = measure(target_ms, || {
        let text = &texts[i % texts.len()];
        i += 1;
        std::hint::black_box(store.lookup(std::hint::black_box(text)).expect("stored block"));
    });
    let _ = std::fs::remove_file(&out);
    eprintln!(
        "[bench] store/lookup: {:.0} ns/iter over {} records, {:.1} allocs/iter",
        sample.ns_per_iter, built.records, sample.allocs_per_iter
    );
    let mut v = sample.to_json();
    v["records"] = json!(built.records);
    v
}

/// The `machine` report header: enough to judge whether two reports
/// are comparable at all (a 4-thread CI runner and a 32-thread
/// workstation are not).
fn machine_header() -> Value {
    json!({
        "os": std::env::consts::OS,
        "arch": std::env::consts::ARCH,
        "threads": std::thread::available_parallelism().map_or(0, |n| n.get()),
        // Which inference kernel variant produced the nn_* numbers, and
        // what the CPU reported: an avx2-v1 report and a scalar-v1
        // report are not comparable on the nn benches.
        "kernel": kernel::active().name,
        "cpu_features": kernel::cpu_features(),
    })
}

fn main() {
    let mut smoke = false;
    let mut out = "BENCH_explain.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut allow_schema_mismatch = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--allow-schema-mismatch" => allow_schema_mismatch = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-report [--smoke] [--out FILE] [--baseline FILE] \
                     [--allow-schema-mismatch]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    // Load and validate the baseline *before* spending minutes on the
    // benches: a refused baseline should fail in milliseconds.
    let baseline = baseline_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let loaded: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        // A baseline from another schema version measures different
        // things under the same field names (e.g. schema-1 explain
        // benches ran the scalar search); silently merging it would
        // produce speedup ratios that look valid and aren't.
        let baseline_schema = loaded.get("schema").and_then(Value::as_u64).unwrap_or(0);
        if baseline_schema != SCHEMA && !allow_schema_mismatch {
            eprintln!(
                "error: baseline {path} has schema {baseline_schema}, this report is schema \
                 {SCHEMA}; refusing to merge (rerun the baseline with this binary, or pass \
                 --allow-schema-mismatch to compare across schemas anyway)"
            );
            std::process::exit(2);
        }
        // Accept either a bare capture (its `current` section) or an
        // already-merged report (its `baseline` section).
        loaded.get("current").or_else(|| loaded.get("baseline")).cloned().unwrap_or(loaded)
    });

    // Smoke mode trades statistical stability for CI latency.
    let target_ms: u64 = if smoke { 200 } else { 2_000 };

    eprintln!("[bench-report] mode: {}", if smoke { "smoke" } else { "full" });
    let current = json!({
        "explain_small": bench_explain(target_ms, "3_instr", SMALL),
        "explain_case2": bench_explain(target_ms, "6_instr_div", CASE2),
        "perturb": bench_perturb(target_ms / 2),
        "nn_predict": bench_nn(target_ms / 2),
        "nn_predict_batch": bench_nn_batch(target_ms / 3),
        "cache_hit": bench_cache(target_ms / 2),
        "store_lookup": bench_store_lookup(target_ms / 2, smoke),
        "mini_table2": bench_mini_table2(smoke),
    });

    let mut report = json!({
        "schema": SCHEMA,
        "mode": if smoke { "smoke" } else { "full" },
        "machine": machine_header(),
        "current": current.clone(),
    });

    if let Some(baseline) = baseline {
        let ratio = |bench: &str, field: &str| -> Option<f64> {
            let b = baseline.get(bench)?.get(field)?.as_f64()?;
            let c = current.get(bench)?.get(field)?.as_f64()?;
            if c > 0.0 {
                Some(b / c)
            } else {
                None
            }
        };
        let mut speedup = json!({});
        for bench in
            ["explain_small", "explain_case2", "perturb", "nn_predict", "cache_hit", "store_lookup"]
        {
            if let Some(r) = ratio(bench, "ns_per_iter") {
                speedup[format!("{bench}_time")] = json!(r);
            }
            if let Some(r) = ratio(bench, "allocs_per_iter") {
                speedup[format!("{bench}_allocs")] = json!(r);
            }
        }
        report["baseline"] = baseline;
        report["speedup"] = speedup;
    }

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("[bench-report] wrote {out}");
}
