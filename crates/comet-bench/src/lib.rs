//! # comet-bench
//!
//! Criterion benchmarks for the COMET reproduction. Micro-benchmarks
//! cover the hot paths (Γ perturbation, simulation, dependency
//! analysis, neural inference/training, KL bounds), and the
//! `paper_experiments` bench runs a miniature version of each paper
//! table/figure pipeline. The full-scale regenerators live in the
//! `comet-eval` binary.
