//! Benchmarks for the pipeline simulator — every uiCA-surrogate query
//! pays this cost.

use comet_isa::{parse_block, Microarch};
use comet_sim::{MachineConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

const SMALL: &str = "add rcx, rax\nmov rdx, rcx\npop rbx";
const MEDIUM: &str =
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";
const MEMORY: &str = "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80\nmov rsi, qword ptr [r14 + 32]\nmov rdi, rbp";

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/throughput");
    let sim = Simulator::new(MachineConfig::detailed(Microarch::Haswell));
    for (name, text) in [("small_alu", SMALL), ("div_chain", MEDIUM), ("memory_heavy", MEMORY)] {
        let block = parse_block(text).unwrap();
        group.bench_function(name, |b| b.iter(|| sim.throughput(std::hint::black_box(&block))));
    }
    group.finish();
}

fn bench_configs(c: &mut Criterion) {
    let block = parse_block(MEDIUM).unwrap();
    let mut group = c.benchmark_group("simulator/config");
    for (name, config) in [
        ("detailed_hsw", MachineConfig::detailed(Microarch::Haswell)),
        ("uica_like_hsw", MachineConfig::uica_like(Microarch::Haswell)),
        ("detailed_skl", MachineConfig::detailed(Microarch::Skylake)),
    ] {
        let sim = Simulator::new(config);
        group.bench_function(name, |b| b.iter(|| sim.throughput(std::hint::black_box(&block))));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_throughput, bench_configs
}
criterion_main!(benches);
