//! Benchmarks for the neural stack: inference and training steps of
//! the Ithemal-architecture regressor.

use comet_nn::{AdamConfig, HierarchicalRegressor, Loss, Trainer};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tokenized_block(insts: usize, tokens: usize) -> Vec<Vec<usize>> {
    (0..insts).map(|i| (0..tokens).map(|t| (i * 7 + t * 3) % 64).collect()).collect()
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = HierarchicalRegressor::new(64, 24, 40, &mut rng);
    let mut group = c.benchmark_group("nn/predict");
    for insts in [2usize, 6, 10] {
        let block = tokenized_block(insts, 5);
        group.bench_function(format!("{insts}_instructions"), |b| {
            b.iter(|| model.predict(std::hint::black_box(&block)))
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let block = tokenized_block(6, 5);
    c.bench_function("nn/train_example", |b| {
        let mut model = HierarchicalRegressor::new(64, 24, 40, &mut rng);
        b.iter(|| model.train_example(std::hint::black_box(&block), 3.0, 1.0, Loss::Relative))
    });
    c.bench_function("nn/fit_epoch_32_blocks", |b| {
        let data: Vec<_> = (0..32).map(|i| (tokenized_block(4 + i % 5, 4), 2.0)).collect();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut model = HierarchicalRegressor::new(64, 16, 24, &mut rng);
            let mut trainer = Trainer::new(AdamConfig::default(), 16, 1);
            trainer.fit(&mut model, &data, &mut rng)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference, bench_training
}
criterion_main!(benches);
