//! Benchmarks for the perturbation algorithm Γ — the inner loop of
//! every COMET explanation.

use comet_core::{Feature, FeatureSet, PerturbConfig, Perturber};
use comet_isa::parse_block;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CASE2: &str =
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";
const BETA1: &str = "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0\nvxorps xmm0, xmm0, xmm5\nvaddss xmm7, xmm7, xmm3\nvmulss xmm6, xmm6, xmm7\nvdivss xmm6, xmm3, xmm6\nvmulss xmm0, xmm6, xmm0";

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb");
    for (name, text) in [("case2_scalar", CASE2), ("beta1_vector", BETA1)] {
        let block = parse_block(text).unwrap();
        let perturber = Perturber::new(&block, PerturbConfig::default());
        let empty = FeatureSet::new();
        let mut preserved = FeatureSet::new();
        preserved.insert(Feature::NumInstructions);
        preserved.insert(Feature::Instruction(0));

        group.bench_function(format!("{name}/free"), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(1),
                |mut rng| perturber.perturb(&empty, &mut rng),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("{name}/preserving"), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(1),
                |mut rng| perturber.perturb(&preserved, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_perturber_setup(c: &mut Criterion) {
    let block = parse_block(CASE2).unwrap();
    c.bench_function("perturber/new", |b| {
        b.iter(|| Perturber::new(std::hint::black_box(&block), PerturbConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_perturb, bench_perturber_setup
}
criterion_main!(benches);
