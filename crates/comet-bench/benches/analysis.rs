//! Benchmarks for parsing, dependency analysis, and the crude model.

use comet_graph::BlockGraph;
use comet_isa::{parse_block, Microarch};
use comet_models::{CostModel, CrudeModel};
use criterion::{criterion_group, criterion_main, Criterion};

const BETA2: &str = "shl eax, 3\nimul rax, r15\nxor edx, edx\nadd rax, 7\nshr rax, 3\nlea rax, [rbp + rax - 1]\ndiv rbp\nimul rax, rbp\nmov rbp, qword ptr [rsp + 8]\nsub rbp, rax";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("isa/parse_block_10_instrs", |b| {
        b.iter(|| parse_block(std::hint::black_box(BETA2)).unwrap())
    });
    let block = parse_block(BETA2).unwrap();
    c.bench_function("isa/display_block_10_instrs", |b| {
        b.iter(|| std::hint::black_box(&block).to_string())
    });
}

fn bench_graph(c: &mut Criterion) {
    let block = parse_block(BETA2).unwrap();
    c.bench_function("graph/build_10_instrs", |b| {
        b.iter(|| BlockGraph::build(std::hint::black_box(&block)))
    });
}

fn bench_crude(c: &mut Criterion) {
    let block = parse_block(BETA2).unwrap();
    let crude = CrudeModel::new(Microarch::Haswell);
    c.bench_function("models/crude_predict", |b| {
        b.iter(|| crude.predict(std::hint::black_box(&block)))
    });
}

fn bench_replacements(c: &mut Criterion) {
    let block = parse_block(BETA2).unwrap();
    c.bench_function("isa/opcode_replacements_block", |b| {
        b.iter(|| {
            block
                .iter()
                .map(|inst| comet_isa::opcode_replacements(std::hint::black_box(inst)).len())
                .sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_parse, bench_graph, bench_crude, bench_replacements
}
criterion_main!(benches);
