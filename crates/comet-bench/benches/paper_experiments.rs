//! Micro-scale harness benches: one benchmark per paper table/figure,
//! each running a miniature version of the corresponding experiment
//! pipeline end-to-end (the full-scale regenerators live in the
//! `comet-eval` binary; see DESIGN.md §4).

use comet_bhive::{Category, Corpus, GenConfig, Source};
use comet_core::{ground_truth, is_accurate, ExplainConfig, Explainer};
use comet_isa::{parse_block, Microarch};
use comet_models::{mape, CostModel, CrudeModel, UicaSurrogate};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mini_config() -> ExplainConfig {
    ExplainConfig { coverage_samples: 200, max_samples: 200, ..ExplainConfig::for_crude_model() }
}

/// Table 2 pipeline: ground truth + explanation + accuracy over a
/// 4-block corpus.
fn bench_table2(c: &mut Criterion) {
    let corpus = Corpus::generate(4, GenConfig::default(), 77);
    let crude = CrudeModel::new(Microarch::Haswell);
    c.bench_function("paper/table2_accuracy_pipeline", |b| {
        b.iter(|| {
            let explainer = Explainer::new(crude, mini_config());
            let mut rng = StdRng::seed_from_u64(1);
            corpus
                .iter()
                .filter(|entry| {
                    let gt = ground_truth(&crude, &entry.block);
                    let e = explainer.explain(&entry.block, &mut rng).unwrap();
                    is_accurate(&e.features, &gt)
                })
                .count()
        })
    });
}

/// Table 3 pipeline: precision/coverage of a uiCA-surrogate
/// explanation.
fn bench_table3(c: &mut Criterion) {
    let block = parse_block("add rcx, rax\nmov rdx, rcx\npop rbx").unwrap();
    let uica = UicaSurrogate::new(Microarch::Haswell);
    c.bench_function("paper/table3_precision_coverage_pipeline", |b| {
        b.iter(|| {
            let config = ExplainConfig {
                coverage_samples: 200,
                max_samples: 150,
                ..ExplainConfig::for_throughput_model()
            };
            let explainer = Explainer::new(&uica, config);
            let mut rng = StdRng::seed_from_u64(2);
            let e = explainer.explain(std::hint::black_box(&block), &mut rng).unwrap();
            (e.precision, e.coverage)
        })
    });
}

/// Figures 2-4 pipeline: MAPE + feature-mix for one partition.
fn bench_figures(c: &mut Criterion) {
    let corpus = Corpus::generate_by_category(2, GenConfig::default(), 78);
    let uica = UicaSurrogate::new(Microarch::Haswell);
    c.bench_function("paper/fig2_4_partition_mape", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for category in Category::ALL {
                let blocks = corpus.by_category(category);
                let labelled: Vec<_> =
                    blocks.iter().map(|e| (e.block.clone(), e.throughput_hsw)).collect();
                total += mape(&&uica, &labelled);
            }
            total
        })
    });
    let source_corpus = Corpus::generate_by_source(3, GenConfig::default(), 79);
    c.bench_function("paper/fig3_source_partition_gen", |b| {
        b.iter(|| Source::ALL.iter().map(|s| source_corpus.by_source(*s).len()).sum::<usize>())
    });
}

/// Figures 5-8 pipeline: one ablation cell (threshold 0.8).
fn bench_ablation(c: &mut Criterion) {
    let corpus = Corpus::generate(2, GenConfig::default(), 80);
    let crude = CrudeModel::new(Microarch::Haswell);
    c.bench_function("paper/fig5_8_ablation_cell", |b| {
        b.iter(|| {
            let config = ExplainConfig { delta: 0.2, ..mini_config() };
            let explainer = Explainer::new(crude, config);
            let mut rng = StdRng::seed_from_u64(3);
            corpus
                .iter()
                .map(|e| explainer.explain(&e.block, &mut rng).unwrap().precision)
                .sum::<f64>()
        })
    });
}

/// Appendix F pipeline: perturbation-space estimation for the paper's
/// listing blocks.
fn bench_appendix_f(c: &mut Criterion) {
    let beta1 = parse_block(
        "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0\nvxorps xmm0, xmm0, xmm5\nvaddss xmm7, xmm7, xmm3\nvmulss xmm6, xmm6, xmm7\nvdivss xmm6, xmm3, xmm6\nvmulss xmm0, xmm6, xmm0",
    )
    .unwrap();
    c.bench_function("paper/appendix_f_space_estimate", |b| {
        b.iter(|| {
            comet_core::space::estimate_space(
                std::hint::black_box(&beta1),
                &comet_core::FeatureSet::new(),
            )
        })
    });
}

/// Case-study pipeline: uiCA prediction for the paper's Listing 2.
fn bench_case_studies(c: &mut Criterion) {
    let block = parse_block(
        "lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80\nmov rsi, qword ptr [r14 + 32]\nmov rdi, rbp",
    )
    .unwrap();
    let uica = UicaSurrogate::new(Microarch::Haswell);
    c.bench_function("paper/case_study_prediction", |b| {
        b.iter(|| uica.predict(std::hint::black_box(&block)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_figures, bench_ablation, bench_appendix_f, bench_case_studies
}
criterion_main!(benches);
