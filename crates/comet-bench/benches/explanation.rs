//! End-to-end explanation benchmarks. The paper reports ~1 minute per
//! block (Python); this measures the Rust pipeline's latency.

use comet_core::{precision, ExplainConfig, Explainer};
use comet_isa::{parse_block, Microarch};
use comet_models::CrudeModel;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SMALL: &str = "add rcx, rax\nmov rdx, rcx\npop rbx";
const CASE2: &str =
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx";

fn bench_explain(c: &mut Criterion) {
    let mut group = c.benchmark_group("explain/crude");
    group.sample_size(10);
    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_crude_model() };
    for (name, text) in [("3_instr_block", SMALL), ("6_instr_div_block", CASE2)] {
        let block = parse_block(text).unwrap();
        let explainer = Explainer::new(CrudeModel::new(Microarch::Haswell), config);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                explainer.explain(std::hint::black_box(&block), &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_kl_bounds(c: &mut Criterion) {
    c.bench_function("precision/kl_confidence_bounds", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [10u64, 100, 1000] {
                acc += precision::kl_ucb(std::hint::black_box(0.73), n, 4.0);
                acc += precision::kl_lcb(std::hint::black_box(0.73), n, 4.0);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_explain, bench_kl_bounds);
criterion_main!(benches);
